//! # pareval-apps
//!
//! The six ParEval-Repo benchmark applications (paper Table 1) as MiniHPC
//! repositories: nanoXOR, microXORh, microXOR, SimpleMOC-kernel, XSBench and
//! llm.c — each in every programming model the paper marks as available,
//! with the developer-provided test cases the harness uses for correctness
//! validation.
//!
//! Expected outputs are not hard-coded: they are produced by building and
//! running the application's own source-model implementation through the
//! MiniHPC toolchain, exactly as the paper leverages "the correctness
//! validation test cases provided by the developers".

mod llmc;
mod simplemoc;
mod xor;
mod xsbench;

use minihpc_build::{build_repo, BuildRequest};
use minihpc_lang::model::{BuildSystemKind, ExecutionModel, TranslationPair};
use minihpc_lang::repo::SourceRepo;
use minihpc_runtime::{run, RunConfig};
use std::collections::BTreeMap;

/// One developer-provided test case: CLI arguments (expected stdout is
/// derived from the reference implementation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCase {
    pub args: Vec<String>,
}

impl TestCase {
    pub fn new<S: Into<String>>(args: impl IntoIterator<Item = S>) -> Self {
        TestCase {
            args: args.into_iter().map(Into::into).collect(),
        }
    }
}

/// A benchmark application.
#[derive(Debug, Clone)]
pub struct Application {
    /// Name as in paper Table 1 (`nanoXOR`, `XSBench`, ...).
    pub name: &'static str,
    /// The binary the build must produce (the build-interface contract).
    pub binary: &'static str,
    /// Per-model source repositories (only models marked available).
    pub repos: BTreeMap<ExecutionModel, SourceRepo>,
    /// Developer test cases.
    pub tests: Vec<TestCase>,
    /// CLI contract text, included in prompts for main-function files.
    pub cli_spec: String,
    /// Build contract text, included in prompts for build files.
    pub build_spec: String,
    /// Ground-truth build files per *target* model, hand-written (paper: the
    /// authors' manually translated Makefile/CMakeLists used for the
    /// "Code-only" score).
    pub ground_truth_build: BTreeMap<ExecutionModel, (String, String)>,
    /// True when public ports exist in the target models (XSBench — the
    /// paper's data-contamination probe).
    pub public_ports_exist: bool,
}

impl Application {
    /// Models this application is implemented in.
    pub fn available_models(&self) -> Vec<ExecutionModel> {
        self.repos.keys().copied().collect()
    }

    pub fn repo(&self, model: ExecutionModel) -> Option<&SourceRepo> {
        self.repos.get(&model)
    }

    /// Which of the paper's three translation pairs apply to this app.
    pub fn pairs(&self) -> Vec<TranslationPair> {
        TranslationPair::ALL
            .into_iter()
            .filter(|p| self.repos.contains_key(&p.from))
            .collect()
    }

    /// Run the reference implementation to get the expected stdout for a
    /// test case. Panics if the reference itself fails — that is a bug in
    /// the benchmark suite, not in a translation.
    pub fn expected_output(&self, case: &TestCase) -> String {
        let (model, repo) = self
            .repos
            .iter()
            .next()
            .expect("application has at least one implementation");
        let outcome = build_repo(repo, &BuildRequest::new(self.binary));
        let exe = outcome.executable.unwrap_or_else(|| {
            panic!(
                "reference build of {} ({model}) failed:\n{}",
                self.name,
                outcome.log.text()
            )
        });
        let result = run(&exe, RunConfig::with_args(case.args.iter().cloned()));
        assert!(
            result.error.is_none() && result.exit_code == 0,
            "reference run of {} failed: {:?}\n{}",
            self.name,
            result.error,
            result.stdout,
        );
        result.stdout
    }

    /// The build system the source-model repo of `pair` uses.
    pub fn build_system(&self, model: ExecutionModel) -> BuildSystemKind {
        model.build_system()
    }
}

/// The full suite, in paper Table 1 order.
pub fn suite() -> Vec<Application> {
    vec![
        xor::nanoxor(),
        xor::microxorh(),
        xor::microxor(),
        simplemoc::simplemoc_kernel(),
        xsbench::xsbench(),
        llmc::llmc(),
    ]
}

/// Look up one application by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Application> {
    suite()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
}

/// Shared ground-truth build files used by several applications.
pub(crate) fn gt_make_omp_offload(binary: &str, sources: &[&str]) -> String {
    format!(
        "CXX = clang++\nCXXFLAGS = -O2 -fopenmp -fopenmp-targets=nvptx64-nvidia-cuda -lm\n\n\
         {binary}: {srcs}\n\t$(CXX) $(CXXFLAGS) -o {binary} {srcs}\n\n\
         .PHONY: clean\nclean:\n\trm -f {binary}\n",
        srcs = sources.join(" "),
    )
}

pub(crate) fn gt_cmake_kokkos(binary: &str, sources: &[&str]) -> String {
    format!(
        "cmake_minimum_required(VERSION 3.16)\nproject({binary} LANGUAGES CXX)\n\
         find_package(Kokkos REQUIRED)\nset(CMAKE_CXX_STANDARD 17)\n\
         add_executable({binary} {srcs})\n\
         target_link_libraries({binary} PRIVATE Kokkos::kokkos)\n",
        srcs = sources.join(" "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table1_shape() {
        let apps = suite();
        let names: Vec<_> = apps.iter().map(|a| a.name).collect();
        assert_eq!(
            names,
            vec![
                "nanoXOR",
                "microXORh",
                "microXOR",
                "SimpleMOC-kernel",
                "XSBench",
                "llm.c"
            ]
        );
        // Availability per Table 1.
        let models = |n: &str| by_name(n).unwrap().available_models();
        assert_eq!(
            models("nanoXOR"),
            vec![ExecutionModel::OmpThreads, ExecutionModel::Cuda]
        );
        assert_eq!(
            models("microXORh"),
            vec![ExecutionModel::OmpThreads, ExecutionModel::Cuda]
        );
        assert_eq!(
            models("microXOR"),
            vec![ExecutionModel::OmpThreads, ExecutionModel::Cuda]
        );
        assert_eq!(models("SimpleMOC-kernel"), vec![ExecutionModel::Cuda]);
        assert_eq!(
            models("XSBench"),
            vec![ExecutionModel::OmpThreads, ExecutionModel::Cuda]
        );
        assert_eq!(models("llm.c"), vec![ExecutionModel::Cuda]);
    }

    #[test]
    fn translation_pair_coverage_is_sixteen_tasks() {
        // Paper Sec. 5.2: six apps for two pairs + four apps for the third.
        let apps = suite();
        let total: usize = apps.iter().map(|a| a.pairs().len()).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn file_counts_increase_with_complexity() {
        let counts: Vec<usize> = suite()
            .iter()
            .map(|a| a.repos.values().next().unwrap().len())
            .collect();
        // nanoXOR(2) < microXORh(3) < microXOR(4) < SimpleMOC(6) < XSBench(9)
        assert!(counts[0] < counts[1]);
        assert!(counts[1] < counts[2]);
        assert!(counts[2] < counts[3]);
        assert!(counts[3] < counts[4]);
    }
}
