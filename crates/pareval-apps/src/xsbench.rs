//! XSBench: proxy for OpenMC macroscopic cross-section lookup (paper
//! Sec. 5.1) — the largest conventional app in the suite (9 files), and the
//! one case where public ports to the target models exist (the paper's
//! data-contamination probe).
//!
//! The computation: for each of `n_lookups` pseudo-random (energy, material)
//! queries, binary-search each nuclide's energy grid, linearly interpolate
//! five cross-section channels, and accumulate concentration-weighted macro
//! cross-sections. Verification is an integer checksum (order-independent
//! sum), so all models and schedules agree exactly.

use crate::{gt_cmake_kokkos, gt_make_omp_offload, share, Application, TestCase};
use minihpc_lang::model::ExecutionModel;
use minihpc_lang::repo::SourceRepo;
use std::collections::BTreeMap;

const HEADER: &str = r#"#define N_CHANNELS 5

typedef struct {
    int n_isotopes;
    int n_gridpoints;
    int n_lookups;
    int n_materials;
    long seed;
} Params;

void read_params(int argc, char** argv, Params* p);
void print_results(Params* p, long verification);

double* init_energy_grid(Params* p);
double* init_xs_data(Params* p);
int* init_num_nucs(Params* p);
int* init_mats(Params* p);
double* init_concs(Params* p);

long rng_init(long seed, long id);
long rng_next(long state);
double rng_u01(long state);

long lookup_one(long l, long seed, const double* energy_grid, const double* xs_data,
                const int* num_nucs, const int* mats, const double* concs,
                int n_isotopes, int n_gridpoints, int n_materials);
"#;

const PARAMS_SRC: &str = r#"#include <stdlib.h>
#include "xsbench.h"

void read_params(int argc, char** argv, Params* p) {
    p->n_isotopes = 12;
    p->n_gridpoints = 64;
    p->n_lookups = 2000;
    p->n_materials = 8;
    p->seed = 1070;
    if (argc > 1) p->n_lookups = atoi(argv[1]);
    if (argc > 2) p->n_isotopes = atoi(argv[2]);
    if (argc > 3) p->n_gridpoints = atoi(argv[3]);
    if (argc > 4) p->seed = atol(argv[4]);
}
"#;

const RNG_SRC: &str = r#"#include "xsbench.h"

long rng_init(long seed, long id) {
    long x = seed * 0x27BB2EE687B0B0FD + id * 0xB504F32D + 1;
    return x;
}

long rng_next(long state) {
    return state * 0x27BB2EE687B0B0FD + 0xB504F32D;
}

double rng_u01(long state) {
    long y = state >> 11;
    return (double)(y % 1048576) / 1048576.0;
}
"#;

const GRID_INIT_SRC: &str = r#"#include <stdlib.h>
#include "xsbench.h"

double* init_energy_grid(Params* p) {
    int NI = p->n_isotopes;
    int NG = p->n_gridpoints;
    double* grid = (double*)malloc(NI * NG * sizeof(double));
    for (int n = 0; n < NI; n++) {
        for (int k = 0; k < NG; k++) {
            grid[n * NG + k] = (double)(k + 1 + (n * 7) % 5) / (double)(NG + 6);
        }
    }
    return grid;
}

double* init_xs_data(Params* p) {
    int NI = p->n_isotopes;
    int NG = p->n_gridpoints;
    double* xs = (double*)malloc(NI * NG * N_CHANNELS * sizeof(double));
    for (int n = 0; n < NI; n++) {
        for (int k = 0; k < NG; k++) {
            for (int c = 0; c < N_CHANNELS; c++) {
                int h = (n * 31 + k * 7 + c * 3) % 100;
                xs[(n * NG + k) * N_CHANNELS + c] = 0.01 + (double)h / 100.0;
            }
        }
    }
    return xs;
}
"#;

const MATERIALS_SRC: &str = r#"#include <stdlib.h>
#include "xsbench.h"

#define MAX_NUCS 6

int* init_num_nucs(Params* p) {
    int NM = p->n_materials;
    int* num = (int*)malloc(NM * sizeof(int));
    for (int m = 0; m < NM; m++) {
        num[m] = 2 + m % 4;
    }
    return num;
}

int* init_mats(Params* p) {
    int NM = p->n_materials;
    int NI = p->n_isotopes;
    int* mats = (int*)malloc(NM * MAX_NUCS * sizeof(int));
    for (int m = 0; m < NM; m++) {
        for (int j = 0; j < MAX_NUCS; j++) {
            mats[m * MAX_NUCS + j] = (m * 5 + j * 3 + 1) % NI;
        }
    }
    return mats;
}

double* init_concs(Params* p) {
    int NM = p->n_materials;
    double* concs = (double*)malloc(NM * MAX_NUCS * sizeof(double));
    for (int m = 0; m < NM; m++) {
        for (int j = 0; j < MAX_NUCS; j++) {
            concs[m * MAX_NUCS + j] = (double)((m + j * 2) % 10 + 1) / 10.0;
        }
    }
    return concs;
}
"#;

/// The lookup core, shared verbatim between the OpenMP and CUDA variants
/// (in the CUDA repo it is compiled by nvcc and called from the kernel).
const SIM_CORE: &str = r#"int grid_search(const double* row, int n, double e) {
    int lo = 0;
    int hi = n - 1;
    while (lo < hi) {
        int mid = (lo + hi) / 2;
        if (row[mid] < e) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return lo;
}

long lookup_one(long l, long seed, const double* energy_grid, const double* xs_data,
                const int* num_nucs, const int* mats, const double* concs,
                int n_isotopes, int n_gridpoints, int n_materials) {
    long state = rng_init(seed, l);
    state = rng_next(state);
    double energy = rng_u01(state);
    state = rng_next(state);
    long pick = state >> 17;
    int mat = (int)(pick % n_materials);
    double macro0 = 0.0;
    double macro1 = 0.0;
    double macro2 = 0.0;
    double macro3 = 0.0;
    double macro4 = 0.0;
    int nn = num_nucs[mat];
    for (int j = 0; j < nn; j++) {
        int nuc = mats[mat * 6 + j];
        double conc = concs[mat * 6 + j];
        int idx = grid_search(energy_grid + nuc * n_gridpoints, n_gridpoints, energy);
        int kLow = idx;
        if (kLow > 0) kLow = kLow - 1;
        int kHigh = kLow + 1;
        if (kHigh > n_gridpoints - 1) kHigh = n_gridpoints - 1;
        double eLow = energy_grid[nuc * n_gridpoints + kLow];
        double eHigh = energy_grid[nuc * n_gridpoints + kHigh];
        double f = 0.0;
        if (eHigh > eLow) f = (energy - eLow) / (eHigh - eLow);
        if (f < 0.0) f = 0.0;
        if (f > 1.0) f = 1.0;
        int baseLow = (nuc * n_gridpoints + kLow) * N_CHANNELS;
        int baseHigh = (nuc * n_gridpoints + kHigh) * N_CHANNELS;
        macro0 += conc * (xs_data[baseLow + 0] + f * (xs_data[baseHigh + 0] - xs_data[baseLow + 0]));
        macro1 += conc * (xs_data[baseLow + 1] + f * (xs_data[baseHigh + 1] - xs_data[baseLow + 1]));
        macro2 += conc * (xs_data[baseLow + 2] + f * (xs_data[baseHigh + 2] - xs_data[baseLow + 2]));
        macro3 += conc * (xs_data[baseLow + 3] + f * (xs_data[baseHigh + 3] - xs_data[baseLow + 3]));
        macro4 += conc * (xs_data[baseLow + 4] + f * (xs_data[baseHigh + 4] - xs_data[baseLow + 4]));
    }
    long v = (long)(macro0 * 10000.0) + (long)(macro1 * 1000.0) + (long)(macro2 * 100.0)
        + (long)(macro3 * 10.0) + (long)(macro4);
    return v % 999983;
}
"#;

const IO_SRC: &str = r#"#include <stdio.h>
#include "xsbench.h"

void print_results(Params* p, long verification) {
    printf("Simulation complete.\n");
    printf("Lookups: %d\n", p->n_lookups);
    printf("Verification checksum: %ld\n", verification);
}
"#;

const OMP_SIM_DRIVER: &str = r#"#include <omp.h>
#include "xsbench.h"

long run_simulation(Params* p, const double* energy_grid, const double* xs_data,
                    const int* num_nucs, const int* mats, const double* concs) {
    long verification = 0;
    int L = p->n_lookups;
    int NI = p->n_isotopes;
    int NG = p->n_gridpoints;
    int NM = p->n_materials;
    long seed = p->seed;
    #pragma omp parallel for reduction(+: verification)
    for (int l = 0; l < L; l++) {
        verification += lookup_one(l, seed, energy_grid, xs_data, num_nucs, mats, concs, NI, NG, NM);
    }
    return verification;
}
"#;

const CUDA_SIM_DRIVER: &str = r#"#include <cuda_runtime.h>
#include "xsbench.h"

__global__ void lookup_kernel(long* results, long seed, const double* energy_grid,
                              const double* xs_data, const int* num_nucs, const int* mats,
                              const double* concs, int L, int NI, int NG, int NM) {
    int l = blockIdx.x * blockDim.x + threadIdx.x;
    if (l < L) {
        results[l] = lookup_one(l, seed, energy_grid, xs_data, num_nucs, mats, concs, NI, NG, NM);
    }
}

long run_simulation(Params* p, const double* energy_grid, const double* xs_data,
                    const int* num_nucs, const int* mats, const double* concs) {
    int L = p->n_lookups;
    int NI = p->n_isotopes;
    int NG = p->n_gridpoints;
    int NM = p->n_materials;
    double* d_energy;
    double* d_xs;
    int* d_num_nucs;
    int* d_mats;
    double* d_concs;
    long* d_results;
    cudaMalloc(&d_energy, NI * NG * sizeof(double));
    cudaMalloc(&d_xs, NI * NG * N_CHANNELS * sizeof(double));
    cudaMalloc(&d_num_nucs, NM * sizeof(int));
    cudaMalloc(&d_mats, NM * 6 * sizeof(int));
    cudaMalloc(&d_concs, NM * 6 * sizeof(double));
    cudaMalloc(&d_results, L * sizeof(long));
    cudaMemcpy(d_energy, energy_grid, NI * NG * sizeof(double), cudaMemcpyHostToDevice);
    cudaMemcpy(d_xs, xs_data, NI * NG * N_CHANNELS * sizeof(double), cudaMemcpyHostToDevice);
    cudaMemcpy(d_num_nucs, num_nucs, NM * sizeof(int), cudaMemcpyHostToDevice);
    cudaMemcpy(d_mats, mats, NM * 6 * sizeof(int), cudaMemcpyHostToDevice);
    cudaMemcpy(d_concs, concs, NM * 6 * sizeof(double), cudaMemcpyHostToDevice);
    int threads = 128;
    int blocks = (L + threads - 1) / threads;
    lookup_kernel<<<blocks, threads>>>(d_results, p->seed, d_energy, d_xs, d_num_nucs, d_mats, d_concs, L, NI, NG, NM);
    cudaDeviceSynchronize();
    long* h_results = (long*)malloc(L * sizeof(long));
    cudaMemcpy(h_results, d_results, L * sizeof(long), cudaMemcpyDeviceToHost);
    long verification = 0;
    for (int l = 0; l < L; l++) {
        verification += h_results[l];
    }
    cudaFree(d_energy);
    cudaFree(d_xs);
    cudaFree(d_num_nucs);
    cudaFree(d_mats);
    cudaFree(d_concs);
    cudaFree(d_results);
    free(h_results);
    return verification;
}
"#;

fn main_src(extra_include: &str) -> String {
    format!(
        r#"#include <stdio.h>
#include <stdlib.h>
{extra_include}#include "xsbench.h"

long run_simulation(Params* p, const double* energy_grid, const double* xs_data,
                    const int* num_nucs, const int* mats, const double* concs);

int main(int argc, char** argv) {{
    Params* p = (Params*)malloc(sizeof(Params));
    read_params(argc, argv, p);
    printf("XSBench (MiniHPC port)\n");
    printf("Isotopes: %d  Gridpoints: %d  Materials: %d\n", p->n_isotopes, p->n_gridpoints, p->n_materials);
    double* energy_grid = init_energy_grid(p);
    double* xs_data = init_xs_data(p);
    int* num_nucs = init_num_nucs(p);
    int* mats = init_mats(p);
    double* concs = init_concs(p);
    long verification = run_simulation(p, energy_grid, xs_data, num_nucs, mats, concs);
    print_results(p, verification);
    free(energy_grid);
    free(xs_data);
    free(num_nucs);
    free(mats);
    free(concs);
    free(p);
    return 0;
}}
"#
    )
}

const README: &str = "# XSBench (MiniHPC port)\n\nA proxy application for the \
macroscopic cross-section lookup kernel of OpenMC (Tramm et al., PHYSOR 2014). \
Implementations: OpenMP threads and CUDA. Public ports to OpenMP offload and \
Kokkos exist upstream, making this the benchmark's data-contamination probe.\n";

pub fn xsbench() -> Application {
    let omp_sources = [
        "src/main.cpp",
        "src/params.cpp",
        "src/rng.cpp",
        "src/grid_init.cpp",
        "src/materials.cpp",
        "src/sim.cpp",
        "src/sim_driver.cpp",
        "src/io.cpp",
    ];
    let omp_makefile = format!(
        "CXX = g++\nCXXFLAGS = -O2 -fopenmp -lm\nSRCS = {srcs}\n\nxsbench: $(SRCS)\n\t$(CXX) $(CXXFLAGS) -o xsbench $(SRCS)\n\n.PHONY: clean\nclean:\n\trm -f xsbench\n",
        srcs = omp_sources.join(" ")
    );
    let cuda_sources = [
        "src/main.cu",
        "src/params.cu",
        "src/rng.cu",
        "src/grid_init.cu",
        "src/materials.cu",
        "src/sim.cu",
        "src/sim_driver.cu",
        "src/io.cu",
    ];
    let cuda_makefile = format!(
        "NVCC = nvcc\nNVCCFLAGS = -O2 -arch=sm_80\nSRCS = {srcs}\n\nxsbench: $(SRCS)\n\t$(NVCC) $(NVCCFLAGS) -o xsbench $(SRCS)\n\n.PHONY: clean\nclean:\n\trm -f xsbench\n",
        srcs = cuda_sources.join(" ")
    );

    let mut omp_repo = SourceRepo::new()
        .with_file("Makefile", omp_makefile)
        .with_file("README.md", README)
        .with_file("src/xsbench.h", HEADER)
        .with_file("src/main.cpp", main_src(""))
        .with_file("src/params.cpp", PARAMS_SRC)
        .with_file("src/rng.cpp", RNG_SRC)
        .with_file("src/grid_init.cpp", GRID_INIT_SRC)
        .with_file("src/materials.cpp", MATERIALS_SRC)
        .with_file("src/io.cpp", IO_SRC)
        .with_file("src/sim_driver.cpp", OMP_SIM_DRIVER);
    omp_repo.add(
        "src/sim.cpp",
        format!("#include \"xsbench.h\"\n\n{SIM_CORE}"),
    );

    let mut cuda_repo = SourceRepo::new()
        .with_file("Makefile", cuda_makefile)
        .with_file("README.md", README)
        .with_file("src/xsbench.h", HEADER)
        .with_file("src/main.cu", main_src("#include <cuda_runtime.h>\n"))
        .with_file("src/params.cu", PARAMS_SRC)
        .with_file("src/rng.cu", RNG_SRC)
        .with_file("src/grid_init.cu", GRID_INIT_SRC)
        .with_file("src/materials.cu", MATERIALS_SRC)
        .with_file("src/io.cu", IO_SRC)
        .with_file("src/sim_driver.cu", CUDA_SIM_DRIVER);
    cuda_repo.add(
        "src/sim.cu",
        format!("#include \"xsbench.h\"\n\n{SIM_CORE}"),
    );

    let mut repos = BTreeMap::new();
    repos.insert(ExecutionModel::OmpThreads, omp_repo);
    repos.insert(ExecutionModel::Cuda, cuda_repo);

    let gt_sources = [
        "src/main.cpp",
        "src/params.cpp",
        "src/rng.cpp",
        "src/grid_init.cpp",
        "src/materials.cpp",
        "src/sim.cpp",
        "src/sim_driver.cpp",
        "src/io.cpp",
    ];
    let mut gt = BTreeMap::new();
    gt.insert(
        ExecutionModel::OmpOffload,
        (
            "Makefile".to_string(),
            gt_make_omp_offload("xsbench", &gt_sources),
        ),
    );
    gt.insert(
        ExecutionModel::Kokkos,
        (
            "CMakeLists.txt".to_string(),
            gt_cmake_kokkos("xsbench", &gt_sources),
        ),
    );

    Application {
        name: "XSBench".into(),
        binary: "xsbench".into(),
        repos: share(repos),
        tests: vec![
            TestCase::new(["1000"]),
            TestCase::new(["2000", "12", "64", "1070"]),
            TestCase::new(["500", "20", "32", "7"]),
        ],
        cli_spec: "The program must be invoked as `xsbench [n_lookups] [n_isotopes] \
                   [n_gridpoints] [seed]` (defaults 2000 12 64 1070) and print the header \
                   lines followed by `Lookups: <n>` and `Verification checksum: <v>`."
            .to_string(),
        build_spec: "The build must produce an executable named `xsbench` in the repository \
                     root, compiling all eight sources under src/."
            .to_string(),
        ground_truth_build: gt,
        public_ports_exist: true,
        gen_digest: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minihpc_build::{build_repo, BuildRequest};
    use minihpc_runtime::{run, RunConfig};

    fn run_model(model: ExecutionModel, args: &[&str]) -> minihpc_runtime::RunResult {
        let app = xsbench();
        let out = build_repo(app.repo(model).unwrap(), &BuildRequest::new(&*app.binary));
        assert!(out.succeeded(), "{model} build failed:\n{}", out.log.text());
        run(
            &out.executable.unwrap(),
            RunConfig::with_args(args.iter().copied()),
        )
    }

    #[test]
    fn omp_and_cuda_checksums_agree() {
        let omp = run_model(ExecutionModel::OmpThreads, &["400"]);
        let cuda = run_model(ExecutionModel::Cuda, &["400"]);
        assert!(omp.error.is_none(), "{:?}", omp.error);
        assert!(cuda.error.is_none(), "{:?}", cuda.error);
        assert_eq!(omp.stdout, cuda.stdout);
        assert!(cuda.telemetry.ran_on_device());
        assert!(!omp.telemetry.ran_on_device());
    }

    #[test]
    fn checksum_depends_on_seed_and_size() {
        let a = run_model(ExecutionModel::OmpThreads, &["300", "12", "64", "1"]);
        let b = run_model(ExecutionModel::OmpThreads, &["300", "12", "64", "2"]);
        assert_ne!(a.stdout, b.stdout);
        let c = run_model(ExecutionModel::OmpThreads, &["301", "12", "64", "1"]);
        assert_ne!(a.stdout, c.stdout);
    }

    #[test]
    fn parallel_schedule_matches_sequential() {
        let app = xsbench();
        let out = build_repo(
            app.repo(ExecutionModel::OmpThreads).unwrap(),
            &BuildRequest::new(&*app.binary),
        );
        let exe = out.executable.unwrap();
        let seq = run(&exe, RunConfig::with_args(["500"]));
        let mut cfg = RunConfig::with_args(["500"]);
        cfg.parallel = true;
        let par = run(&exe, cfg);
        assert_eq!(
            seq.stdout, par.stdout,
            "integer checksum is schedule-invariant"
        );
    }
}
