//! # minihpc-gen
//!
//! A deterministic, seed-driven generator of synthetic MiniHPC
//! repositories. The paper evaluates repo-level translation on six
//! hand-ported applications; this crate turns that fixed benchmark into an
//! unbounded family of workloads — and, run with the error-injection knobs,
//! into a fuzzer for the parser/sema/build/run stack.
//!
//! A [`GenSpec`] describes one synthetic application: how many kernel
//! files, which kernel kinds ([`KernelKind`]), which pragma dialect the
//! source uses ([`PragmaModel`]), which build system, and which defect (if
//! any) to inject ([`ErrorProfile`]). [`generate`] expands a spec into a
//! [`GeneratedApp`] — a complete [`SourceRepo`] plus the contract strings a
//! harness needs to register it as a benchmark application.
//!
//! Everything is a pure function of the spec: the same spec yields a
//! byte-identical repository (pinned by proptest in the workspace's
//! `tests/gen.rs`), and the spec's [`GenSpec::digest`] — which hashes the
//! seed and every knob — is what experiment-plan fingerprints incorporate
//! so a resumed run detects generator drift.
//!
//! The generated code deliberately reuses the syntactic shapes of the
//! hand-written suite (kernel functions over `const int* in, int* out`
//! pointer parameters, `#pragma omp parallel for` with optional
//! `reduction`/`collapse` clauses, a `main` driver printing deterministic
//! checksum lines), so the whole existing pipeline — oracle transpiler,
//! simulated backends, static analyzer — applies to generated apps
//! unchanged.

use minihpc_lang::model::{BuildSystemKind, ExecutionModel};
use minihpc_lang::repo::SourceRepo;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The inner-loop shape of one generated kernel file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelKind {
    /// 1-D three-point neighbour sum (memory-bound, data-parallel).
    Stencil,
    /// Scalar accumulation over the input (`reduction(+: total)`), then a
    /// data-parallel rescale so every output element is written.
    Reduction,
    /// Dense `d x d` inner-product loop nest under `collapse(2)`, with a
    /// copy-through tail for elements beyond the square.
    GemmLike,
    /// Element-wise copy with a cheap per-element twist (bandwidth-bound).
    MemcpyBound,
}

impl KernelKind {
    pub const ALL: [KernelKind; 4] = [
        KernelKind::Stencil,
        KernelKind::Reduction,
        KernelKind::GemmLike,
        KernelKind::MemcpyBound,
    ];

    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Stencil => "stencil",
            KernelKind::Reduction => "reduction",
            KernelKind::GemmLike => "gemm-like",
            KernelKind::MemcpyBound => "memcpy-bound",
        }
    }
}

/// Which pragma dialect the generated *source* repository uses.
///
/// Only [`PragmaModel::Threads`] repositories are registrable on the
/// experiment grid (they are [`ExecutionModel::OmpThreads`] sources for the
/// OMP-threads → OMP-offload translation pair); `Serial` and `Offload`
/// exist for the fuzzing pipeline, which exercises parse/sema/build/run
/// over every dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PragmaModel {
    /// No OpenMP pragmas at all.
    Serial,
    /// `#pragma omp parallel for` (+ `reduction`/`collapse`) on host.
    Threads,
    /// `#pragma omp target teams distribute parallel for` with explicit
    /// `map` clauses.
    Offload,
}

impl PragmaModel {
    pub const ALL: [PragmaModel; 3] = [
        PragmaModel::Serial,
        PragmaModel::Threads,
        PragmaModel::Offload,
    ];

    pub fn name(self) -> &'static str {
        match self {
            PragmaModel::Serial => "serial",
            PragmaModel::Threads => "threads",
            PragmaModel::Offload => "offload",
        }
    }
}

/// Which defect (if any) [`generate`] injects into the repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ErrorProfile {
    /// No injected defect: the repo parses, builds, and runs.
    Clean,
    /// One kernel file ends mid-function (unclosed brace): the parser must
    /// reject it and the build must fail with a parse diagnostic.
    ParseError,
    /// One kernel file references an undeclared identifier: parsing
    /// succeeds, semantic analysis / compilation must reject it.
    SemaError,
    /// A `Reduction` kernel's `reduction(+: ...)` clause is dropped while
    /// the accumulation stays — the directive race `minihpc-analyze` flags
    /// as `RawReduction`. The repo still builds and (on the deterministic
    /// interpreter substrate) still runs.
    DirectiveRace,
}

impl ErrorProfile {
    pub const ALL: [ErrorProfile; 4] = [
        ErrorProfile::Clean,
        ErrorProfile::ParseError,
        ErrorProfile::SemaError,
        ErrorProfile::DirectiveRace,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ErrorProfile::Clean => "clean",
            ErrorProfile::ParseError => "parse-error",
            ErrorProfile::SemaError => "sema-error",
            ErrorProfile::DirectiveRace => "directive-race",
        }
    }
}

/// A complete description of one synthetic application. Every field is a
/// knob; [`generate`] is a pure function of the whole struct.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GenSpec {
    /// Seed for every random choice the generator makes (kernel constants,
    /// which file receives an injected defect, ...).
    pub seed: u64,
    /// Number of kernel source files (clamped to at least 1). The repo
    /// additionally holds a shared header, a `main` driver, and a build
    /// file.
    pub files: usize,
    /// Kernel kinds, cycled across the kernel files. Empty = draw each
    /// file's kind from the seed.
    pub kernels: Vec<KernelKind>,
    pub pragma_model: PragmaModel,
    pub build_system: BuildSystemKind,
    pub errors: ErrorProfile,
}

impl GenSpec {
    /// A clean, Makefile-built, threads-model spec — the grid-registrable
    /// default shape.
    pub fn new(seed: u64) -> Self {
        GenSpec {
            seed,
            files: 2,
            kernels: Vec::new(),
            pragma_model: PragmaModel::Threads,
            build_system: BuildSystemKind::Make,
            errors: ErrorProfile::Clean,
        }
    }

    pub fn with_files(mut self, files: usize) -> Self {
        self.files = files;
        self
    }

    pub fn with_kernels(mut self, kernels: impl IntoIterator<Item = KernelKind>) -> Self {
        self.kernels = kernels.into_iter().collect();
        self
    }

    pub fn with_pragma_model(mut self, model: PragmaModel) -> Self {
        self.pragma_model = model;
        self
    }

    pub fn with_build_system(mut self, kind: BuildSystemKind) -> Self {
        self.build_system = kind;
        self
    }

    pub fn with_errors(mut self, errors: ErrorProfile) -> Self {
        self.errors = errors;
        self
    }

    /// The application name this spec registers under. Embeds the seed, so
    /// distinct seeds register distinct grid cells.
    pub fn name(&self) -> String {
        format!(
            "gen-{}{}-{:08x}",
            match self.pragma_model {
                PragmaModel::Serial => "s",
                PragmaModel::Threads => "t",
                PragmaModel::Offload => "o",
            },
            self.files.max(1),
            self.seed,
        )
    }

    /// The binary the build contract requires.
    pub fn binary(&self) -> String {
        format!("gen{:08x}", self.seed)
    }

    /// 64-bit FNV-1a over the seed and every knob — the value experiment
    /// plans fold into their fingerprint so `Runner::resume` refuses a
    /// journal written by a grid of differently-generated apps.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
            // Field separator so adjacent fields cannot alias.
            h = (h ^ 0xff).wrapping_mul(PRIME);
        };
        eat(b"minihpc-gen-v1");
        eat(&self.seed.to_le_bytes());
        eat(&(self.files as u64).to_le_bytes());
        for k in &self.kernels {
            eat(k.name().as_bytes());
        }
        eat(self.pragma_model.name().as_bytes());
        eat(match self.build_system {
            BuildSystemKind::Make => b"make",
            BuildSystemKind::CMake => b"cmake",
        });
        eat(self.errors.name().as_bytes());
        h
    }
}

/// What [`generate`] produces: the repository plus everything a harness
/// needs to register the spec as a benchmark application.
#[derive(Debug, Clone)]
pub struct GeneratedApp {
    pub name: String,
    pub binary: String,
    /// The source repository (header + kernel files + driver + build file).
    pub repo: SourceRepo,
    /// The execution model the repository is written in.
    pub model: ExecutionModel,
    /// The code files the build compiles, in build-file order — what a
    /// ground-truth build file for a *target* model must list.
    pub sources: Vec<String>,
    pub cli_spec: String,
    pub build_spec: String,
    /// Developer test cases: CLI argument vectors.
    pub tests: Vec<Vec<String>>,
    /// [`GenSpec::digest`] of the generating spec.
    pub digest: u64,
}

/// The kernel kind of file `i` under `spec` (the cycled mix, or a draw
/// from the spec's own deterministic side stream when the mix is empty).
fn kind_of(spec: &GenSpec, i: usize) -> KernelKind {
    if spec.kernels.is_empty() {
        // A dedicated stream per file keeps the choice independent of the
        // constants drawn for other files.
        let mut rng =
            StdRng::seed_from_u64(spec.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        KernelKind::ALL[rng.gen_range(0..KernelKind::ALL.len())]
    } else {
        spec.kernels[i % spec.kernels.len()]
    }
}

/// The pragma line opening one parallel loop, or an empty string for
/// serial code. `reduction`/`collapse` are appended per kernel kind;
/// offload directives carry explicit `map` clauses over the kernel's
/// pointer parameters.
fn pragma_line(model: PragmaModel, clauses: &str, maps: &str) -> String {
    match model {
        PragmaModel::Serial => String::new(),
        PragmaModel::Threads => {
            if clauses.is_empty() {
                "    #pragma omp parallel for\n".to_string()
            } else {
                format!("    #pragma omp parallel for {clauses}\n")
            }
        }
        PragmaModel::Offload => {
            let tail = if clauses.is_empty() {
                String::new()
            } else {
                format!(" {clauses}")
            };
            format!("    #pragma omp target teams distribute parallel for{tail} {maps}\n")
        }
    }
}

/// One kernel file: `void kernel<i>(const int* in, int* out, int n)` in the
/// spec's pragma dialect, with seed-drawn constants.
fn kernel_source(spec: &GenSpec, i: usize, kind: KernelKind, rng: &mut StdRng) -> String {
    let pm = spec.pragma_model;
    let maps = "map(to: in[0:n]) map(tofrom: out[0:n])";
    // Small odd constants keep every intermediate well inside 32-bit range
    // for the test sizes the contract allows.
    let c1 = 3 + 2 * rng.gen_range(0..8); // 3..17 odd
    let c2 = 5 + 2 * rng.gen_range(0..8); // 5..19 odd
    let modu = [257usize, 509, 1021, 2039][rng.gen_range(0..4)];
    let body = match kind {
        KernelKind::Stencil => {
            let p = pragma_line(pm, "", maps);
            format!(
                "{p}    for (int i = 0; i < n; i++) {{\n        int acc = in[i] * {c1};\n        if (i > 0) acc += in[i - 1];\n        if (i < n - 1) acc += in[i + 1] * {c2};\n        out[i] = acc % {modu};\n    }}\n"
            )
        }
        KernelKind::Reduction => {
            let drop_clause = spec.errors == ErrorProfile::DirectiveRace;
            let p1 = pragma_line(
                pm,
                if drop_clause {
                    ""
                } else {
                    "reduction(+: total)"
                },
                maps,
            );
            let p2 = pragma_line(pm, "", maps);
            format!(
                "    long total = 0;\n{p1}    for (int i = 0; i < n; i++) {{\n        total += in[i] % {modu};\n    }}\n    int base = (int)(total % {c2}) + {c1};\n{p2}    for (int i = 0; i < n; i++) {{\n        out[i] = (in[i] + base * (i % 7 + 1)) % {modu};\n    }}\n"
            )
        }
        KernelKind::GemmLike => {
            let p1 = pragma_line(pm, "collapse(2)", maps);
            let p2 = pragma_line(pm, "", maps);
            format!(
                "    int d = 1;\n    while ((d + 1) * (d + 1) <= n) {{\n        d = d + 1;\n    }}\n{p1}    for (int i = 0; i < d; i++) {{\n        for (int j = 0; j < d; j++) {{\n            int acc = 0;\n            for (int k = 0; k < d; k++) {{\n                acc += (in[i * d + k] % {c1}) * (in[k * d + j] % {c2});\n            }}\n            out[i * d + j] = acc % {modu};\n        }}\n    }}\n{p2}    for (int i = d * d; i < n; i++) {{\n        out[i] = in[i];\n    }}\n"
            )
        }
        KernelKind::MemcpyBound => {
            let p = pragma_line(pm, "", maps);
            format!(
                "{p}    for (int i = 0; i < n; i++) {{\n        out[i] = (in[i] * {c1} + i % {c2}) % {modu};\n    }}\n"
            )
        }
    };
    let include = if pm == PragmaModel::Serial {
        ""
    } else {
        "#include <omp.h>\n"
    };
    format!(
        "{include}#include \"kernels.h\"\n\n/* {kind}: generated kernel {i} */\nvoid kernel{i}(const int* in, int* out, int n) {{\n{body}}}\n",
        kind = kind.name(),
    )
}

/// The shared header declaring every kernel.
fn header_source(files: usize) -> String {
    let mut out = String::new();
    for i in 0..files {
        out.push_str(&format!(
            "void kernel{i}(const int* in, int* out, int n);\n"
        ));
    }
    out
}

/// The `main` driver: parse `<n> <iterations>`, run every kernel in a
/// ping-pong loop, print the header line and one checksum line per kernel
/// file plus a final combined checksum.
fn main_source(spec: &GenSpec, files: usize, rng: &mut StdRng) -> String {
    let init_mul = 3 + 2 * rng.gen_range(0..12);
    let init_add = rng.gen_range(1..23);
    let init_mod = [23usize, 29, 31, 37][rng.gen_range(0..4)];
    let omp_include = if spec.pragma_model == PragmaModel::Serial {
        ""
    } else {
        "#include <omp.h>\n"
    };
    let mut calls = String::new();
    for i in 0..files {
        calls.push_str(&format!(
            "        kernel{i}(buf_in, buf_out, n);\n        tmp = buf_in;\n        buf_in = buf_out;\n        buf_out = tmp;\n"
        ));
    }
    format!(
        r#"#include <stdio.h>
#include <stdlib.h>
{omp_include}#include "kernels.h"

int main(int argc, char** argv) {{
    if (argc < 3) {{
        printf("usage: gen <n> <iterations>\n");
        return 1;
    }}
    int n = atoi(argv[1]);
    int iterations = atoi(argv[2]);
    int* buf_in = (int*)malloc(n * sizeof(int));
    int* buf_out = (int*)malloc(n * sizeof(int));
    int* tmp;
    for (int i = 0; i < n; i++) {{
        buf_in[i] = (i * {init_mul} + {init_add}) % {init_mod};
        buf_out[i] = 0;
    }}
    for (int t = 0; t < iterations; t++) {{
{calls}    }}
    long sum = 0;
    for (int k = 0; k < n; k++) {{
        sum += buf_in[k] * (k % 13 + 1);
    }}
    printf("gen %d iterations %d\n", n, iterations);
    printf("kernels {files}\n");
    printf("checksum %ld\n", sum);
    free(buf_in);
    free(buf_out);
    return 0;
}}
"#
    )
}

/// Makefile for the generated sources. Threads/serial repos build with
/// plain g++ (+ `-fopenmp` when pragmas are present); offload repos use
/// the clang++ offload toolchain the hand-written suite's ground-truth
/// builds use.
fn makefile(spec: &GenSpec, binary: &str, sources: &[String]) -> String {
    let srcs = sources.join(" ");
    let (cxx, flags) = match spec.pragma_model {
        PragmaModel::Serial => ("g++", "-O2".to_string()),
        PragmaModel::Threads => ("g++", "-O2 -fopenmp".to_string()),
        PragmaModel::Offload => (
            "clang++",
            "-O2 -fopenmp -fopenmp-targets=nvptx64-nvidia-cuda".to_string(),
        ),
    };
    format!(
        "CXX = {cxx}\nCXXFLAGS = {flags}\n\n{binary}: {srcs}\n\t$(CXX) $(CXXFLAGS) -o {binary} {srcs}\n\n.PHONY: clean\nclean:\n\trm -f {binary}\n"
    )
}

/// CMakeLists.txt for the generated sources (OpenMP via
/// `find_package(OpenMP)` when pragmas are present).
fn cmakelists(spec: &GenSpec, binary: &str, sources: &[String]) -> String {
    let srcs = sources.join(" ");
    let mut out = format!(
        "cmake_minimum_required(VERSION 3.16)\nproject({binary} LANGUAGES CXX)\nset(CMAKE_CXX_STANDARD 17)\n"
    );
    if spec.pragma_model != PragmaModel::Serial {
        out.push_str("find_package(OpenMP REQUIRED)\n");
    }
    out.push_str(&format!("add_executable({binary} {srcs})\n"));
    if spec.pragma_model != PragmaModel::Serial {
        out.push_str(&format!(
            "target_link_libraries({binary} PRIVATE OpenMP::OpenMP_CXX)\n"
        ));
    }
    out
}

/// Expand `spec` into a complete synthetic application. Pure: the same
/// spec always yields byte-identical files.
pub fn generate(spec: &GenSpec) -> GeneratedApp {
    let files = spec.files.max(1);
    let binary = spec.binary();
    let mut rng = StdRng::seed_from_u64(spec.seed);

    let mut kinds: Vec<KernelKind> = (0..files).map(|i| kind_of(spec, i)).collect();
    // A directive race needs a reduction to strip; force one in if the mix
    // has none, so the profile is never a silent no-op.
    if spec.errors == ErrorProfile::DirectiveRace && !kinds.contains(&KernelKind::Reduction) {
        let slot = rng.gen_range(0..kinds.len());
        kinds[slot] = KernelKind::Reduction;
    }

    let mut repo = SourceRepo::new();
    let mut sources = Vec::with_capacity(files + 1);
    repo.add("src/kernels.h", header_source(files));
    for (i, kind) in kinds.iter().enumerate() {
        let path = format!("src/k{i}.cpp");
        repo.add(path.clone(), kernel_source(spec, i, *kind, &mut rng));
        sources.push(path);
    }
    let main_path = "src/main.cpp".to_string();
    repo.add(main_path.clone(), main_source(spec, files, &mut rng));
    sources.push(main_path);

    match spec.build_system {
        BuildSystemKind::Make => repo.add("Makefile", makefile(spec, &binary, &sources)),
        BuildSystemKind::CMake => repo.add("CMakeLists.txt", cmakelists(spec, &binary, &sources)),
    }

    // Defect injection, after the clean repo is assembled so the defect is
    // a minimal, localized delta. (DirectiveRace is handled inside
    // `kernel_source`, where the clause is simply not emitted.)
    match spec.errors {
        ErrorProfile::Clean | ErrorProfile::DirectiveRace => {}
        ErrorProfile::ParseError => {
            let victim = rng.gen_range(0..files);
            let path = format!("src/k{victim}.cpp");
            let mut text = repo.get(&path).expect("kernel file exists").to_string();
            text.push_str("\nint truncated(int x) {\n    return x + 1;\n");
            repo.add(path, text);
        }
        ErrorProfile::SemaError => {
            let victim = rng.gen_range(0..files);
            let path = format!("src/k{victim}.cpp");
            let mut text = repo.get(&path).expect("kernel file exists").to_string();
            text.push_str("\nint misuse(int x) {\n    return x + gen_undeclared_identifier;\n}\n");
            repo.add(path, text);
        }
    }

    let model = ExecutionModel::OmpThreads;
    let cli_spec = format!(
        "The program must be invoked as `<binary> <n> <iterations>` where n is the \
         buffer length and iterations the number of kernel sweeps. It must print three \
         lines: `gen <n> <iterations>`, `kernels {files}`, and `checksum <sum>`."
    );
    let build_spec = match spec.build_system {
        BuildSystemKind::Make => "The build must produce an executable named after the \
             application in the repository root, via make. For OpenMP offload use clang++ \
             with -fopenmp -fopenmp-targets=nvptx64-nvidia-cuda."
            .to_string(),
        BuildSystemKind::CMake => "The build must produce an executable named after the \
             application in the repository root, via CMake with find_package(OpenMP)."
            .to_string(),
    };
    let tests = vec![
        vec!["64".to_string(), "2".to_string()],
        vec!["33".to_string(), "3".to_string()],
    ];

    GeneratedApp {
        name: spec.name(),
        binary,
        repo,
        model,
        sources,
        cli_spec,
        build_spec,
        tests,
        digest: spec.digest(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minihpc_build::{build_repo, BuildRequest};
    use minihpc_runtime::{run, RunConfig};

    fn build_and_run(app: &GeneratedApp, args: &[&str]) -> String {
        let outcome = build_repo(&app.repo, &BuildRequest::new(app.binary.as_str()));
        let exe = outcome
            .executable
            .unwrap_or_else(|| panic!("{} build failed:\n{}", app.name, outcome.log.text()));
        let r = run(&exe, RunConfig::with_args(args.iter().copied()));
        assert!(
            r.error.is_none() && r.exit_code == 0,
            "{} run failed: {:?}\n{}",
            app.name,
            r.error,
            r.stdout
        );
        r.stdout
    }

    #[test]
    fn clean_specs_build_and_run_for_every_kernel_kind() {
        for (i, kind) in KernelKind::ALL.into_iter().enumerate() {
            let spec = GenSpec::new(100 + i as u64)
                .with_kernels([kind])
                .with_files(1);
            let app = generate(&spec);
            let out = build_and_run(&app, &["40", "2"]);
            assert!(out.starts_with("gen 40 iterations 2\n"), "{kind:?}: {out}");
            assert!(out.contains("checksum "), "{kind:?}: {out}");
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let spec = GenSpec::new(7).with_files(3);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(
            a.repo.iter().collect::<Vec<_>>(),
            b.repo.iter().collect::<Vec<_>>()
        );
        assert_eq!(a.digest, b.digest);
        let c = generate(&GenSpec::new(8).with_files(3));
        assert_ne!(
            a.repo.iter().collect::<Vec<_>>(),
            c.repo.iter().collect::<Vec<_>>()
        );
        assert_ne!(a.digest, c.digest);
        assert_ne!(a.name, c.name);
    }

    #[test]
    fn serial_and_offload_dialects_build_and_run() {
        for pm in [PragmaModel::Serial, PragmaModel::Offload] {
            let spec = GenSpec::new(11).with_files(2).with_pragma_model(pm);
            let app = generate(&spec);
            let out = build_and_run(&app, &["25", "1"]);
            assert!(out.contains("checksum "), "{pm:?}: {out}");
        }
    }

    #[test]
    fn cmake_build_system_knob_builds() {
        let spec = GenSpec::new(13)
            .with_files(2)
            .with_build_system(BuildSystemKind::CMake);
        let app = generate(&spec);
        assert!(app.repo.contains("CMakeLists.txt"));
        let out = build_and_run(&app, &["16", "1"]);
        assert!(out.contains("checksum "), "{out}");
    }

    #[test]
    fn parse_error_profile_fails_to_build_with_parse_diagnostic() {
        let spec = GenSpec::new(21).with_errors(ErrorProfile::ParseError);
        let app = generate(&spec);
        let outcome = build_repo(&app.repo, &BuildRequest::new(app.binary.as_str()));
        assert!(!outcome.succeeded(), "parse-error repo must not build");
    }

    #[test]
    fn sema_error_profile_fails_to_build() {
        let spec = GenSpec::new(22).with_errors(ErrorProfile::SemaError);
        let app = generate(&spec);
        let outcome = build_repo(&app.repo, &BuildRequest::new(app.binary.as_str()));
        assert!(!outcome.succeeded(), "sema-error repo must not build");
    }

    #[test]
    fn directive_race_profile_builds_and_is_flagged() {
        let spec = GenSpec::new(23)
            .with_files(2)
            .with_errors(ErrorProfile::DirectiveRace);
        let app = generate(&spec);
        let out = build_and_run(&app, &["30", "1"]);
        assert!(out.contains("checksum "), "{out}");
        let findings = minihpc_analyze::analyze_repo(&app.repo);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == minihpc_analyze::Rule::RawReduction),
            "expected a RawReduction finding, got {findings:?}"
        );
    }

    #[test]
    fn digest_covers_every_knob() {
        let base = GenSpec::new(1);
        let variants = [
            base.clone().with_files(5),
            base.clone().with_kernels([KernelKind::Stencil]),
            base.clone().with_pragma_model(PragmaModel::Serial),
            base.clone().with_build_system(BuildSystemKind::CMake),
            base.clone().with_errors(ErrorProfile::ParseError),
            GenSpec::new(2),
        ];
        let d0 = base.digest();
        for v in &variants {
            assert_ne!(d0, v.digest(), "digest must separate {v:?}");
        }
    }
}
