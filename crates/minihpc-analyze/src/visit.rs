//! Shared AST walkers and small expression classifiers used by every pass
//! (rules, CFG construction, call-graph summaries).

use minihpc_lang::ast::{BinOp, Expr, ExprKind, Stmt, StmtKind, Type, UnaryOp};
use minihpc_lang::pragma::ReductionOp;

/// Pointer rank of a type (0 = scalar): levels of indirection for raw
/// pointers, the declared rank for Kokkos-style views.
pub(crate) fn rank_of(ty: &Type) -> u8 {
    match ty.unqualified() {
        Type::Ptr(inner) => 1 + rank_of(inner),
        Type::View { rank, .. } => *rank,
        _ => 0,
    }
}

/// Collect every identifier occurrence (with span start) in a statement tree.
pub(crate) fn collect_idents(s: &Stmt, out: &mut Vec<(String, u32)>) {
    visit_stmt_exprs(s, &mut |e| {
        if let ExprKind::Ident(name) = &e.kind {
            out.push((name.clone(), e.span.start));
        }
    });
}

pub(crate) fn visit_stmt_exprs(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    match &s.kind {
        StmtKind::Decl(d) => {
            for dim in &d.array_dims {
                visit_expr(dim, f);
            }
            match &d.init {
                Some(minihpc_lang::ast::Init::Expr(e)) => visit_expr(e, f),
                Some(minihpc_lang::ast::Init::List(es))
                | Some(minihpc_lang::ast::Init::Ctor(es)) => {
                    for e in es {
                        visit_expr(e, f);
                    }
                }
                None => {}
            }
        }
        StmtKind::Expr(e) => visit_expr(e, f),
        StmtKind::If { cond, then, els } => {
            visit_expr(cond, f);
            visit_stmt_exprs(then, f);
            if let Some(e) = els {
                visit_stmt_exprs(e, f);
            }
        }
        StmtKind::While { cond, body } => {
            visit_expr(cond, f);
            visit_stmt_exprs(body, f);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                visit_stmt_exprs(i, f);
            }
            if let Some(c) = cond {
                visit_expr(c, f);
            }
            if let Some(st) = step {
                visit_expr(st, f);
            }
            visit_stmt_exprs(body, f);
        }
        StmtKind::Return(Some(e)) => visit_expr(e, f),
        StmtKind::Block(b) => {
            for s in &b.stmts {
                visit_stmt_exprs(s, f);
            }
        }
        StmtKind::Omp { body, .. } => {
            if let Some(b) = body {
                visit_stmt_exprs(b, f);
            }
        }
        StmtKind::Return(None)
        | StmtKind::Break
        | StmtKind::Continue
        | StmtKind::RawPragma(_)
        | StmtKind::Empty => {}
    }
}

pub(crate) fn visit_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match &e.kind {
        ExprKind::Unary { expr, .. }
        | ExprKind::Cast { expr, .. }
        | ExprKind::SizeOfExpr(expr)
        | ExprKind::Paren(expr) => visit_expr(expr, f),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            visit_expr(lhs, f);
            visit_expr(rhs, f);
        }
        ExprKind::Ternary { cond, then, els } => {
            visit_expr(cond, f);
            visit_expr(then, f);
            visit_expr(els, f);
        }
        ExprKind::Call { callee, args } => {
            visit_expr(callee, f);
            for a in args {
                visit_expr(a, f);
            }
        }
        ExprKind::KernelLaunch {
            grid, block, args, ..
        } => {
            visit_expr(grid, f);
            visit_expr(block, f);
            for a in args {
                visit_expr(a, f);
            }
        }
        ExprKind::Index { base, index } => {
            visit_expr(base, f);
            visit_expr(index, f);
        }
        ExprKind::Member { base, .. } => visit_expr(base, f),
        ExprKind::Lambda { body, .. } => {
            for s in &body.stmts {
                visit_stmt_exprs(s, f);
            }
        }
        ExprKind::IntLit(_)
        | ExprKind::FloatLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::CharLit(_)
        | ExprKind::BoolLit(_)
        | ExprKind::Ident(_)
        | ExprKind::Path(_)
        | ExprKind::SizeOfType(_) => {}
    }
}

/// The root identifier of a (possibly nested) indexing base.
pub(crate) fn index_root(base: &Expr) -> Option<&str> {
    match &base.kind {
        ExprKind::Ident(name) => Some(name),
        ExprKind::Index { base, .. } | ExprKind::Paren(base) => index_root(base),
        ExprKind::Member { base, .. } => index_root(base),
        ExprKind::Unary {
            op: UnaryOp::Deref,
            expr,
        } => index_root(expr),
        _ => None,
    }
}

/// Does `e` reference identifier `name` anywhere?
pub(crate) fn expr_references(e: &Expr, name: &str) -> bool {
    let mut found = false;
    visit_expr(e, &mut |sub| {
        if matches!(&sub.kind, ExprKind::Ident(n) if n == name) {
            found = true;
        }
    });
    found
}

/// `Some(var)` when the index expression is exactly a bare identifier.
pub(crate) fn plain_index_var(e: &Expr) -> Option<&str> {
    match &e.kind {
        ExprKind::Ident(n) => Some(n),
        ExprKind::Paren(inner) => plain_index_var(inner),
        _ => None,
    }
}

/// `Some(c)` when the expression is `var + c`, `c + var`, or `var - c`.
pub(crate) fn shifted_index_offset(e: &Expr, var: &str) -> Option<i64> {
    match &e.kind {
        ExprKind::Paren(inner) => shifted_index_offset(inner, var),
        ExprKind::Ident(n) if n == var => Some(0),
        ExprKind::Binary { op, lhs, rhs } => {
            let (ident, lit, negate) = match (&lhs.kind, &rhs.kind, op) {
                (ExprKind::Ident(n), ExprKind::IntLit(c), BinOp::Add) => (n, *c, false),
                (ExprKind::IntLit(c), ExprKind::Ident(n), BinOp::Add) => (n, *c, false),
                (ExprKind::Ident(n), ExprKind::IntLit(c), BinOp::Sub) => (n, *c, true),
                _ => return None,
            };
            if ident == var {
                Some(if negate { -lit } else { lit })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// The OpenMP reduction operator matching a self-update's binary operator,
/// when one exists (`x -= e` and shift updates have no reduction form the
/// fix-it synthesizer can emit).
pub(crate) fn reduction_op_of(op: BinOp) -> Option<ReductionOp> {
    Some(match op {
        BinOp::Add => ReductionOp::Add,
        BinOp::Mul => ReductionOp::Mul,
        BinOp::BitAnd => ReductionOp::BitAnd,
        BinOp::BitOr => ReductionOp::BitOr,
        BinOp::BitXor => ReductionOp::BitXor,
        _ => return None,
    })
}
