//! Worksharing-region analysis: classify every variable access inside a
//! parallel region (shared / private / reduction / loop-index), expand
//! helper-call sites against the interprocedural summaries, and emit the
//! race rules with liveness-gated fix-its.

use std::collections::HashSet;

use crate::callgraph::{IndexDep, ParamEffect, WriteKind};
use crate::fixit::{FixIt, FixItEdit};
use crate::report::{Confidence, Rule};
use crate::rules::FnAnalyzer;
use crate::visit::{
    expr_references, index_root, plain_index_var, reduction_op_of, shifted_index_offset, visit_expr,
};
use minihpc_lang::ast::{Expr, ExprKind, Stmt, StmtKind, UnaryOp};
use minihpc_lang::pragma::{OmpClause, OmpConstruct, OmpDirective, ReductionOp};

#[derive(Debug)]
struct ScalarWrite {
    name: String,
    kind: WriteKind,
    /// The reduction operator of a self-update, when it has one
    /// (`sum += x` ⇒ `+`); drives the `reduction(...)` fix-it.
    op: Option<ReductionOp>,
    span_start: u32,
    /// Derived from a helper-call summary rather than a direct statement.
    via_call: bool,
}

#[derive(Debug)]
struct ArrayAccess {
    base: String,
    index: Expr,
    span_start: u32,
    via_call: bool,
}

pub(crate) struct RegionAnalyzer<'f, 'a> {
    cx: &'f mut FnAnalyzer<'a>,
    directive: OmpDirective,
    loop_indices: HashSet<String>,
    private: HashSet<String>,
    reduction: HashSet<String>,
    /// Names declared inside the region body (thread-private storage).
    declared: HashSet<String>,
    scalar_writes: Vec<ScalarWrite>,
    array_writes: Vec<ArrayAccess>,
    array_reads: Vec<ArrayAccess>,
    /// Scalars read anywhere in the region (fix-it: firstprivate vs private).
    scalar_reads: HashSet<String>,
    /// Depth of enclosing `atomic`/`critical` protection while walking.
    protected: u32,
    /// Depth of enclosing `critical`/`master` (for barrier placement).
    serial_section: u32,
}

impl<'f, 'a> RegionAnalyzer<'f, 'a> {
    pub fn analyze(cx: &'f mut FnAnalyzer<'a>, d: &OmpDirective, body: &Stmt) {
        let mut private = HashSet::new();
        let mut reduction = HashSet::new();
        for clause in &d.clauses {
            match clause {
                OmpClause::Private(vars) | OmpClause::FirstPrivate(vars) => {
                    private.extend(vars.iter().cloned());
                }
                OmpClause::Reduction { vars, .. } => {
                    reduction.extend(vars.iter().cloned());
                }
                _ => {}
            }
        }

        let mut this = RegionAnalyzer {
            cx,
            directive: d.clone(),
            loop_indices: HashSet::new(),
            private,
            reduction,
            declared: HashSet::new(),
            scalar_writes: Vec::new(),
            array_writes: Vec::new(),
            array_reads: Vec::new(),
            scalar_reads: HashSet::new(),
            protected: 0,
            serial_section: 0,
        };
        this.collect_loop_indices(body);

        if d.targets_device() {
            this.cx.check_map_arity(d);
            this.cx.check_missing_maps(d, body);
        }

        this.walk(body, /* in_loop_body: */ d.is_loop_directive());
        this.emit();
    }

    /// Loop-index variables of the canonical nest, up to `collapse` depth.
    fn collect_loop_indices(&mut self, body: &Stmt) {
        let depth = self.directive.collapse().max(1) as usize;
        let mut current = body;
        for _ in 0..depth {
            let StmtKind::For { init, body, .. } = &current.kind else {
                return;
            };
            match init.as_deref().map(|s| &s.kind) {
                Some(StmtKind::Decl(d)) => {
                    self.loop_indices.insert(d.name.clone());
                }
                Some(StmtKind::Expr(e)) => {
                    if let ExprKind::Assign { lhs, .. } = &e.kind {
                        if let ExprKind::Ident(n) = &lhs.kind {
                            self.loop_indices.insert(n.clone());
                        }
                    }
                }
                _ => return,
            }
            current = match &body.kind {
                StmtKind::Block(b) if b.stmts.len() == 1 => &b.stmts[0],
                _ => body,
            };
        }
    }

    fn walk(&mut self, s: &Stmt, in_loop_body: bool) {
        match &s.kind {
            StmtKind::Decl(d) => {
                self.declared.insert(d.name.clone());
                match &d.init {
                    Some(minihpc_lang::ast::Init::Expr(e)) => self.collect_reads(e),
                    Some(minihpc_lang::ast::Init::List(es))
                    | Some(minihpc_lang::ast::Init::Ctor(es)) => {
                        for e in es {
                            self.collect_reads(e);
                        }
                    }
                    None => {}
                }
            }
            StmtKind::Expr(e) => self.walk_expr(e),
            StmtKind::If { cond, then, els } => {
                self.collect_reads(cond);
                self.walk(then, in_loop_body);
                if let Some(e) = els {
                    self.walk(e, in_loop_body);
                }
            }
            StmtKind::While { cond, body } => {
                self.collect_reads(cond);
                self.walk(body, in_loop_body);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    // A nested sequential loop's index is thread-private.
                    if let StmtKind::Decl(d) = &i.kind {
                        self.declared.insert(d.name.clone());
                    }
                    self.walk(i, in_loop_body);
                }
                if let Some(c) = cond {
                    self.collect_reads(c);
                }
                if let Some(st) = step {
                    self.walk_expr(st);
                }
                self.walk(body, in_loop_body);
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    self.collect_reads(e);
                }
            }
            StmtKind::Block(b) => {
                for s in &b.stmts {
                    self.walk(s, in_loop_body);
                }
            }
            StmtKind::Omp { directive, body } => {
                self.walk_nested_omp(directive, body.as_deref(), in_loop_body);
            }
            StmtKind::Break | StmtKind::Continue | StmtKind::RawPragma(_) | StmtKind::Empty => {}
        }
    }

    fn walk_nested_omp(&mut self, d: &OmpDirective, body: Option<&Stmt>, in_loop_body: bool) {
        if d.has(OmpConstruct::Barrier) {
            if in_loop_body || self.serial_section > 0 {
                let place = if self.serial_section > 0 {
                    "a critical/master section"
                } else {
                    "a worksharing loop body"
                };
                let fixit = self.cx.line_of(d.span.start).map(|line| FixIt {
                    file: self.cx.file.to_string(),
                    line,
                    title: "remove misplaced barrier".to_string(),
                    edit: FixItEdit::RemoveLine,
                });
                self.cx.report_with(
                    Rule::BarrierMisuse,
                    "<barrier>",
                    d.span.start,
                    format!("barrier inside {place}"),
                    Confidence::High,
                    fixit,
                );
            }
            return;
        }
        let Some(body) = body else { return };
        if d.has(OmpConstruct::Atomic) {
            self.cx.check_atomic(d, body);
            self.protected += 1;
            self.walk(body, in_loop_body);
            self.protected -= 1;
            return;
        }
        if d.has(OmpConstruct::Critical) {
            self.protected += 1;
            self.serial_section += 1;
            self.walk(body, in_loop_body);
            self.serial_section -= 1;
            self.protected -= 1;
            return;
        }
        if d.has(OmpConstruct::Master) || d.has(OmpConstruct::Single) {
            self.serial_section += 1;
            self.walk(body, in_loop_body);
            self.serial_section -= 1;
            return;
        }
        // A nested worksharing/loop directive: fold its clause privatisation
        // and its loop indices into this region's sets and keep walking — a
        // conservative merge that avoids double-reporting.
        for clause in &d.clauses {
            match clause {
                OmpClause::Private(vars) | OmpClause::FirstPrivate(vars) => {
                    self.declared.extend(vars.iter().cloned());
                }
                OmpClause::Reduction { vars, .. } => {
                    self.reduction.extend(vars.iter().cloned());
                }
                _ => {}
            }
        }
        if d.is_loop_directive() {
            if let StmtKind::For {
                init: Some(init), ..
            } = &body.kind
            {
                if let StmtKind::Decl(decl) = &init.kind {
                    self.loop_indices.insert(decl.name.clone());
                }
            }
        }
        self.walk(body, in_loop_body || d.is_loop_directive());
    }

    /// Walk an expression statement, classifying writes and reads.
    fn walk_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Assign { op, lhs, rhs } => {
                self.collect_reads(rhs);
                self.record_write(lhs, *op, Some(rhs), e.span.start);
            }
            ExprKind::Unary {
                op: op @ (UnaryOp::PreInc | UnaryOp::PreDec | UnaryOp::PostInc | UnaryOp::PostDec),
                expr,
            } => {
                let red = match op {
                    UnaryOp::PreInc | UnaryOp::PostInc => Some(ReductionOp::Add),
                    _ => None,
                };
                self.record_increment(expr, red, e.span.start);
            }
            ExprKind::Paren(inner) => self.walk_expr(inner),
            _ => self.collect_reads(e),
        }
    }

    fn record_increment(&mut self, lhs: &Expr, red: Option<ReductionOp>, span_start: u32) {
        // `x++` is `x += 1`: route through record_write with a synthetic
        // compound op so classification matches, then patch the operator
        // (Dec has no OpenMP reduction spelling).
        let before = self.scalar_writes.len();
        self.record_write(lhs, Some(minihpc_lang::ast::BinOp::Add), None, span_start);
        for w in &mut self.scalar_writes[before..] {
            w.op = red;
        }
    }

    fn record_write(
        &mut self,
        lhs: &Expr,
        op: Option<minihpc_lang::ast::BinOp>,
        rhs: Option<&Expr>,
        span_start: u32,
    ) {
        let compound = op.is_some();
        if self.protected > 0 || self.serial_section > 0 {
            // Atomic/critical-protected and single/master writes do not
            // conflict (master/single still read-shares; good enough here).
            if let Some(r) = rhs {
                self.collect_reads(r);
            }
            return;
        }
        match &lhs.kind {
            ExprKind::Ident(name) => {
                let self_ref = rhs.is_some_and(|r| expr_references(r, name));
                let (kind, red) = if compound {
                    (WriteKind::SelfUpdate, op.and_then(reduction_op_of))
                } else if self_ref {
                    (
                        WriteKind::SelfUpdate,
                        rhs.and_then(|r| spelled_out_op(r, name)),
                    )
                } else {
                    (WriteKind::Plain, None)
                };
                self.scalar_writes.push(ScalarWrite {
                    name: name.clone(),
                    kind,
                    op: red,
                    span_start,
                    via_call: false,
                });
            }
            ExprKind::Index { base, index } => {
                self.collect_reads(index);
                if let Some(root) = index_root(base) {
                    self.array_writes.push(ArrayAccess {
                        base: root.to_string(),
                        index: (**index).clone(),
                        span_start,
                        via_call: false,
                    });
                }
            }
            ExprKind::Unary {
                op: UnaryOp::Deref,
                expr,
            } => {
                // `*p = e`: a fixed location, same as indexing with a
                // loop-invariant index.
                if let ExprKind::Ident(name) = &expr.kind {
                    self.array_writes.push(ArrayAccess {
                        base: name.clone(),
                        index: Expr::int(0),
                        span_start,
                        via_call: false,
                    });
                }
            }
            ExprKind::Member { base, .. } => {
                if let Some(root) = index_root(base) {
                    self.scalar_writes.push(ScalarWrite {
                        name: root.to_string(),
                        kind: if compound {
                            WriteKind::SelfUpdate
                        } else {
                            WriteKind::Plain
                        },
                        op: op.and_then(reduction_op_of),
                        span_start,
                        via_call: false,
                    });
                }
            }
            ExprKind::Paren(inner) => self.record_write(inner, op, rhs, span_start),
            _ => {}
        }
    }

    /// Record array reads, scalar reads, and helper-call write effects
    /// appearing anywhere in an expression.
    fn collect_reads(&mut self, e: &Expr) {
        let mut array_reads = Vec::new();
        let mut scalar_reads = Vec::new();
        let mut calls = Vec::new();
        visit_expr(e, &mut |sub| match &sub.kind {
            ExprKind::Index { base, index } => {
                if let Some(root) = index_root(base) {
                    array_reads.push(ArrayAccess {
                        base: root.to_string(),
                        index: (**index).clone(),
                        span_start: sub.span.start,
                        via_call: false,
                    });
                }
            }
            ExprKind::Ident(name) => scalar_reads.push(name.clone()),
            ExprKind::Call { callee, args } => {
                if let ExprKind::Ident(name) = &callee.kind {
                    calls.push((name.clone(), args.clone(), sub.span.start));
                }
            }
            _ => {}
        });
        self.array_reads.extend(array_reads);
        self.scalar_reads.extend(scalar_reads);
        for (name, args, span) in calls {
            self.apply_call_effects(&name, &args, span);
        }
    }

    /// Expand a helper call against its interprocedural summary into the
    /// same write facts direct statements produce. Unmappable argument
    /// shapes contribute nothing (no false positives).
    fn apply_call_effects(&mut self, name: &str, args: &[Expr], span_start: u32) {
        if self.protected > 0 || self.serial_section > 0 {
            return;
        }
        let Some(summary) = self.cx.summaries.get(name) else {
            return;
        };
        for pw in summary.writes.clone() {
            let Some(arg) = args.get(pw.param) else {
                continue;
            };
            match pw.effect {
                ParamEffect::Scalar { kind, op } => match &arg.kind {
                    // `helper(&x, ...)`: a write to the local scalar `x`.
                    ExprKind::Unary {
                        op: UnaryOp::AddrOf,
                        expr,
                    } => {
                        if let ExprKind::Ident(var) = &expr.kind {
                            self.scalar_writes.push(ScalarWrite {
                                name: var.clone(),
                                kind,
                                op,
                                span_start,
                                via_call: true,
                            });
                        }
                    }
                    // `helper(p, ...)` with `*param = e` in the callee: a
                    // write through `p` at a loop-invariant location.
                    ExprKind::Ident(ptr) => {
                        self.array_writes.push(ArrayAccess {
                            base: ptr.clone(),
                            index: Expr::int(0),
                            span_start,
                            via_call: true,
                        });
                    }
                    _ => {}
                },
                ParamEffect::Element { index } => {
                    let ExprKind::Ident(base) = &arg.kind else {
                        continue;
                    };
                    let index_expr = match &index {
                        IndexDep::Fixed => Expr::int(0),
                        IndexDep::Params(ps) => {
                            // Proxy index: the first index-argument that
                            // references a parallel loop index (so the
                            // emit() logic sees the dependency), else the
                            // first index-argument.
                            let arg_of = |p: &usize| args.get(*p);
                            let chosen = ps
                                .iter()
                                .filter_map(arg_of)
                                .find(|a| self.loop_indices.iter().any(|ix| expr_references(a, ix)))
                                .or_else(|| ps.iter().filter_map(arg_of).next());
                            match chosen {
                                Some(a) => a.clone(),
                                None => continue,
                            }
                        }
                    };
                    self.array_writes.push(ArrayAccess {
                        base: base.clone(),
                        index: index_expr,
                        span_start,
                        via_call: true,
                    });
                }
            }
        }
    }

    fn is_thread_private(&self, name: &str) -> bool {
        self.loop_indices.contains(name)
            || self.private.contains(name)
            || self.declared.contains(name)
    }

    /// The privatization fix-it for a conflicting shared scalar — only when
    /// liveness proves the variable dead after the region (otherwise the
    /// edit would drop the region's last write). `firstprivate` when the
    /// region also reads the variable and a definition reaches the region.
    fn privatize_fixit(&self, var: &str) -> Option<FixIt> {
        let span = self.directive.span.start;
        if self.cx.df.live_after_region(&self.cx.cfg, span, var) {
            return None;
        }
        let clause = if self.scalar_reads.contains(var)
            && self.cx.df.defined_before_region(&self.cx.cfg, span, var)
        {
            format!("firstprivate({var})")
        } else {
            format!("private({var})")
        };
        self.cx.add_clause_fixit(&self.directive, clause)
    }

    fn emit(mut self) {
        let has_parallel_semantics = self.directive.has(OmpConstruct::Parallel)
            || self.directive.has(OmpConstruct::Teams)
            || self.directive.has(OmpConstruct::For)
            || self.directive.has(OmpConstruct::Distribute);
        if !has_parallel_semantics {
            return;
        }

        // Direct evidence first so it wins the per-(variable, rule) dedup
        // over summary-derived (lower-confidence) facts.
        let mut scalar_writes = std::mem::take(&mut self.scalar_writes);
        scalar_writes.sort_by_key(|w| w.via_call);
        let mut array_writes = std::mem::take(&mut self.array_writes);
        array_writes.sort_by_key(|w| w.via_call);
        let array_reads = std::mem::take(&mut self.array_reads);

        // Scalar writes: raw reductions take precedence over plain
        // conflicting writes so the fix suggestion is actionable.
        let mut reported: HashSet<(String, u8)> = HashSet::new();
        for w in scalar_writes {
            if self.is_thread_private(&w.name) || self.reduction.contains(&w.name) {
                continue;
            }
            let confidence = if w.via_call {
                Confidence::Medium
            } else {
                Confidence::High
            };
            let (rule, message, fixit) = match w.kind {
                WriteKind::SelfUpdate => {
                    let fixit = w.op.and_then(|op| {
                        self.cx.add_clause_fixit(
                            &self.directive,
                            format!("reduction({}: {})", op.symbol(), w.name),
                        )
                    });
                    (
                        Rule::RawReduction,
                        format!(
                            "shared variable '{}' is updated as a raw reduction without a \
                             reduction clause",
                            w.name
                        ),
                        fixit,
                    )
                }
                WriteKind::Plain => (
                    Rule::SharedWriteConflict,
                    format!(
                        "shared variable '{}' is written by every iteration without \
                         privatization or atomics",
                        w.name
                    ),
                    self.privatize_fixit(&w.name),
                ),
            };
            if reported.insert((w.name.clone(), rule.code())) {
                self.cx
                    .report_with(rule, &w.name, w.span_start, message, confidence, fixit);
            }
        }

        // Array writes: conflicting when the index does not involve any
        // parallel loop index; loop-carried when written at `i` and read at
        // `i +/- c`.
        for w in &array_writes {
            if self.is_thread_private(&w.base) {
                continue;
            }
            let confidence = if w.via_call {
                Confidence::Medium
            } else {
                Confidence::High
            };
            let uses_index = self
                .loop_indices
                .iter()
                .any(|ix| expr_references(&w.index, ix));
            if !uses_index {
                if reported.insert((w.base.clone(), Rule::SharedWriteConflict.code())) {
                    self.cx.report_with(
                        Rule::SharedWriteConflict,
                        &w.base,
                        w.span_start,
                        format!(
                            "array '{}' is written at an index that does not depend on \
                             the parallel loop index",
                            w.base
                        ),
                        confidence,
                        None,
                    );
                }
                continue;
            }
            // Loop-carried: write exactly at `i`, read at `i +/- c` (c != 0).
            let Some(write_ix) = plain_index_var(&w.index) else {
                continue;
            };
            if !self.loop_indices.contains(write_ix) {
                continue;
            }
            for r in &array_reads {
                if r.base != w.base {
                    continue;
                }
                if let Some(offset) = shifted_index_offset(&r.index, write_ix) {
                    if offset != 0
                        && reported.insert((w.base.clone(), Rule::LoopCarriedDependency.code()))
                    {
                        self.cx.report_with(
                            Rule::LoopCarriedDependency,
                            &w.base,
                            w.span_start,
                            format!(
                                "array '{}' is written at {write_ix} and read at \
                                 {write_ix}{offset:+}: loop-carried dependency across \
                                 parallel iterations",
                                w.base
                            ),
                            confidence,
                            None,
                        );
                    }
                }
            }
        }
    }
}

/// The operator of a spelled-out self-update `x = x op e` / `x = e op x`.
fn spelled_out_op(rhs: &Expr, name: &str) -> Option<ReductionOp> {
    let ExprKind::Binary { op, lhs, rhs: r } = &rhs.kind else {
        return None;
    };
    let is_self = |e: &Expr| matches!(&e.kind, ExprKind::Ident(n) if n == name);
    if is_self(lhs) || is_self(r) {
        reduction_op_of(*op)
    } else {
        None
    }
}
