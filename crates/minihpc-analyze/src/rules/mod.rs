//! Per-function rule driving: lexical scope tracking, directive dispatch,
//! and the non-region rules (atomic shape, map arity, missing maps).
//! Worksharing regions hand off to [`region::RegionAnalyzer`].

pub(crate) mod region;

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::callgraph::Summaries;
use crate::cfg::{build_fn_cfg, Cfg};
use crate::dataflow::Dataflow;
use crate::fixit::{FixIt, FixItEdit};
use crate::report::{AnalysisFinding, Confidence, Rule};
use crate::visit::{collect_idents, rank_of};
use minihpc_lang::ast::{Block, Expr, ExprKind, Function, Stmt, StmtKind, Type, UnaryOp};
use minihpc_lang::pragma::{OmpClause, OmpConstruct, OmpDirective};
use minihpc_lang::span::line_col;

/// What we know about a declared variable: its pointer rank (0 = scalar).
#[derive(Debug, Clone, Copy)]
pub(crate) struct VarInfo {
    pub rank: u8,
}

pub(crate) struct FnAnalyzer<'a> {
    pub file: &'a str,
    pub text: &'a str,
    /// Lexical scopes mapping names to declaration info.
    scopes: Vec<HashMap<String, VarInfo>>,
    /// Variables mapped by enclosing `target data` regions.
    enclosing_maps: Vec<BTreeSet<String>>,
    /// Interprocedural write summaries (empty when the pass is disabled).
    pub summaries: &'a Summaries,
    /// This function's CFG and dataflow solution, for fix-it gating.
    pub cfg: Cfg,
    pub df: Dataflow,
    findings: &'a mut Vec<AnalysisFinding>,
}

impl<'a> FnAnalyzer<'a> {
    pub fn analyze(
        file: &'a str,
        text: &'a str,
        summaries: &'a Summaries,
        findings: &'a mut Vec<AnalysisFinding>,
        f: &Function,
    ) {
        let cfg = build_fn_cfg(f);
        let df = Dataflow::run(&cfg);
        let mut this = FnAnalyzer {
            file,
            text,
            scopes: vec![HashMap::new()],
            enclosing_maps: Vec::new(),
            summaries,
            cfg,
            df,
            findings,
        };
        this.run(f);
    }

    fn run(&mut self, f: &Function) {
        for p in &f.params {
            self.declare(&p.name, &p.ty);
        }
        if let Some(body) = &f.body {
            self.walk_block(body);
        }
    }

    fn declare(&mut self, name: &str, ty: &Type) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), VarInfo { rank: rank_of(ty) });
    }

    pub(crate) fn lookup(&self, name: &str) -> Option<VarInfo> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    pub(crate) fn line_of(&self, start: u32) -> Option<u32> {
        if start == 0 && self.text.is_empty() {
            return None;
        }
        Some(line_col(self.text, start).line)
    }

    /// The leading whitespace of the (1-based) source line.
    fn indent_of(&self, line: u32) -> String {
        self.text
            .lines()
            .nth(line as usize - 1)
            .map(|l| l[..l.len() - l.trim_start().len()].to_string())
            .unwrap_or_default()
    }

    pub(crate) fn report(&mut self, rule: Rule, variable: &str, span_start: u32, message: String) {
        self.report_with(rule, variable, span_start, message, Confidence::High, None);
    }

    /// Report a finding with an explicit confidence and optional fix-it.
    /// The fix-it is kept only when it applies cleanly to the *current*
    /// text — every emitted fix-it is guaranteed applicable.
    pub(crate) fn report_with(
        &mut self,
        rule: Rule,
        variable: &str,
        span_start: u32,
        message: String,
        confidence: Confidence,
        fixit: Option<FixIt>,
    ) {
        let fixit = fixit.filter(|fx| fx.apply(self.text).is_some());
        self.findings.push(AnalysisFinding {
            rule,
            severity: rule.severity(),
            variable: variable.to_string(),
            file: self.file.to_string(),
            line: self.line_of(span_start),
            message,
            confidence,
            fixit,
        });
    }

    /// An `AddClause` fix-it targeting a directive's own line.
    pub(crate) fn add_clause_fixit(&self, d: &OmpDirective, clause: String) -> Option<FixIt> {
        let line = self.line_of(d.span.start)?;
        Some(FixIt {
            file: self.file.to_string(),
            line,
            title: format!("add `{clause}`"),
            edit: FixItEdit::AddClause { clause },
        })
    }

    fn walk_block(&mut self, b: &Block) {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.walk_stmt(s);
        }
        self.scopes.pop();
    }

    fn walk_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl(d) => self.declare(&d.name, &d.ty),
            StmtKind::Block(b) => self.walk_block(b),
            StmtKind::If { then, els, .. } => {
                self.walk_stmt(then);
                if let Some(e) = els {
                    self.walk_stmt(e);
                }
            }
            StmtKind::While { body, .. } => self.walk_stmt(body),
            StmtKind::For { init, body, .. } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.walk_stmt(init);
                }
                self.walk_stmt(body);
                self.scopes.pop();
            }
            StmtKind::Omp { directive, body } => self.walk_omp(directive, body.as_deref()),
            StmtKind::Expr(_)
            | StmtKind::Return(_)
            | StmtKind::Break
            | StmtKind::Continue
            | StmtKind::RawPragma(_)
            | StmtKind::Empty => {}
        }
    }

    fn walk_omp(&mut self, d: &OmpDirective, body: Option<&Stmt>) {
        // Standalone directives (`barrier`, `target update`) are fine at
        // function/sequential level; misuse is detected inside regions.
        let Some(body) = body else { return };

        if d.has(OmpConstruct::TargetData) {
            let mapped: BTreeSet<String> = d
                .map_clauses()
                .flat_map(|(_, sections)| sections.iter().map(|s| s.var.clone()))
                .collect();
            self.check_map_arity(d);
            self.enclosing_maps.push(mapped);
            self.walk_stmt(body);
            self.enclosing_maps.pop();
            return;
        }

        if d.has(OmpConstruct::Atomic) {
            self.check_atomic(d, body);
            return;
        }

        let worksharing = d.has(OmpConstruct::Parallel)
            || d.has(OmpConstruct::Teams)
            || d.has(OmpConstruct::For)
            || d.has(OmpConstruct::Distribute);
        if worksharing {
            region::RegionAnalyzer::analyze(self, d, body);
            return;
        }

        if d.has(OmpConstruct::Target) {
            // Serial `target` region: still subject to mapping rules.
            self.check_map_arity(d);
            self.check_missing_maps(d, body);
            self.walk_stmt(body);
            return;
        }

        // `critical` / `single` / `master` / `simd` at sequential level:
        // walk through.
        self.walk_stmt(body);
    }

    /// An `atomic` body must be one simple update of a scalar or array
    /// element: `x op= e`, `x = x op e`, `x++`/`x--`.
    pub(crate) fn check_atomic(&mut self, d: &OmpDirective, body: &Stmt) {
        let expr = match &body.kind {
            StmtKind::Expr(e) => Some(e),
            StmtKind::Block(b) if b.stmts.len() == 1 => match &b.stmts[0].kind {
                StmtKind::Expr(e) => Some(e),
                _ => None,
            },
            _ => None,
        };
        let simple = expr.is_some_and(is_simple_atomic_update);
        if !simple {
            self.report(
                Rule::AtomicMisuse,
                "<atomic>",
                d.span.start,
                "atomic body is not a single simple update (x op= e, x = x op e, x++)".to_string(),
            );
        }
    }

    /// `map` sections must not have more dimensions than the mapped pointer
    /// has levels of indirection. The fix-it reprints the directive with
    /// the offending section truncated to the pointer's rank.
    pub(crate) fn check_map_arity(&mut self, d: &OmpDirective) {
        let sections: Vec<_> = d
            .map_clauses()
            .flat_map(|(_, s)| s.iter().cloned())
            .collect();
        for section in sections {
            let dims = section.ranges.len() as u8;
            if dims < 2 {
                continue;
            }
            if let Some(info) = self.lookup(&section.var) {
                if info.rank > 0 && dims > info.rank {
                    let fixit = self.map_arity_fixit(d, &section.var, info.rank);
                    self.report_with(
                        Rule::MapArity,
                        &section.var,
                        d.span.start,
                        format!(
                            "map section has {dims} dimensions but '{}' has rank {}",
                            section.var, info.rank
                        ),
                        Confidence::High,
                        fixit,
                    );
                }
            }
        }
    }

    fn map_arity_fixit(&self, d: &OmpDirective, var: &str, rank: u8) -> Option<FixIt> {
        let line = self.line_of(d.span.start)?;
        let mut fixed = d.clone();
        for cl in &mut fixed.clauses {
            if let OmpClause::Map { sections, .. } = cl {
                for s in sections.iter_mut() {
                    if s.var == var && s.ranges.len() > rank as usize {
                        s.ranges.truncate(rank as usize);
                    }
                }
            }
        }
        let text = format!("{}{fixed}", self.indent_of(line));
        Some(FixIt {
            file: self.file.to_string(),
            line,
            title: format!("truncate map section of '{var}' to rank {rank}"),
            edit: FixItEdit::ReplaceLine { text },
        })
    }

    /// Every pointer referenced inside a `target` region must be covered by
    /// a `map` clause on the directive or an enclosing `target data`.
    pub(crate) fn check_missing_maps(&mut self, d: &OmpDirective, body: &Stmt) {
        let mut mapped: BTreeSet<String> = d
            .map_clauses()
            .flat_map(|(_, sections)| sections.iter().map(|s| s.var.clone()))
            .collect();
        for m in &self.enclosing_maps {
            mapped.extend(m.iter().cloned());
        }
        let mut referenced = Vec::new();
        collect_idents(body, &mut referenced);
        let mut seen = HashSet::new();
        for (name, start) in referenced {
            if mapped.contains(&name) || !seen.insert(name.clone()) {
                continue;
            }
            if let Some(info) = self.lookup(&name) {
                if info.rank > 0 {
                    let fixit = self.add_clause_fixit(d, format!("map(tofrom: {name})"));
                    self.report_with(
                        Rule::MissingMap,
                        &name,
                        start,
                        format!("pointer '{name}' used in target region without a map clause"),
                        Confidence::Medium,
                        fixit,
                    );
                }
            }
        }
    }
}

/// `x op= e`, `x = x op e`, `x++`/`x--` where `x` is a scalar or element.
fn is_simple_atomic_update(e: &Expr) -> bool {
    fn is_place(e: &Expr) -> bool {
        matches!(
            e.kind,
            ExprKind::Ident(_) | ExprKind::Index { .. } | ExprKind::Member { .. }
        ) || matches!(
            &e.kind,
            ExprKind::Unary {
                op: UnaryOp::Deref,
                ..
            }
        )
    }
    match &e.kind {
        ExprKind::Assign {
            op: Some(_), lhs, ..
        } => is_place(lhs),
        ExprKind::Assign { op: None, lhs, rhs } => {
            // x = x op e / x = e op x
            let ExprKind::Binary {
                lhs: bl, rhs: br, ..
            } = &rhs.kind
            else {
                return false;
            };
            is_place(lhs) && (same_place(lhs, bl) || same_place(lhs, br))
        }
        ExprKind::Unary { op, expr } => {
            matches!(
                op,
                UnaryOp::PreInc | UnaryOp::PreDec | UnaryOp::PostInc | UnaryOp::PostDec
            ) && is_place(expr)
        }
        _ => false,
    }
}

fn same_place(a: &Expr, b: &Expr) -> bool {
    match (&a.kind, &b.kind) {
        (ExprKind::Ident(x), ExprKind::Ident(y)) => x == y,
        (
            ExprKind::Index {
                base: ab,
                index: ai,
            },
            ExprKind::Index {
                base: bb,
                index: bi,
            },
        ) => same_place(ab, bb) && ai.kind == bi.kind,
        _ => false,
    }
}
