//! Per-function control-flow graphs over the parsed AST.
//!
//! The CFG is the substrate the dataflow passes (liveness, reaching
//! definitions — see [`crate::dataflow`]) run on. It tracks *scalar*
//! variables only, at statement granularity: each basic block holds a list
//! of [`Step`]s with use/def sets over interned variable ids, and every
//! worksharing OpenMP region is condensed into a single conservative step
//! plus a [`RegionMark`] recording the program points around it — exactly
//! what the fix-it synthesizer needs to answer "is this variable live
//! after the region?" and "does any definition reach the region entry?".
//!
//! Conservatism is directional: a variable the CFG cannot track precisely
//! must come out *live* (suppressing a privatization fix-it) rather than
//! dead (emitting one that changes semantics). Region steps therefore use
//! every identifier they mention and kill nothing.

use std::collections::HashMap;

use crate::visit::{visit_expr, visit_stmt_exprs};
use minihpc_lang::ast::{Block, Expr, ExprKind, Function, Stmt, StmtKind, UnaryOp};
use minihpc_lang::pragma::{OmpConstruct, OmpDirective};

/// Interned scalar variable names (ids are indices).
#[derive(Debug, Default)]
pub struct VarTable {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl VarTable {
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// One program step: the variables it reads and the variables it
/// (re)defines, in evaluation order within the step.
#[derive(Debug, Default)]
pub struct Step {
    pub uses: Vec<u32>,
    pub defs: Vec<u32>,
}

#[derive(Debug, Default)]
pub struct BasicBlock {
    pub steps: Vec<Step>,
    pub succs: Vec<usize>,
}

/// The program points around one worksharing OpenMP region: the block and
/// step index of its condensed step, and the empty block that immediately
/// follows it (whose live-in set is "live after the region").
#[derive(Debug)]
pub struct RegionMark {
    /// `span.start` of the region's directive — the key the rules use.
    pub span_start: u32,
    /// Block containing the region's condensed step.
    pub block: usize,
    /// Index of the condensed step within [`RegionMark::block`].
    pub step: usize,
    /// The empty successor block entered right after the region completes.
    pub after: usize,
}

#[derive(Debug)]
pub struct Cfg {
    pub blocks: Vec<BasicBlock>,
    pub vars: VarTable,
    pub regions: Vec<RegionMark>,
    /// Entry block (holds the parameter-definition step).
    pub entry: usize,
}

impl Cfg {
    pub fn region(&self, span_start: u32) -> Option<&RegionMark> {
        self.regions.iter().find(|r| r.span_start == span_start)
    }
}

/// Build the CFG of one function definition. Declaration-only functions
/// yield an empty graph.
pub fn build_fn_cfg(f: &Function) -> Cfg {
    let mut b = Builder {
        cfg: Cfg {
            blocks: vec![BasicBlock::default()],
            vars: VarTable::default(),
            regions: Vec::new(),
            entry: 0,
        },
        current: 0,
        loops: Vec::new(),
    };
    // Parameters are defined at entry (reaching defs: a parameter counts
    // as "defined before" every region).
    let mut entry_step = Step::default();
    for p in &f.params {
        let id = b.cfg.vars.intern(&p.name);
        entry_step.defs.push(id);
    }
    b.cfg.blocks[0].steps.push(entry_step);
    if let Some(body) = &f.body {
        b.walk_block(body);
    }
    b.cfg
}

struct Builder {
    cfg: Cfg,
    current: usize,
    /// (continue target, break target) per enclosing loop.
    loops: Vec<(usize, usize)>,
}

impl Builder {
    fn new_block(&mut self) -> usize {
        self.cfg.blocks.push(BasicBlock::default());
        self.cfg.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.cfg.blocks[from].succs.contains(&to) {
            self.cfg.blocks[from].succs.push(to);
        }
    }

    fn push_step(&mut self, step: Step) {
        self.cfg.blocks[self.current].steps.push(step);
    }

    fn walk_block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.walk_stmt(s);
        }
    }

    /// A step using every identifier of `e` and defining nothing — the
    /// conservative shape for conditions and opaque statements.
    fn use_step(&mut self, e: &Expr) -> Step {
        let mut step = Step::default();
        collect_uses(e, &mut self.cfg.vars, &mut step.uses);
        step
    }

    fn walk_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl(d) => {
                let mut step = Step::default();
                for dim in &d.array_dims {
                    collect_uses(dim, &mut self.cfg.vars, &mut step.uses);
                }
                match &d.init {
                    Some(minihpc_lang::ast::Init::Expr(e)) => {
                        collect_uses(e, &mut self.cfg.vars, &mut step.uses)
                    }
                    Some(minihpc_lang::ast::Init::List(es))
                    | Some(minihpc_lang::ast::Init::Ctor(es)) => {
                        for e in es {
                            collect_uses(e, &mut self.cfg.vars, &mut step.uses);
                        }
                    }
                    None => {}
                }
                let id = self.cfg.vars.intern(&d.name);
                step.defs.push(id);
                self.push_step(step);
            }
            StmtKind::Expr(e) => {
                let step = expr_step(e, &mut self.cfg.vars);
                self.push_step(step);
            }
            StmtKind::If { cond, then, els } => {
                let step = self.use_step(cond);
                self.push_step(step);
                let head = self.current;
                let then_b = self.new_block();
                let join = self.new_block();
                self.edge(head, then_b);
                self.current = then_b;
                self.walk_stmt(then);
                let then_end = self.current;
                self.edge(then_end, join);
                match els {
                    Some(e) => {
                        let els_b = self.new_block();
                        self.edge(head, els_b);
                        self.current = els_b;
                        self.walk_stmt(e);
                        let els_end = self.current;
                        self.edge(els_end, join);
                    }
                    None => self.edge(head, join),
                }
                self.current = join;
            }
            StmtKind::While { cond, body } => {
                let header = self.new_block();
                let body_b = self.new_block();
                let exit = self.new_block();
                self.edge(self.current, header);
                self.current = header;
                let step = self.use_step(cond);
                self.push_step(step);
                self.edge(header, body_b);
                self.edge(header, exit);
                self.loops.push((header, exit));
                self.current = body_b;
                self.walk_stmt(body);
                let body_end = self.current;
                self.edge(body_end, header);
                self.loops.pop();
                self.current = exit;
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.walk_stmt(i);
                }
                let header = self.new_block();
                let body_b = self.new_block();
                let latch = self.new_block();
                let exit = self.new_block();
                self.edge(self.current, header);
                self.current = header;
                if let Some(c) = cond {
                    let s = self.use_step(c);
                    self.push_step(s);
                }
                self.edge(header, body_b);
                self.edge(header, exit);
                self.loops.push((latch, exit));
                self.current = body_b;
                self.walk_stmt(body);
                let body_end = self.current;
                self.edge(body_end, latch);
                self.current = latch;
                if let Some(st) = step {
                    let s = expr_step(st, &mut self.cfg.vars);
                    self.push_step(s);
                }
                self.edge(latch, header);
                self.loops.pop();
                self.current = exit;
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    let step = self.use_step(e);
                    self.push_step(step);
                }
                // No successor: nothing after a return is reached from it,
                // so region-liveness queries see returns precisely. The
                // builder continues into a fresh unreachable block.
                self.current = self.new_block();
            }
            StmtKind::Break => {
                if let Some(&(_, exit)) = self.loops.last() {
                    let cur = self.current;
                    self.edge(cur, exit);
                }
                self.current = self.new_block();
            }
            StmtKind::Continue => {
                if let Some(&(latch, _)) = self.loops.last() {
                    let cur = self.current;
                    self.edge(cur, latch);
                }
                self.current = self.new_block();
            }
            StmtKind::Block(b) => self.walk_block(b),
            StmtKind::Omp { directive, body } => self.walk_omp(directive, body.as_deref()),
            StmtKind::RawPragma(_) | StmtKind::Empty => {}
        }
    }

    fn walk_omp(&mut self, d: &OmpDirective, body: Option<&Stmt>) {
        let Some(body) = body else { return };
        let worksharing = d.has(OmpConstruct::Parallel)
            || d.has(OmpConstruct::Teams)
            || d.has(OmpConstruct::For)
            || d.has(OmpConstruct::Distribute);
        if !worksharing {
            // `target data` / `critical` / `single` / sequential `target`:
            // control flow passes straight through.
            self.walk_stmt(body);
            return;
        }
        // Condense the whole region into one conservative step: every
        // identifier it mentions is a use, nothing is killed. The rules
        // analyze the region's interior themselves; the CFG only needs the
        // surrounding program points to be right.
        let mut step = Step::default();
        visit_stmt_exprs(body, &mut |e| {
            if let ExprKind::Ident(name) = &e.kind {
                let id = self.cfg.vars.intern(name);
                if !step.uses.contains(&id) {
                    step.uses.push(id);
                }
            }
        });
        let block = self.current;
        let step_idx = self.cfg.blocks[block].steps.len();
        self.cfg.blocks[block].steps.push(step);
        let after = self.new_block();
        self.edge(block, after);
        self.current = after;
        self.cfg.regions.push(RegionMark {
            span_start: d.span.start,
            block,
            step: step_idx,
            after,
        });
    }
}

/// Use/def extraction for one expression statement. Top-level scalar
/// assignments define their target; everything else (array stores, deref
/// stores, member stores, compound updates) both uses and defines
/// conservatively.
fn expr_step(e: &Expr, vars: &mut VarTable) -> Step {
    let mut step = Step::default();
    match &e.kind {
        ExprKind::Assign { op, lhs, rhs } => {
            collect_uses(rhs, vars, &mut step.uses);
            match &lhs.kind {
                ExprKind::Ident(name) => {
                    let id = vars.intern(name);
                    if op.is_some() {
                        step.uses.push(id);
                    }
                    step.defs.push(id);
                }
                _ => {
                    // Array/deref/member store: the base is read (address
                    // computation) and the scalar itself is not killed.
                    collect_uses(lhs, vars, &mut step.uses);
                }
            }
        }
        ExprKind::Unary {
            op: UnaryOp::PreInc | UnaryOp::PreDec | UnaryOp::PostInc | UnaryOp::PostDec,
            expr,
        } => {
            collect_uses(expr, vars, &mut step.uses);
            if let ExprKind::Ident(name) = &expr.kind {
                let id = vars.intern(name);
                step.defs.push(id);
            }
        }
        ExprKind::Paren(inner) => return expr_step(inner, vars),
        _ => collect_uses(e, vars, &mut step.uses),
    }
    step
}

fn collect_uses(e: &Expr, vars: &mut VarTable, out: &mut Vec<u32>) {
    visit_expr(e, &mut |sub| {
        if let ExprKind::Ident(name) = &sub.kind {
            let id = vars.intern(name);
            if !out.contains(&id) {
                out.push(id);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use minihpc_lang::parse_file;

    fn cfg_of(src: &str) -> Cfg {
        let file = parse_file(src).expect("parse");
        let f = file
            .functions()
            .find(|f| f.body.is_some())
            .expect("a definition");
        build_fn_cfg(f)
    }

    #[test]
    fn straight_line_single_block() {
        let cfg = cfg_of("int main() { int a = 1; int b = a + 2; return b; }\n");
        assert!(cfg.regions.is_empty());
        assert!(cfg.vars.get("a").is_some());
        assert!(cfg.vars.get("b").is_some());
        // Entry block carries the decls; the return splits off one
        // unreachable continuation block.
        assert!(cfg.blocks[cfg.entry].steps.len() >= 3);
    }

    #[test]
    fn region_gets_a_mark_with_an_after_block() {
        let cfg = cfg_of(
            "int main() {\n\
             double s = 0.0;\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 4; i++) { s += i; }\n\
             return 0;\n\
             }\n",
        );
        assert_eq!(cfg.regions.len(), 1);
        let mark = &cfg.regions[0];
        assert!(cfg.blocks[mark.block].succs.contains(&mark.after));
        let s = cfg.vars.get("s").expect("s interned");
        assert!(cfg.blocks[mark.block].steps[mark.step].uses.contains(&s));
    }

    #[test]
    fn loops_have_back_edges() {
        let cfg = cfg_of("int main() { int n = 0; while (n < 3) { n++; } return n; }\n");
        let has_cycle = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.iter().any(|&s| s <= i));
        assert!(has_cycle, "while loop must produce a back edge");
    }
}
