//! Machine-applicable fix-its: structured, line-anchored textual edits a
//! finding can carry so a repair round applies the suggested change
//! deterministically instead of re-generating the file.
//!
//! Fix-its are *advisory and total*: [`FixIt::apply`] returns `None`
//! whenever the edit no longer matches the text it targets (the file
//! changed, the line moved, the clause is already present), never a
//! mangled file. Appliers that get `None` simply fall back to their
//! unguided repair path.

/// The edit itself, relative to [`FixIt::line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixItEdit {
    /// Append ` <clause>` to the `#pragma omp` directive on the target
    /// line (e.g. `reduction(+: sum)`, `private(tmp)`, `map(tofrom: a)`).
    AddClause { clause: String },
    /// Delete the target line entirely (a misplaced standalone directive
    /// such as a barrier inside a worksharing loop body).
    RemoveLine,
    /// Replace the target line with `text` (e.g. a re-printed directive
    /// with a corrected map section).
    ReplaceLine { text: String },
}

impl FixItEdit {
    /// Stable wire code for the journal codec. Append-only.
    pub fn code(&self) -> u8 {
        match self {
            FixItEdit::AddClause { .. } => 0,
            FixItEdit::RemoveLine => 1,
            FixItEdit::ReplaceLine { .. } => 2,
        }
    }

    /// The edit's textual payload (empty for [`FixItEdit::RemoveLine`]).
    pub fn payload(&self) -> &str {
        match self {
            FixItEdit::AddClause { clause } => clause,
            FixItEdit::RemoveLine => "",
            FixItEdit::ReplaceLine { text } => text,
        }
    }

    /// Inverse of [`FixItEdit::code`] + [`FixItEdit::payload`].
    pub fn from_parts(code: u8, payload: String) -> Option<FixItEdit> {
        Some(match code {
            0 => FixItEdit::AddClause { clause: payload },
            1 => FixItEdit::RemoveLine,
            2 => FixItEdit::ReplaceLine { text: payload },
            _ => return None,
        })
    }
}

/// One machine-applicable edit suggested by an analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixIt {
    /// Repository path of the file the edit targets.
    pub file: String,
    /// 1-based line the edit targets (the directive line for clause
    /// edits, the offending directive itself for removals).
    pub line: u32,
    /// Short human-readable description, e.g. ``add `reduction(+: sum)` ``.
    pub title: String,
    pub edit: FixItEdit,
}

impl FixIt {
    /// Apply this edit to `source` (the current text of [`FixIt::file`]).
    ///
    /// Returns the edited text, or `None` when the edit no longer applies:
    /// the line is out of range, an [`FixItEdit::AddClause`] target is not
    /// a `#pragma omp` line, or the clause is already present (applying a
    /// stale fix-it must be a no-op, not a duplicate clause).
    pub fn apply(&self, source: &str) -> Option<String> {
        let mut lines: Vec<String> = source.lines().map(str::to_string).collect();
        let idx = (self.line as usize).checked_sub(1)?;
        let target = lines.get(idx)?.clone();
        match &self.edit {
            FixItEdit::AddClause { clause } => {
                if !target.contains("#pragma omp") || target.contains(clause.as_str()) {
                    return None;
                }
                lines[idx] = format!("{} {clause}", target.trim_end());
            }
            FixItEdit::RemoveLine => {
                lines.remove(idx);
            }
            FixItEdit::ReplaceLine { text } => {
                if target == *text {
                    return None;
                }
                lines[idx] = text.clone();
            }
        }
        let mut out = lines.join("\n");
        if source.ends_with('\n') {
            out.push('\n');
        }
        Some(out)
    }
}

/// Apply every fix-it of `fixits` that targets the same file to `source`,
/// last line first so earlier edits never shift later targets. Returns the
/// edited text, or `None` when no edit applied.
pub fn apply_all(source: &str, fixits: &[FixIt]) -> Option<String> {
    let mut ordered: Vec<&FixIt> = fixits.iter().collect();
    ordered.sort_by(|a, b| b.line.cmp(&a.line).then_with(|| a.title.cmp(&b.title)));
    let mut text = source.to_string();
    let mut applied = false;
    for fx in ordered {
        if let Some(edited) = fx.apply(&text) {
            text = edited;
            applied = true;
        }
    }
    applied.then_some(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_clause(line: u32, clause: &str) -> FixIt {
        FixIt {
            file: "src/main.cpp".to_string(),
            line,
            title: format!("add `{clause}`"),
            edit: FixItEdit::AddClause {
                clause: clause.to_string(),
            },
        }
    }

    #[test]
    fn add_clause_appends_to_pragma_line() {
        let src = "int main() {\n#pragma omp parallel for\nfor (;;) {}\n}\n";
        let out = add_clause(2, "reduction(+: sum)").apply(src).unwrap();
        assert_eq!(
            out,
            "int main() {\n#pragma omp parallel for reduction(+: sum)\nfor (;;) {}\n}\n"
        );
    }

    #[test]
    fn add_clause_refuses_non_pragma_and_duplicate() {
        let src = "int x;\n#pragma omp parallel for private(t)\n";
        assert!(add_clause(1, "private(t)").apply(src).is_none());
        assert!(add_clause(2, "private(t)").apply(src).is_none());
        assert!(add_clause(9, "private(t)").apply(src).is_none());
    }

    #[test]
    fn remove_line_and_replace_line() {
        let src = "a\nb\nc\n";
        let rm = FixIt {
            file: String::new(),
            line: 2,
            title: "remove".to_string(),
            edit: FixItEdit::RemoveLine,
        };
        assert_eq!(rm.apply(src).unwrap(), "a\nc\n");
        let rep = FixIt {
            file: String::new(),
            line: 3,
            title: "replace".to_string(),
            edit: FixItEdit::ReplaceLine {
                text: "z".to_string(),
            },
        };
        assert_eq!(rep.apply(src).unwrap(), "a\nb\nz\n");
    }

    #[test]
    fn apply_all_edits_bottom_up() {
        let src = "#pragma omp parallel for\nx;\n#pragma omp barrier\n";
        let fixits = [
            add_clause(1, "private(t)"),
            FixIt {
                file: String::new(),
                line: 3,
                title: "remove barrier".to_string(),
                edit: FixItEdit::RemoveLine,
            },
        ];
        let out = apply_all(src, &fixits).unwrap();
        assert_eq!(out, "#pragma omp parallel for private(t)\nx;\n");
        assert!(apply_all(&out, &fixits[..1]).is_none(), "idempotent");
    }

    #[test]
    fn edit_parts_roundtrip() {
        for edit in [
            FixItEdit::AddClause {
                clause: "private(x)".to_string(),
            },
            FixItEdit::RemoveLine,
            FixItEdit::ReplaceLine {
                text: "#pragma omp barrier".to_string(),
            },
        ] {
            let back = FixItEdit::from_parts(edit.code(), edit.payload().to_string()).unwrap();
            assert_eq!(back, edit);
        }
        assert_eq!(FixItEdit::from_parts(99, String::new()), None);
    }
}
