//! Call-graph summaries: which of a function's pointer parameters it
//! writes through, and how.
//!
//! This is what lets the region rules see through helper calls — v1
//! treated `accumulate(&sum, x)` inside a `parallel for` as a pure read of
//! `sum` (a false negative the regression tests pin). A [`FnSummary`]
//! records each write a definition performs through one of its parameters;
//! [`Summaries::build`] computes them for every definition in the repo with
//! a bounded fixpoint so effects propagate through helper-calls-helper
//! chains. The region analyzer then expands call sites against these
//! summaries into the same `ScalarWrite`/`ArrayAccess` facts it derives
//! from direct statements.
//!
//! The pass is deliberately *under*-approximate: an argument shape it
//! cannot map (arbitrary expressions, aliased pointers) contributes no
//! effect. Zero false positives is the contract — the differential harness
//! checks false negatives against the dynamic recorder instead.

use std::collections::HashMap;

use crate::visit::{expr_references, reduction_op_of, visit_expr};
use minihpc_lang::ast::{Block, Expr, ExprKind, Function, SourceFile, Stmt, StmtKind, UnaryOp};
use minihpc_lang::pragma::{OmpConstruct, ReductionOp};

/// How a scalar write updates its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WriteKind {
    /// `v = e` with `e` not referencing `v`.
    Plain,
    /// `v op= e`, `v = v op e`, `v++` — a reduction-shaped self-update.
    SelfUpdate,
}

/// What the index of a summarized array write depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum IndexDep {
    /// Loop-invariant from the callee's perspective (constants, globals).
    Fixed,
    /// Depends on these callee parameters (by position).
    Params(Vec<usize>),
}

/// One write effect through a pointer parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ParamEffect {
    /// `*p = e` / `*p op= e`: a write to the single location `p` points at.
    Scalar {
        kind: WriteKind,
        /// The reduction operator when the update is reduction-shaped and
        /// has an OpenMP spelling (`*p += e` ⇒ `+`).
        op: Option<ReductionOp>,
    },
    /// `p[idx] = e`: an element write whose index has the given dependency.
    Element { index: IndexDep },
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ParamWrite {
    /// Position of the written-through parameter.
    pub param: usize,
    pub effect: ParamEffect,
}

#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct FnSummary {
    pub writes: Vec<ParamWrite>,
}

/// Summaries for every function *definition* in the analyzed repo, keyed by
/// name. Declaration-only functions have no entry: calling them contributes
/// no effects (the conservative-for-false-positives choice).
#[derive(Debug, Default)]
pub(crate) struct Summaries {
    map: HashMap<String, FnSummary>,
}

impl Summaries {
    pub fn empty() -> Summaries {
        Summaries::default()
    }

    pub fn get(&self, name: &str) -> Option<&FnSummary> {
        self.map.get(name)
    }

    /// Build summaries over all parsed files, iterating to a bounded
    /// fixpoint so `f -> g -> *p += x` chains converge. The bound (10) is
    /// far deeper than any realistic helper chain; hitting it merely loses
    /// the deepest effects (under-approximation, never a false positive).
    pub fn build<'a>(files: impl Iterator<Item = &'a SourceFile> + Clone) -> Summaries {
        let mut this = Summaries::default();
        for _ in 0..10 {
            let mut changed = false;
            for file in files.clone() {
                for f in file.functions() {
                    if f.body.is_none() {
                        continue;
                    }
                    let summary = summarize_fn(f, &this);
                    match this.map.get(&f.name) {
                        Some(prev) if *prev == summary => {}
                        _ => {
                            this.map.insert(f.name.clone(), summary);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        this
    }
}

fn summarize_fn(f: &Function, known: &Summaries) -> FnSummary {
    let params: HashMap<&str, usize> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.as_str(), i))
        .collect();
    let mut w = SummaryWalker {
        params: &params,
        param_names: f.params.iter().map(|p| p.name.clone()).collect(),
        known,
        protected: 0,
        writes: Vec::new(),
    };
    if let Some(body) = &f.body {
        w.walk_block(body);
    }
    let mut writes = w.writes;
    writes.dedup();
    FnSummary { writes }
}

struct SummaryWalker<'a> {
    params: &'a HashMap<&'a str, usize>,
    param_names: Vec<String>,
    known: &'a Summaries,
    /// Depth of enclosing `atomic`/`critical`: protected writes are not
    /// conflicts at any call site, so they contribute no effect.
    protected: u32,
    writes: Vec<ParamWrite>,
}

impl SummaryWalker<'_> {
    fn walk_block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.walk_stmt(s);
        }
    }

    fn walk_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(e) => self.walk_expr(e),
            StmtKind::Decl(_) => {}
            StmtKind::If { then, els, .. } => {
                self.walk_stmt(then);
                if let Some(e) = els {
                    self.walk_stmt(e);
                }
            }
            StmtKind::While { body, .. } => self.walk_stmt(body),
            StmtKind::For { init, body, .. } => {
                if let Some(i) = init {
                    self.walk_stmt(i);
                }
                self.walk_stmt(body);
            }
            StmtKind::Block(b) => self.walk_block(b),
            StmtKind::Omp { directive, body } => {
                let Some(body) = body else { return };
                let protecting =
                    directive.has(OmpConstruct::Atomic) || directive.has(OmpConstruct::Critical);
                if protecting {
                    self.protected += 1;
                }
                self.walk_stmt(body);
                if protecting {
                    self.protected -= 1;
                }
            }
            StmtKind::Return(_)
            | StmtKind::Break
            | StmtKind::Continue
            | StmtKind::RawPragma(_)
            | StmtKind::Empty => {}
        }
    }

    fn walk_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Assign { op, lhs, rhs } => {
                let op_hint = (*op).and_then(reduction_op_of);
                self.record_write(lhs, op.is_some(), op_hint, Some(rhs));
                self.find_calls(rhs);
            }
            ExprKind::Unary {
                op: op @ (UnaryOp::PreInc | UnaryOp::PreDec | UnaryOp::PostInc | UnaryOp::PostDec),
                expr,
            } => {
                let op_hint = match op {
                    UnaryOp::PreInc | UnaryOp::PostInc => Some(ReductionOp::Add),
                    _ => None,
                };
                self.record_write(expr, true, op_hint, None);
            }
            ExprKind::Paren(inner) => self.walk_expr(inner),
            _ => self.find_calls(e),
        }
    }

    /// Propagate effects of direct calls appearing anywhere in `e`.
    fn find_calls(&mut self, e: &Expr) {
        let mut calls = Vec::new();
        visit_expr(e, &mut |sub| {
            if let ExprKind::Call { callee, args } = &sub.kind {
                if let ExprKind::Ident(name) = &callee.kind {
                    calls.push((name.clone(), args.clone()));
                }
            }
        });
        for (name, args) in calls {
            self.apply_call(&name, &args);
        }
    }

    /// Remap a callee's effects through this call's arguments onto our own
    /// parameters. Unmappable argument shapes are skipped.
    fn apply_call(&mut self, name: &str, args: &[Expr]) {
        if self.protected > 0 {
            return;
        }
        let Some(summary) = self.known.get(name) else {
            return;
        };
        let effects: Vec<ParamWrite> = summary.writes.clone();
        for pw in effects {
            let Some(arg) = args.get(pw.param) else {
                continue;
            };
            // The written-through pointer must be one of *our* pointer
            // parameters, passed directly by name.
            let ExprKind::Ident(base) = &arg.kind else {
                continue;
            };
            let Some(&our_param) = self.params.get(base.as_str()) else {
                continue;
            };
            let effect = match pw.effect {
                ParamEffect::Scalar { kind, op } => ParamEffect::Scalar { kind, op },
                ParamEffect::Element { index } => {
                    let deps = match index {
                        IndexDep::Fixed => Some(Vec::new()),
                        IndexDep::Params(ps) => self.map_index_params(&ps, args),
                    };
                    let Some(deps) = deps else { continue };
                    if deps.is_empty() {
                        ParamEffect::Element {
                            index: IndexDep::Fixed,
                        }
                    } else {
                        ParamEffect::Element {
                            index: IndexDep::Params(deps),
                        }
                    }
                }
            };
            let pw = ParamWrite {
                param: our_param,
                effect,
            };
            if !self.writes.contains(&pw) {
                self.writes.push(pw);
            }
        }
    }

    /// Map the callee's index-parameter positions through the call's
    /// arguments onto our own parameter positions. `None` when an argument
    /// shape is unmappable (skip the effect rather than guess).
    fn map_index_params(&self, ps: &[usize], args: &[Expr]) -> Option<Vec<usize>> {
        let mut deps = Vec::new();
        for &p in ps {
            let ix_arg = args.get(p)?;
            let mut any = false;
            let mut ours: Vec<usize> = Vec::new();
            for (i, pname) in self.param_names.iter().enumerate() {
                if expr_references(ix_arg, pname) {
                    ours.push(i);
                    any = true;
                }
            }
            for i in ours {
                if !deps.contains(&i) {
                    deps.push(i);
                }
            }
            // An index argument referencing none of our params stays
            // loop-invariant only when it is a literal; locals could vary
            // per call — skip the whole effect.
            if !any && !matches!(ix_arg.kind, ExprKind::IntLit(_)) {
                return None;
            }
        }
        deps.sort_unstable();
        Some(deps)
    }

    fn record_write(
        &mut self,
        lhs: &Expr,
        compound: bool,
        op_hint: Option<ReductionOp>,
        rhs: Option<&Expr>,
    ) {
        if self.protected > 0 {
            if let Some(r) = rhs {
                self.find_calls(r);
            }
            return;
        }
        match &lhs.kind {
            // `*p = e` / `*p op= e` / `(*p)++`
            ExprKind::Unary {
                op: UnaryOp::Deref,
                expr,
            } => {
                let ExprKind::Ident(name) = &expr.kind else {
                    return;
                };
                let Some(&param) = self.params.get(name.as_str()) else {
                    return;
                };
                let self_ref = rhs.is_some_and(|r| expr_references(r, name));
                let (kind, op) = if compound || self_ref {
                    (
                        WriteKind::SelfUpdate,
                        op_hint.or_else(|| spelled_out_op(rhs, name)),
                    )
                } else {
                    (WriteKind::Plain, None)
                };
                self.push(ParamWrite {
                    param,
                    effect: ParamEffect::Scalar { kind, op },
                });
            }
            // `p[idx] = e`
            ExprKind::Index { base, index } => {
                let ExprKind::Ident(name) = &base.kind else {
                    return;
                };
                let Some(&param) = self.params.get(name.as_str()) else {
                    return;
                };
                let mut deps = Vec::new();
                for (i, pname) in self.param_names.iter().enumerate() {
                    if expr_references(index, pname) && !deps.contains(&i) {
                        deps.push(i);
                    }
                }
                let index = if deps.is_empty() {
                    IndexDep::Fixed
                } else {
                    IndexDep::Params(deps)
                };
                self.push(ParamWrite {
                    param,
                    effect: ParamEffect::Element { index },
                });
            }
            ExprKind::Paren(inner) => self.record_write(inner, compound, op_hint, rhs),
            _ => {}
        }
    }

    fn push(&mut self, pw: ParamWrite) {
        if !self.writes.contains(&pw) {
            self.writes.push(pw);
        }
    }
}

/// The operator of a spelled-out self-update `*p = *p op e` / `*p = e op *p`.
fn spelled_out_op(rhs: Option<&Expr>, name: &str) -> Option<ReductionOp> {
    let rhs = rhs?;
    let ExprKind::Binary { op, lhs: l, rhs: r } = &rhs.kind else {
        return None;
    };
    let is_self = |e: &Expr| {
        matches!(
            &e.kind,
            ExprKind::Unary { op: UnaryOp::Deref, expr }
                if matches!(&expr.kind, ExprKind::Ident(n) if n == name)
        )
    };
    if is_self(l) || is_self(r) {
        reduction_op_of(*op)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minihpc_lang::parse_file;

    fn summaries(src: &str) -> Summaries {
        let file = parse_file(src).expect("parse");
        let files = [file];
        Summaries::build(files.iter())
    }

    #[test]
    fn deref_compound_update_is_a_scalar_reduction_effect() {
        let s = summaries(
            "void accumulate(double* acc, double x) { *acc += x; }\n\
             int main() { return 0; }\n",
        );
        let sum = s.get("accumulate").expect("summary");
        assert_eq!(sum.writes.len(), 1);
        assert_eq!(sum.writes[0].param, 0);
        assert_eq!(
            sum.writes[0].effect,
            ParamEffect::Scalar {
                kind: WriteKind::SelfUpdate,
                op: Some(ReductionOp::Add),
            }
        );
    }

    #[test]
    fn spelled_out_self_update_recovers_the_operator() {
        let s = summaries("void scale(double* acc, double x) { *acc = *acc * x; }\n");
        assert_eq!(
            s.get("scale").unwrap().writes[0].effect,
            ParamEffect::Scalar {
                kind: WriteKind::SelfUpdate,
                op: Some(ReductionOp::Mul),
            }
        );
    }

    #[test]
    fn plain_deref_store_is_a_plain_scalar_effect() {
        let s = summaries("void set(double* out, double v) { *out = v; }\n");
        assert_eq!(
            s.get("set").unwrap().writes[0].effect,
            ParamEffect::Scalar {
                kind: WriteKind::Plain,
                op: None,
            }
        );
    }

    #[test]
    fn element_write_index_dependency_is_tracked() {
        let s = summaries("void put(double* a, int i, double v) { a[i] = v; }\n");
        let sum = s.get("put").expect("summary");
        assert_eq!(sum.writes.len(), 1);
        assert_eq!(sum.writes[0].param, 0);
        assert_eq!(
            sum.writes[0].effect,
            ParamEffect::Element {
                index: IndexDep::Params(vec![1])
            }
        );
    }

    #[test]
    fn fixed_index_write_is_fixed() {
        let s = summaries("void zero(double* a) { a[0] = 0.0; }\n");
        assert_eq!(
            s.get("zero").unwrap().writes[0].effect,
            ParamEffect::Element {
                index: IndexDep::Fixed
            }
        );
    }

    #[test]
    fn effects_propagate_through_helper_chains() {
        let s = summaries(
            "void inner(double* a, int i) { a[i] = 1.0; }\n\
             void outer(double* b, int j) { inner(b, j); }\n",
        );
        let outer = s.get("outer").expect("summary");
        assert_eq!(outer.writes.len(), 1);
        assert_eq!(outer.writes[0].param, 0);
        assert_eq!(
            outer.writes[0].effect,
            ParamEffect::Element {
                index: IndexDep::Params(vec![1])
            }
        );
    }

    #[test]
    fn atomic_protected_writes_contribute_no_effect() {
        let s = summaries(
            "void bump(int* n) {\n\
             #pragma omp atomic\n\
             *n += 1;\n\
             }\n",
        );
        assert!(s.get("bump").unwrap().writes.is_empty());
    }

    #[test]
    fn declaration_only_functions_have_no_summary() {
        let s = summaries("double lookup(double* g, int i);\nint main() { return 0; }\n");
        assert!(s.get("lookup").is_none());
    }
}
