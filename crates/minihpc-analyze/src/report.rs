//! Finding types: the rule taxonomy, severities, confidence tiers, and
//! the deterministic report rendering shared with the golden fixtures.

use crate::fixit::FixIt;
use minihpc_build::{Diagnostic, ErrorCategory, Severity};

/// The rule taxonomy. Each rule has a stable kebab-case id (reports, golden
/// fixtures) and a stable u8 code (journal codec).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// A shared scalar is written, or a shared array is written at an index
    /// not derived from any parallel loop index: concurrent iterations
    /// conflict on the same location.
    SharedWriteConflict,
    /// A reduction expressed as a raw `acc += x` (or `acc = acc op x`,
    /// `acc++`) on a shared scalar without a `reduction` clause.
    RawReduction,
    /// An array written at the parallel index `i` and read at `i +/- c`
    /// (`c != 0`): a loop-carried dependency through the parallel index.
    LoopCarriedDependency,
    /// A pointer referenced inside a `target` region with no covering `map`
    /// clause on the directive or an enclosing `target data` region.
    MissingMap,
    /// A `map` array section with more dimensions than the mapped pointer.
    MapArity,
    /// An `atomic` directive whose body is not a single simple update.
    AtomicMisuse,
    /// A `barrier` inside a worksharing-loop body or a `critical` region
    /// (deadlock / non-conforming placement).
    BarrierMisuse,
}

impl Rule {
    pub const ALL: [Rule; 7] = [
        Rule::SharedWriteConflict,
        Rule::RawReduction,
        Rule::LoopCarriedDependency,
        Rule::MissingMap,
        Rule::MapArity,
        Rule::AtomicMisuse,
        Rule::BarrierMisuse,
    ];

    /// Stable kebab-case identifier used in reports and fixtures.
    pub fn id(self) -> &'static str {
        match self {
            Rule::SharedWriteConflict => "shared-write-conflict",
            Rule::RawReduction => "raw-reduction",
            Rule::LoopCarriedDependency => "loop-carried-dep",
            Rule::MissingMap => "missing-map",
            Rule::MapArity => "map-arity",
            Rule::AtomicMisuse => "atomic-misuse",
            Rule::BarrierMisuse => "barrier-misuse",
        }
    }

    /// Stable wire code for the journal codec. Append-only.
    pub fn code(self) -> u8 {
        match self {
            Rule::SharedWriteConflict => 0,
            Rule::RawReduction => 1,
            Rule::LoopCarriedDependency => 2,
            Rule::MissingMap => 3,
            Rule::MapArity => 4,
            Rule::AtomicMisuse => 5,
            Rule::BarrierMisuse => 6,
        }
    }

    pub fn from_code(code: u8) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.code() == code)
    }

    /// Default severity. Errors mark a sample as racy for `race_free@k`;
    /// warnings are advisory.
    pub fn severity(self) -> Severity {
        match self {
            Rule::SharedWriteConflict
            | Rule::RawReduction
            | Rule::MapArity
            | Rule::BarrierMisuse => Severity::Error,
            Rule::LoopCarriedDependency | Rule::MissingMap | Rule::AtomicMisuse => {
                Severity::Warning
            }
        }
    }
}

/// How sure the analyzer is that a finding is a real defect — the
/// guided-repair gate: only [`Confidence::High`] error findings with a
/// fix-it are applied deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Confidence {
    /// Heuristic pattern match; plausible but easily spoofed.
    Low,
    /// Indirect evidence: interprocedural summaries or index heuristics.
    Medium,
    /// Direct syntactic evidence inside the region itself.
    High,
}

impl Confidence {
    /// Stable wire code for the journal codec. Append-only.
    pub fn code(self) -> u8 {
        match self {
            Confidence::Low => 0,
            Confidence::Medium => 1,
            Confidence::High => 2,
        }
    }

    pub fn from_code(code: u8) -> Option<Confidence> {
        Some(match code {
            0 => Confidence::Low,
            1 => Confidence::Medium,
            2 => Confidence::High,
            _ => return None,
        })
    }

    pub fn label(self) -> &'static str {
        match self {
            Confidence::Low => "low",
            Confidence::Medium => "medium",
            Confidence::High => "high",
        }
    }
}

/// One analyzer finding: a rule violation anchored to a variable and a
/// source location, with a confidence tier and an optional
/// machine-applicable [`FixIt`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisFinding {
    pub rule: Rule,
    pub severity: Severity,
    /// The variable at fault (array base, scalar, or mapped pointer).
    pub variable: String,
    pub file: String,
    /// 1-based line, when the span is known.
    pub line: Option<u32>,
    pub message: String,
    /// How sure the analyzer is (direct evidence vs summary/heuristic).
    pub confidence: Confidence,
    /// A deterministic edit that would resolve the finding, when one is
    /// known and safe (e.g. privatization only when dataflow proves the
    /// variable dead after the region).
    pub fixit: Option<FixIt>,
}

impl AnalysisFinding {
    /// Is this finding an error (counts against `race_free@k`)?
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Convert into the toolchain [`Diagnostic`] shape so findings flow
    /// through the existing log/clustering machinery. Race findings use the
    /// paper's `OmpInvalidDirective` category: a directive whose clause set
    /// is semantically wrong for its body.
    pub fn diagnostic(&self) -> Diagnostic {
        let make = match self.severity {
            Severity::Error => Diagnostic::error,
            Severity::Warning => Diagnostic::warning,
        };
        let d = make(
            ErrorCategory::OmpInvalidDirective,
            self.file.clone(),
            format!("[{}] {}", self.rule.id(), self.message),
        );
        match self.line {
            Some(line) => d.at_line(line),
            None => d,
        }
    }

    /// One-line rendering used by reports and the golden fixture.
    pub fn render(&self) -> String {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let loc = match self.line {
            Some(line) => format!("{}:{}", self.file, line),
            None => self.file.clone(),
        };
        format!(
            "{loc}: {sev}: [{}] {}: {}",
            self.rule.id(),
            self.variable,
            self.message
        )
    }
}

/// Render a deterministic multi-line report for a finding set (golden
/// fixture format). Empty input renders as an explicit clean marker.
pub fn render_findings(findings: &[AnalysisFinding]) -> String {
    if findings.is_empty() {
        return "analyze: clean (no findings)\n".to_string();
    }
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.render());
        out.push('\n');
    }
    out
}

/// Like [`render_findings`] but with a trailing `  fix-it: ...` line under
/// every finding that carries one (the CLI and the interprocedural golden
/// fixture use this richer form).
pub fn render_findings_with_fixits(findings: &[AnalysisFinding]) -> String {
    if findings.is_empty() {
        return "analyze: clean (no findings)\n".to_string();
    }
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.render());
        out.push('\n');
        if let Some(fx) = &f.fixit {
            out.push_str(&format!(
                "  fix-it ({} confidence): {} at {}:{}\n",
                f.confidence.label(),
                fx.title,
                fx.file,
                fx.line
            ));
        }
    }
    out
}
