//! Classic bit-vector dataflow over [`crate::cfg::Cfg`]: backward liveness
//! and forward reaching definitions, plus the two region-level queries the
//! fix-it synthesizer actually asks:
//!
//! - [`Dataflow::live_after_region`] — gates privatization: adding
//!   `private(x)` is only safe when `x` is dead after the region.
//! - [`Dataflow::defined_before_region`] — picks `firstprivate` over
//!   `private` when a definition reaches the region entry and the region
//!   reads the variable before writing it.
//!
//! Both queries are conservative in the sound direction: an unknown region
//! or variable answers "live" / "defined", which suppresses fix-its rather
//! than emitting unsafe ones.

use crate::cfg::{Cfg, RegionMark};

/// A fixed-width bitset over interned variable ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    pub fn new(bits: usize) -> BitSet {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    pub fn insert(&mut self, bit: u32) {
        self.words[bit as usize / 64] |= 1 << (bit as usize % 64);
    }

    pub fn remove(&mut self, bit: u32) {
        self.words[bit as usize / 64] &= !(1 << (bit as usize % 64));
    }

    pub fn contains(&self, bit: u32) -> bool {
        self.words[bit as usize / 64] & (1 << (bit as usize % 64)) != 0
    }

    /// `self |= other`; returns true when any bit changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let next = *w | *o;
            changed |= next != *w;
            *w = next;
        }
        changed
    }
}

/// Liveness (per-block live-in/live-out) and reaching definitions (has any
/// definition of `v` reached this point), both at variable granularity.
#[derive(Debug)]
pub struct Dataflow {
    live_in: Vec<BitSet>,
    /// For each block: set of variables with at least one definition
    /// reaching the block entry.
    reach_in: Vec<BitSet>,
}

impl Dataflow {
    pub fn run(cfg: &Cfg) -> Dataflow {
        let nvars = cfg.vars.len();
        let nblocks = cfg.blocks.len();

        // Per-block gen/kill for liveness: use[B] = vars read before any
        // write in B; def[B] = vars written in B.
        let mut use_b = vec![BitSet::new(nvars); nblocks];
        let mut def_b = vec![BitSet::new(nvars); nblocks];
        for (i, block) in cfg.blocks.iter().enumerate() {
            for step in &block.steps {
                for &u in &step.uses {
                    if !def_b[i].contains(u) {
                        use_b[i].insert(u);
                    }
                }
                for &d in &step.defs {
                    def_b[i].insert(d);
                }
            }
        }

        // Backward liveness: live_in[B] = use[B] | (live_out[B] - def[B]).
        let mut live_in = vec![BitSet::new(nvars); nblocks];
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..nblocks).rev() {
                let mut live_out = BitSet::new(nvars);
                for &s in &cfg.blocks[i].succs {
                    live_out.union_with(&live_in[s]);
                }
                let mut next = use_b[i].clone();
                for v in 0..nvars as u32 {
                    if live_out.contains(v) && !def_b[i].contains(v) {
                        next.insert(v);
                    }
                }
                if next != live_in[i] {
                    live_in[i] = next;
                    changed = true;
                }
            }
        }

        // Forward reaching: reach_out[B] = reach_in[B] | defs(B); variable
        // granularity (any def reaches) is all the firstprivate gate needs.
        let mut reach_in = vec![BitSet::new(nvars); nblocks];
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..nblocks {
                let mut out = reach_in[i].clone();
                for step in &cfg.blocks[i].steps {
                    for &d in &step.defs {
                        out.insert(d);
                    }
                }
                for &s in &cfg.blocks[i].succs {
                    changed |= reach_in[s].union_with(&out);
                }
            }
        }

        Dataflow { live_in, reach_in }
    }

    /// Is `var` live after the region whose directive starts at
    /// `span_start`? Unknown region or variable ⇒ `true` (conservative:
    /// suppresses the privatization fix-it).
    pub fn live_after_region(&self, cfg: &Cfg, span_start: u32, var: &str) -> bool {
        let (Some(mark), Some(id)) = (cfg.region(span_start), cfg.vars.get(var)) else {
            return true;
        };
        self.live_after_mark(cfg, mark, id)
    }

    fn live_after_mark(&self, cfg: &Cfg, mark: &RegionMark, id: u32) -> bool {
        // Live-in of the after-block, adjusted for steps *after* the
        // region step in the same block (they precede the after-block).
        let block = &cfg.blocks[mark.block];
        let mut live = self.live_in[mark.after].contains(id);
        for step in block.steps[mark.step + 1..].iter().rev() {
            if step.defs.contains(&id) {
                live = false;
            }
            if step.uses.contains(&id) {
                live = true;
            }
        }
        live
    }

    /// Does any definition of `var` reach the entry of the region at
    /// `span_start`? Unknown region or variable ⇒ `true` (conservative:
    /// prefers `firstprivate`, which preserves semantics even when
    /// `private` would have sufficed).
    pub fn defined_before_region(&self, cfg: &Cfg, span_start: u32, var: &str) -> bool {
        let (Some(mark), Some(id)) = (cfg.region(span_start), cfg.vars.get(var)) else {
            return true;
        };
        if self.reach_in[mark.block].contains(id) {
            return true;
        }
        // Replay the block prefix before the region step.
        cfg.blocks[mark.block].steps[..mark.step]
            .iter()
            .any(|s| s.defs.contains(&id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_fn_cfg;
    use minihpc_lang::parse_file;

    fn analyze(src: &str) -> (Cfg, Dataflow) {
        let file = parse_file(src).expect("parse");
        let f = file
            .functions()
            .find(|f| f.body.is_some())
            .expect("a definition");
        let cfg = build_fn_cfg(f);
        let df = Dataflow::run(&cfg);
        (cfg, df)
    }

    #[test]
    fn dead_after_region_when_never_read_again() {
        let (cfg, df) = analyze(
            "int main() {\n\
             int t = 0;\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 4; i++) { t = i; }\n\
             return 0;\n\
             }\n",
        );
        let span = cfg.regions[0].span_start;
        assert!(!df.live_after_region(&cfg, span, "t"));
        assert!(df.defined_before_region(&cfg, span, "t"));
    }

    #[test]
    fn live_after_region_when_read_later() {
        let (cfg, df) = analyze(
            "int main() {\n\
             int t = 0;\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 4; i++) { t = i; }\n\
             return t;\n\
             }\n",
        );
        let span = cfg.regions[0].span_start;
        assert!(df.live_after_region(&cfg, span, "t"));
    }

    #[test]
    fn unknown_names_answer_conservatively() {
        let (cfg, df) = analyze("int main() { return 0; }\n");
        assert!(df.live_after_region(&cfg, 999, "ghost"));
        assert!(df.defined_before_region(&cfg, 999, "ghost"));
    }

    #[test]
    fn undeclared_before_region_is_not_defined_before() {
        // `t` first appears inside the region itself (no def before it).
        let (cfg, df) = analyze(
            "void f(double* a) {\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 4; i++) { a[i] = i; }\n\
             }\n",
        );
        let span = cfg.regions[0].span_start;
        // `a` is a parameter: defined at entry.
        assert!(df.defined_before_region(&cfg, span, "a"));
    }

    #[test]
    fn bitset_basics() {
        let mut b = BitSet::new(130);
        b.insert(0);
        b.insert(129);
        assert!(b.contains(0) && b.contains(129) && !b.contains(64));
        b.remove(0);
        assert!(!b.contains(0));
        let mut c = BitSet::new(130);
        assert!(c.union_with(&b));
        assert!(!c.union_with(&b));
    }
}
