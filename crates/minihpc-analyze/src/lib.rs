//! # minihpc-analyze
//!
//! Static data-race and directive-correctness analysis for MiniHPC parallel
//! regions.
//!
//! The build pipeline (`minihpc-build`) only rejects *syntactically* invalid
//! directives; a `parallel for` that writes a shared scalar with no
//! `reduction`/`atomic`/`private` clause builds and — on small inputs under a
//! sequential interpreter schedule — often even passes its tests. This crate
//! closes that gap: [`analyze_repo`] parses every code file, classifies each
//! variable access inside every parallel region
//! (shared / private / firstprivate / reduction / loop-index), and emits
//! structured [`AnalysisFinding`]s for the rule taxonomy in [`Rule`].
//!
//! ## Architecture (v2)
//!
//! The crate is a small multi-pass dataflow framework:
//!
//! - [`mod@cfg`] builds a per-function control-flow graph with use/def steps
//!   and a [`cfg::RegionMark`] per worksharing region.
//! - [`dataflow`] runs backward liveness and forward reaching definitions
//!   over the CFG; the results gate privatization fix-its (only privatize
//!   what is provably dead after the region).
//! - `callgraph` summarizes which pointer parameters each function
//!   definition writes through, to a bounded fixpoint, so the rules see
//!   races hidden one or more helper calls deep.
//! - `rules` drives the rule set per function and region, expanding call
//!   sites against the summaries.
//! - [`fixit`] and `report` define the finding/fix-it data model and the
//!   deterministic renderings.
//!
//! Findings carry a [`Confidence`] tier (direct evidence vs interprocedural
//! summary) and, when a safe deterministic edit is known, a [`FixIt`] that
//! [`fixit::apply_all`] can apply to the source text — the analyzer-guided
//! repair path in the eval pipeline.
//!
//! The analysis is *pure*: it depends only on repository content, never on
//! execution, which lets the eval pipeline cache findings content-addressed
//! alongside build objects and keep journaled runs byte-identical.

mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod fixit;
mod report;
mod rules;
mod visit;

pub use fixit::{FixIt, FixItEdit};
pub use report::{render_findings, render_findings_with_fixits, AnalysisFinding, Confidence, Rule};

use callgraph::Summaries;
use minihpc_lang::{parse_file, FileKind, SourceRepo};
use rules::FnAnalyzer;

/// Analysis configuration.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Run the call-graph summary pass so rules see writes hidden behind
    /// helper calls. On by default; turning it off reproduces the v1
    /// (intraprocedural) behaviour — kept for the regression tests that
    /// prove the one-call-deep false negative.
    pub interprocedural: bool,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            interprocedural: true,
        }
    }
}

/// Analyze every parseable code file of a repository with default options.
/// Unparseable files are skipped (the build pipeline owns syntax errors).
/// Findings are returned in a deterministic order:
/// (file, line, rule, variable, message).
pub fn analyze_repo(repo: &SourceRepo) -> Vec<AnalysisFinding> {
    analyze_repo_with(repo, &AnalyzeOptions::default())
}

/// [`analyze_repo`] with explicit [`AnalyzeOptions`].
pub fn analyze_repo_with(repo: &SourceRepo, opts: &AnalyzeOptions) -> Vec<AnalysisFinding> {
    // Parse everything once: the same ASTs feed the summary pass and the
    // per-function rules.
    let parsed: Vec<(&str, &str, minihpc_lang::ast::SourceFile)> = repo
        .iter()
        .filter(|(path, _)| FileKind::of(path).is_code())
        .filter_map(|(path, text)| Some((path, text, parse_file(text).ok()?)))
        .collect();

    let summaries = if opts.interprocedural {
        Summaries::build(parsed.iter().map(|(_, _, f)| f))
    } else {
        Summaries::empty()
    };

    let mut findings = Vec::new();
    for (path, text, file) in &parsed {
        for f in file.functions() {
            if f.body.is_some() {
                FnAnalyzer::analyze(path, text, &summaries, &mut findings, f);
            }
        }
    }
    findings.sort_by(|a, b| {
        (
            a.file.as_str(),
            a.line.unwrap_or(0),
            a.rule.code(),
            a.variable.as_str(),
            a.message.as_str(),
        )
            .cmp(&(
                b.file.as_str(),
                b.line.unwrap_or(0),
                b.rule.code(),
                b.variable.as_str(),
                b.message.as_str(),
            ))
    });
    findings.dedup();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use minihpc_build::ErrorCategory;

    fn analyze_src(src: &str) -> Vec<AnalysisFinding> {
        let repo = SourceRepo::new().with_file("src/main.cpp", src);
        analyze_repo(&repo)
    }

    fn analyze_src_v1(src: &str) -> Vec<AnalysisFinding> {
        let repo = SourceRepo::new().with_file("src/main.cpp", src);
        analyze_repo_with(
            &repo,
            &AnalyzeOptions {
                interprocedural: false,
            },
        )
    }

    fn rules(findings: &[AnalysisFinding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn raw_reduction_without_clause_is_flagged() {
        let f = analyze_src(
            "int main() {\n\
             double sum = 0.0;\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 100; i++) {\n\
             sum += i;\n\
             }\n\
             return 0;\n\
             }\n",
        );
        assert_eq!(rules(&f), vec![Rule::RawReduction], "{f:#?}");
        assert_eq!(f[0].variable, "sum");
        assert_eq!(f[0].line, Some(5));
        assert!(f[0].is_error());
        assert_eq!(f[0].confidence, Confidence::High);
    }

    #[test]
    fn raw_reduction_carries_an_applicable_fixit() {
        let src = "int main() {\n\
                   double sum = 0.0;\n\
                   #pragma omp parallel for\n\
                   for (int i = 0; i < 100; i++) {\n\
                   sum += i;\n\
                   }\n\
                   return 0;\n\
                   }\n";
        let f = analyze_src(src);
        let fx = f[0].fixit.as_ref().expect("reduction fix-it");
        assert_eq!(fx.line, 3);
        assert_eq!(
            fx.edit,
            FixItEdit::AddClause {
                clause: "reduction(+: sum)".to_string()
            }
        );
        let fixed = fx.apply(src).expect("applies");
        assert!(fixed.contains("#pragma omp parallel for reduction(+: sum)"));
        // The fixed source is clean.
        let repo = SourceRepo::new().with_file("src/main.cpp", &*fixed);
        assert!(analyze_repo(&repo).is_empty());
    }

    #[test]
    fn reduction_clause_suppresses_raw_reduction() {
        let f = analyze_src(
            "int main() {\n\
             double sum = 0.0;\n\
             #pragma omp parallel for reduction(+: sum)\n\
             for (int i = 0; i < 100; i++) {\n\
             sum += i;\n\
             }\n\
             return 0;\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn plain_shared_scalar_write_conflicts() {
        let f = analyze_src(
            "int main() {\n\
             int last = 0;\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 100; i++) {\n\
             last = i;\n\
             }\n\
             return last;\n\
             }\n",
        );
        assert_eq!(rules(&f), vec![Rule::SharedWriteConflict], "{f:#?}");
        // `last` is read after the region: privatizing would change the
        // result, so no fix-it may be offered.
        assert!(f[0].fixit.is_none(), "{f:#?}");
    }

    #[test]
    fn dead_scalar_conflict_gets_a_privatization_fixit() {
        let src = "int main() {\n\
                   int tmp = 0;\n\
                   #pragma omp parallel for\n\
                   for (int i = 0; i < 100; i++) {\n\
                   tmp = i;\n\
                   }\n\
                   return 0;\n\
                   }\n";
        let f = analyze_src(src);
        assert_eq!(rules(&f), vec![Rule::SharedWriteConflict], "{f:#?}");
        let fx = f[0].fixit.as_ref().expect("privatization fix-it");
        assert_eq!(
            fx.edit,
            FixItEdit::AddClause {
                clause: "private(tmp)".to_string()
            }
        );
        let fixed = fx.apply(src).expect("applies");
        let repo = SourceRepo::new().with_file("src/main.cpp", &*fixed);
        assert!(analyze_repo(&repo).is_empty());
    }

    #[test]
    fn read_before_write_dead_scalar_gets_firstprivate() {
        // `scale` is read (initialized before the region) and overwritten
        // per iteration; dead after. firstprivate preserves the initial
        // read, private would not.
        let f = analyze_src(
            "int main() {\n\
             int scale = 3;\n\
             int out = 0;\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 100; i++) {\n\
             int y = scale * i;\n\
             scale = y - i;\n\
             }\n\
             return out;\n\
             }\n",
        );
        let conflict = f
            .iter()
            .find(|x| x.rule == Rule::SharedWriteConflict && x.variable == "scale")
            .expect("conflict on scale");
        let fx = conflict.fixit.as_ref().expect("fix-it");
        assert_eq!(
            fx.edit,
            FixItEdit::AddClause {
                clause: "firstprivate(scale)".to_string()
            }
        );
    }

    #[test]
    fn region_locals_and_loop_index_are_private() {
        let f = analyze_src(
            "void k(int* out) {\n\
             #pragma omp parallel for collapse(2)\n\
             for (int i = 0; i < 8; i++) {\n\
             for (int j = 0; j < 8; j++) {\n\
             int count = 0;\n\
             count += i + j;\n\
             out[i * 8 + j] = count;\n\
             }\n\
             }\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn private_clause_respected() {
        let f = analyze_src(
            "int main() {\n\
             int tmp = 0;\n\
             #pragma omp parallel for private(tmp)\n\
             for (int i = 0; i < 8; i++) {\n\
             tmp = i;\n\
             }\n\
             return 0;\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn array_write_not_using_loop_index_conflicts() {
        let f = analyze_src(
            "void k(double* out) {\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 100; i++) {\n\
             out[0] = i;\n\
             }\n\
             }\n",
        );
        assert_eq!(rules(&f), vec![Rule::SharedWriteConflict], "{f:#?}");
        assert_eq!(f[0].variable, "out");
    }

    #[test]
    fn loop_carried_dependency_is_warned() {
        let f = analyze_src(
            "void k(double* a) {\n\
             #pragma omp parallel for\n\
             for (int i = 1; i < 100; i++) {\n\
             a[i] = a[i - 1] + 1.0;\n\
             }\n\
             }\n",
        );
        assert_eq!(rules(&f), vec![Rule::LoopCarriedDependency], "{f:#?}");
        assert!(!f[0].is_error());
    }

    #[test]
    fn atomic_protects_shared_update_and_misuse_is_flagged() {
        let clean = analyze_src(
            "int main() {\n\
             int n = 0;\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 8; i++) {\n\
             #pragma omp atomic\n\
             n += 1;\n\
             }\n\
             return n;\n\
             }\n",
        );
        assert!(clean.is_empty(), "{clean:#?}");

        let misuse = analyze_src(
            "int main() {\n\
             int n = 0;\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 8; i++) {\n\
             #pragma omp atomic\n\
             { n += 1; n += 2; }\n\
             }\n\
             return n;\n\
             }\n",
        );
        assert!(rules(&misuse).contains(&Rule::AtomicMisuse), "{misuse:#?}");
    }

    #[test]
    fn critical_protects_shared_update() {
        let f = analyze_src(
            "int main() {\n\
             int n = 0;\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 8; i++) {\n\
             #pragma omp critical\n\
             { n += 1; }\n\
             }\n\
             return n;\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn barrier_in_worksharing_loop_is_flagged_with_removal_fixit() {
        let src = "void k(double* a) {\n\
                   #pragma omp parallel for\n\
                   for (int i = 0; i < 8; i++) {\n\
                   a[i] = 0.0;\n\
                   #pragma omp barrier\n\
                   }\n\
                   }\n";
        let f = analyze_src(src);
        assert_eq!(rules(&f), vec![Rule::BarrierMisuse], "{f:#?}");
        let fx = f[0].fixit.as_ref().expect("removal fix-it");
        assert_eq!(fx.edit, FixItEdit::RemoveLine);
        let fixed = fx.apply(src).expect("applies");
        assert!(!fixed.contains("barrier"));
        let repo = SourceRepo::new().with_file("src/main.cpp", &*fixed);
        assert!(analyze_repo(&repo).is_empty());
    }

    #[test]
    fn missing_map_on_target_region_is_warned() {
        let f = analyze_src(
            "void k(double* a, double* b) {\n\
             #pragma omp target teams distribute parallel for map(tofrom: a)\n\
             for (int i = 0; i < 8; i++) {\n\
             a[i] = b[i];\n\
             }\n\
             }\n",
        );
        assert_eq!(rules(&f), vec![Rule::MissingMap], "{f:#?}");
        assert_eq!(f[0].variable, "b");
        assert_eq!(f[0].confidence, Confidence::Medium);
        let fx = f[0].fixit.as_ref().expect("map fix-it");
        assert_eq!(
            fx.edit,
            FixItEdit::AddClause {
                clause: "map(tofrom: b)".to_string()
            }
        );
    }

    #[test]
    fn enclosing_target_data_satisfies_map() {
        let f = analyze_src(
            "void k(double* a, double* b) {\n\
             #pragma omp target data map(to: b) map(tofrom: a)\n\
             {\n\
             #pragma omp target teams distribute parallel for\n\
             for (int i = 0; i < 8; i++) {\n\
             a[i] = b[i];\n\
             }\n\
             }\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn map_arity_mismatch_is_flagged() {
        let src = "void k(double* a) {\n\
                   #pragma omp target teams distribute parallel for map(tofrom: a[0:4][0:4])\n\
                   for (int i = 0; i < 4; i++) {\n\
                   a[i] = 1.0;\n\
                   }\n\
                   }\n";
        let f = analyze_src(src);
        let arity = f
            .iter()
            .find(|x| x.rule == Rule::MapArity)
            .expect("map-arity finding");
        let fx = arity.fixit.as_ref().expect("replace-line fix-it");
        let fixed = fx.apply(src).expect("applies");
        // The truncated directive keeps one range and is itself clean.
        assert!(fixed.contains("a[0:4]"), "{fixed}");
        assert!(!fixed.contains("[0:4][0:4]"), "{fixed}");
        let repo = SourceRepo::new().with_file("src/main.cpp", &*fixed);
        assert!(
            analyze_repo(&repo).iter().all(|x| x.rule != Rule::MapArity),
            "{fixed}"
        );
    }

    #[test]
    fn oracle_offload_shape_is_clean() {
        // The shape the oracle transpiler emits: full construct chain,
        // collapse, reduction, and maps for every referenced pointer.
        let f = analyze_src(
            "double lookup(double* g, int i);\n\
             double run(double* grid, int n) {\n\
             double verification = 0.0;\n\
             #pragma omp target teams distribute parallel for \
             reduction(+: verification) map(to: grid) map(tofrom: verification)\n\
             for (int i = 0; i < n; i++) {\n\
             verification += lookup(grid, i);\n\
             }\n\
             return verification;\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn interprocedural_raw_reduction_was_a_v1_false_negative() {
        // A race hidden one call deep: the region calls `accumulate(&sum, x)`
        // and the helper does `*acc += x`. v1 (intraprocedural) sees only a
        // read of `sum` — the frozen false negative. v2's summary pass
        // catches it with Medium confidence and the same reduction fix-it.
        let src = "void accumulate(double* acc, double x) { *acc += x; }\n\
                   double run(int n) {\n\
                   double sum = 0.0;\n\
                   #pragma omp parallel for\n\
                   for (int i = 0; i < n; i++) {\n\
                   accumulate(&sum, i * 0.5);\n\
                   }\n\
                   return sum;\n\
                   }\n";
        let v1 = analyze_src_v1(src);
        assert!(v1.is_empty(), "v1 must miss the hidden race: {v1:#?}");

        let v2 = analyze_src(src);
        assert_eq!(rules(&v2), vec![Rule::RawReduction], "{v2:#?}");
        assert_eq!(v2[0].variable, "sum");
        assert_eq!(v2[0].confidence, Confidence::Medium);
        let fx = v2[0].fixit.as_ref().expect("reduction fix-it");
        assert_eq!(
            fx.edit,
            FixItEdit::AddClause {
                clause: "reduction(+: sum)".to_string()
            }
        );
    }

    #[test]
    fn interprocedural_fixed_index_write_is_flagged() {
        let src = "void bump_first(double* a) { a[0] = a[0] + 1.0; }\n\
                   void run(double* data, int n) {\n\
                   #pragma omp parallel for\n\
                   for (int i = 0; i < n; i++) {\n\
                   bump_first(data);\n\
                   }\n\
                   }\n";
        let v1 = analyze_src_v1(src);
        assert!(v1.is_empty(), "v1 must miss it: {v1:#?}");
        let v2 = analyze_src(src);
        assert_eq!(rules(&v2), vec![Rule::SharedWriteConflict], "{v2:#?}");
        assert_eq!(v2[0].variable, "data");
    }

    #[test]
    fn interprocedural_indexed_write_through_loop_index_is_clean() {
        // The helper writes `a[i]` and the region passes the parallel index
        // through: every iteration touches a distinct element. The summary
        // expansion must not turn this into a false positive.
        let f = analyze_src(
            "void put(double* a, int i, double v) { a[i] = v; }\n\
             void run(double* data, int n) {\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < n; i++) {\n\
             put(data, i, 1.0);\n\
             }\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn interprocedural_atomic_helper_is_clean() {
        let f = analyze_src(
            "void bump(int* n) {\n\
             #pragma omp atomic\n\
             *n += 1;\n\
             }\n\
             int run(int m) {\n\
             int count = 0;\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < m; i++) {\n\
             bump(&count);\n\
             }\n\
             return count;\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn unparseable_files_are_skipped() {
        let repo = SourceRepo::new()
            .with_file("src/bad.cpp", "int main( {{{ this is not minihpc")
            .with_file("src/ok.cpp", "int main() { return 0; }\n");
        assert!(analyze_repo(&repo).is_empty());
    }

    #[test]
    fn findings_are_deterministic_and_sorted() {
        let src = "int main() {\n\
                   int a = 0; int b = 0;\n\
                   #pragma omp parallel for\n\
                   for (int i = 0; i < 8; i++) {\n\
                   b += 1;\n\
                   a += 1;\n\
                   }\n\
                   return a + b;\n\
                   }\n";
        let f1 = analyze_src(src);
        let f2 = analyze_src(src);
        assert_eq!(f1, f2);
        assert_eq!(f1.len(), 2);
        let vars: Vec<_> = f1.iter().map(|f| f.variable.as_str()).collect();
        assert_eq!(vars, vec!["b", "a"], "sorted by line, not name");
    }

    #[test]
    fn rule_codes_roundtrip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_code(r.code()), Some(r));
        }
        assert_eq!(Rule::from_code(200), None);
        for c in [Confidence::Low, Confidence::Medium, Confidence::High] {
            assert_eq!(Confidence::from_code(c.code()), Some(c));
        }
        assert_eq!(Confidence::from_code(9), None);
    }

    #[test]
    fn diagnostic_conversion_and_render() {
        let f = analyze_src(
            "int main() {\n\
             double s = 0.0;\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 4; i++) { s += i; }\n\
             return 0;\n\
             }\n",
        );
        assert_eq!(f.len(), 1);
        let d = f[0].diagnostic();
        assert_eq!(d.category, ErrorCategory::OmpInvalidDirective);
        assert!(d.is_error());
        assert!(d.message.contains("[raw-reduction]"));
        let rendered = render_findings(&f);
        assert!(rendered.contains("src/main.cpp:4"), "{rendered}");
        assert_eq!(render_findings(&[]), "analyze: clean (no findings)\n");
        let rich = render_findings_with_fixits(&f);
        assert!(
            rich.contains("fix-it (high confidence): add `reduction(+: s)`"),
            "{rich}"
        );
    }
}
