//! # minihpc-analyze
//!
//! Static data-race and directive-correctness analysis for MiniHPC parallel
//! regions.
//!
//! The build pipeline (`minihpc-build`) only rejects *syntactically* invalid
//! directives; a `parallel for` that writes a shared scalar with no
//! `reduction`/`atomic`/`private` clause builds and — on small inputs under a
//! sequential interpreter schedule — often even passes its tests. This crate
//! closes that gap: [`analyze_repo`] parses every code file, classifies each
//! variable access inside every parallel region
//! (shared / private / firstprivate / reduction / loop-index), and emits
//! structured [`AnalysisFinding`]s for the rule taxonomy in [`Rule`].
//!
//! The analysis is *pure*: it depends only on repository content, never on
//! execution, which lets the eval pipeline cache findings content-addressed
//! alongside build objects and keep journaled runs byte-identical.

use std::collections::{BTreeSet, HashMap, HashSet};

use minihpc_build::{Diagnostic, ErrorCategory, Severity};
use minihpc_lang::ast::{Block, Expr, ExprKind, Function, Stmt, StmtKind, Type, UnaryOp};
use minihpc_lang::pragma::{OmpClause, OmpConstruct, OmpDirective};
use minihpc_lang::span::line_col;
use minihpc_lang::{parse_file, FileKind, SourceRepo};

// ---------------------------------------------------------------------------
// Rules and findings
// ---------------------------------------------------------------------------

/// The rule taxonomy. Each rule has a stable kebab-case id (reports, golden
/// fixtures) and a stable u8 code (journal codec).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// A shared scalar is written, or a shared array is written at an index
    /// not derived from any parallel loop index: concurrent iterations
    /// conflict on the same location.
    SharedWriteConflict,
    /// A reduction expressed as a raw `acc += x` (or `acc = acc op x`,
    /// `acc++`) on a shared scalar without a `reduction` clause.
    RawReduction,
    /// An array written at the parallel index `i` and read at `i +/- c`
    /// (`c != 0`): a loop-carried dependency through the parallel index.
    LoopCarriedDependency,
    /// A pointer referenced inside a `target` region with no covering `map`
    /// clause on the directive or an enclosing `target data` region.
    MissingMap,
    /// A `map` array section with more dimensions than the mapped pointer.
    MapArity,
    /// An `atomic` directive whose body is not a single simple update.
    AtomicMisuse,
    /// A `barrier` inside a worksharing-loop body or a `critical` region
    /// (deadlock / non-conforming placement).
    BarrierMisuse,
}

impl Rule {
    pub const ALL: [Rule; 7] = [
        Rule::SharedWriteConflict,
        Rule::RawReduction,
        Rule::LoopCarriedDependency,
        Rule::MissingMap,
        Rule::MapArity,
        Rule::AtomicMisuse,
        Rule::BarrierMisuse,
    ];

    /// Stable kebab-case identifier used in reports and fixtures.
    pub fn id(self) -> &'static str {
        match self {
            Rule::SharedWriteConflict => "shared-write-conflict",
            Rule::RawReduction => "raw-reduction",
            Rule::LoopCarriedDependency => "loop-carried-dep",
            Rule::MissingMap => "missing-map",
            Rule::MapArity => "map-arity",
            Rule::AtomicMisuse => "atomic-misuse",
            Rule::BarrierMisuse => "barrier-misuse",
        }
    }

    /// Stable wire code for the journal codec. Append-only.
    pub fn code(self) -> u8 {
        match self {
            Rule::SharedWriteConflict => 0,
            Rule::RawReduction => 1,
            Rule::LoopCarriedDependency => 2,
            Rule::MissingMap => 3,
            Rule::MapArity => 4,
            Rule::AtomicMisuse => 5,
            Rule::BarrierMisuse => 6,
        }
    }

    pub fn from_code(code: u8) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.code() == code)
    }

    /// Default severity. Errors mark a sample as racy for `race_free@k`;
    /// warnings are advisory.
    pub fn severity(self) -> Severity {
        match self {
            Rule::SharedWriteConflict
            | Rule::RawReduction
            | Rule::MapArity
            | Rule::BarrierMisuse => Severity::Error,
            Rule::LoopCarriedDependency | Rule::MissingMap | Rule::AtomicMisuse => {
                Severity::Warning
            }
        }
    }
}

/// One analyzer finding: a rule violation anchored to a variable and a
/// source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisFinding {
    pub rule: Rule,
    pub severity: Severity,
    /// The variable at fault (array base, scalar, or mapped pointer).
    pub variable: String,
    pub file: String,
    /// 1-based line, when the span is known.
    pub line: Option<u32>,
    pub message: String,
}

impl AnalysisFinding {
    /// Is this finding an error (counts against `race_free@k`)?
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Convert into the toolchain [`Diagnostic`] shape so findings flow
    /// through the existing log/clustering machinery. Race findings use the
    /// paper's `OmpInvalidDirective` category: a directive whose clause set
    /// is semantically wrong for its body.
    pub fn diagnostic(&self) -> Diagnostic {
        let make = match self.severity {
            Severity::Error => Diagnostic::error,
            Severity::Warning => Diagnostic::warning,
        };
        let d = make(
            ErrorCategory::OmpInvalidDirective,
            self.file.clone(),
            format!("[{}] {}", self.rule.id(), self.message),
        );
        match self.line {
            Some(line) => d.at_line(line),
            None => d,
        }
    }

    /// One-line rendering used by reports and the golden fixture.
    pub fn render(&self) -> String {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let loc = match self.line {
            Some(line) => format!("{}:{}", self.file, line),
            None => self.file.clone(),
        };
        format!(
            "{loc}: {sev}: [{}] {}: {}",
            self.rule.id(),
            self.variable,
            self.message
        )
    }
}

/// Render a deterministic multi-line report for a finding set (golden
/// fixture format). Empty input renders as an explicit clean marker.
pub fn render_findings(findings: &[AnalysisFinding]) -> String {
    if findings.is_empty() {
        return "analyze: clean (no findings)\n".to_string();
    }
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.render());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Analyze every parseable code file of a repository. Unparseable files are
/// skipped (the build pipeline owns syntax errors). Findings are returned in
/// a deterministic order: (file, line, rule, variable, message).
pub fn analyze_repo(repo: &SourceRepo) -> Vec<AnalysisFinding> {
    let mut findings = Vec::new();
    for (path, text) in repo.iter() {
        if !FileKind::of(path).is_code() {
            continue;
        }
        let Ok(file) = parse_file(text) else {
            continue;
        };
        for f in file.functions() {
            if f.body.is_some() {
                FnAnalyzer::new(path, text, &mut findings).run(f);
            }
        }
    }
    findings.sort_by(|a, b| {
        (
            a.file.as_str(),
            a.line.unwrap_or(0),
            a.rule.code(),
            a.variable.as_str(),
            a.message.as_str(),
        )
            .cmp(&(
                b.file.as_str(),
                b.line.unwrap_or(0),
                b.rule.code(),
                b.variable.as_str(),
                b.message.as_str(),
            ))
    });
    findings.dedup();
    findings
}

// ---------------------------------------------------------------------------
// Per-function analysis
// ---------------------------------------------------------------------------

/// What we know about a declared variable: its pointer rank (0 = scalar).
#[derive(Debug, Clone, Copy)]
struct VarInfo {
    rank: u8,
}

fn rank_of(ty: &Type) -> u8 {
    match ty.unqualified() {
        Type::Ptr(inner) => 1 + rank_of(inner),
        Type::View { rank, .. } => *rank,
        _ => 0,
    }
}

struct FnAnalyzer<'a> {
    file: &'a str,
    text: &'a str,
    /// Lexical scopes mapping names to declaration info.
    scopes: Vec<HashMap<String, VarInfo>>,
    /// Variables mapped by enclosing `target data` regions.
    enclosing_maps: Vec<BTreeSet<String>>,
    findings: &'a mut Vec<AnalysisFinding>,
}

impl<'a> FnAnalyzer<'a> {
    fn new(file: &'a str, text: &'a str, findings: &'a mut Vec<AnalysisFinding>) -> Self {
        FnAnalyzer {
            file,
            text,
            scopes: vec![HashMap::new()],
            enclosing_maps: Vec::new(),
            findings,
        }
    }

    fn run(&mut self, f: &Function) {
        for p in &f.params {
            self.declare(&p.name, &p.ty);
        }
        if let Some(body) = &f.body {
            self.walk_block(body);
        }
    }

    fn declare(&mut self, name: &str, ty: &Type) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), VarInfo { rank: rank_of(ty) });
    }

    fn lookup(&self, name: &str) -> Option<VarInfo> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn line_of(&self, start: u32) -> Option<u32> {
        if start == 0 && self.text.is_empty() {
            return None;
        }
        Some(line_col(self.text, start).line)
    }

    fn report(&mut self, rule: Rule, variable: &str, span_start: u32, message: String) {
        self.findings.push(AnalysisFinding {
            rule,
            severity: rule.severity(),
            variable: variable.to_string(),
            file: self.file.to_string(),
            line: self.line_of(span_start),
            message,
        });
    }

    fn walk_block(&mut self, b: &Block) {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.walk_stmt(s);
        }
        self.scopes.pop();
    }

    fn walk_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl(d) => self.declare(&d.name, &d.ty),
            StmtKind::Block(b) => self.walk_block(b),
            StmtKind::If { then, els, .. } => {
                self.walk_stmt(then);
                if let Some(e) = els {
                    self.walk_stmt(e);
                }
            }
            StmtKind::While { body, .. } => self.walk_stmt(body),
            StmtKind::For { init, body, .. } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.walk_stmt(init);
                }
                self.walk_stmt(body);
                self.scopes.pop();
            }
            StmtKind::Omp { directive, body } => self.walk_omp(directive, body.as_deref()),
            StmtKind::Expr(_)
            | StmtKind::Return(_)
            | StmtKind::Break
            | StmtKind::Continue
            | StmtKind::RawPragma(_)
            | StmtKind::Empty => {}
        }
    }

    fn walk_omp(&mut self, d: &OmpDirective, body: Option<&Stmt>) {
        // Standalone directives (`barrier`, `target update`) are fine at
        // function/sequential level; misuse is detected inside regions.
        let Some(body) = body else { return };

        if d.has(OmpConstruct::TargetData) {
            let mapped: BTreeSet<String> = d
                .map_clauses()
                .flat_map(|(_, sections)| sections.iter().map(|s| s.var.clone()))
                .collect();
            self.check_map_arity(d);
            self.enclosing_maps.push(mapped);
            self.walk_stmt(body);
            self.enclosing_maps.pop();
            return;
        }

        if d.has(OmpConstruct::Atomic) {
            self.check_atomic(d, body);
            return;
        }

        let worksharing = d.has(OmpConstruct::Parallel)
            || d.has(OmpConstruct::Teams)
            || d.has(OmpConstruct::For)
            || d.has(OmpConstruct::Distribute);
        if worksharing {
            RegionAnalyzer::analyze(self, d, body);
            return;
        }

        if d.has(OmpConstruct::Target) {
            // Serial `target` region: still subject to mapping rules.
            self.check_map_arity(d);
            self.check_missing_maps(d, body);
            self.walk_stmt(body);
            return;
        }

        // `critical` / `single` / `master` / `simd` at sequential level:
        // walk through.
        self.walk_stmt(body);
    }

    /// An `atomic` body must be one simple update of a scalar or array
    /// element: `x op= e`, `x = x op e`, `x++`/`x--`.
    fn check_atomic(&mut self, d: &OmpDirective, body: &Stmt) {
        let expr = match &body.kind {
            StmtKind::Expr(e) => Some(e),
            StmtKind::Block(b) if b.stmts.len() == 1 => match &b.stmts[0].kind {
                StmtKind::Expr(e) => Some(e),
                _ => None,
            },
            _ => None,
        };
        let simple = expr.is_some_and(is_simple_atomic_update);
        if !simple {
            self.report(
                Rule::AtomicMisuse,
                "<atomic>",
                d.span.start,
                "atomic body is not a single simple update (x op= e, x = x op e, x++)".to_string(),
            );
        }
    }

    /// `map` sections must not have more dimensions than the mapped pointer
    /// has levels of indirection.
    fn check_map_arity(&mut self, d: &OmpDirective) {
        let sections: Vec<_> = d
            .map_clauses()
            .flat_map(|(_, s)| s.iter().cloned())
            .collect();
        for section in sections {
            let dims = section.ranges.len() as u8;
            if dims < 2 {
                continue;
            }
            if let Some(info) = self.lookup(&section.var) {
                if info.rank > 0 && dims > info.rank {
                    self.report(
                        Rule::MapArity,
                        &section.var,
                        d.span.start,
                        format!(
                            "map section has {dims} dimensions but '{}' has rank {}",
                            section.var, info.rank
                        ),
                    );
                }
            }
        }
    }

    /// Every pointer referenced inside a `target` region must be covered by
    /// a `map` clause on the directive or an enclosing `target data`.
    fn check_missing_maps(&mut self, d: &OmpDirective, body: &Stmt) {
        let mut mapped: BTreeSet<String> = d
            .map_clauses()
            .flat_map(|(_, sections)| sections.iter().map(|s| s.var.clone()))
            .collect();
        for m in &self.enclosing_maps {
            mapped.extend(m.iter().cloned());
        }
        let mut referenced = Vec::new();
        collect_idents(body, &mut referenced);
        let mut seen = HashSet::new();
        for (name, start) in referenced {
            if mapped.contains(&name) || !seen.insert(name.clone()) {
                continue;
            }
            if let Some(info) = self.lookup(&name) {
                if info.rank > 0 {
                    self.report(
                        Rule::MissingMap,
                        &name,
                        start,
                        format!("pointer '{name}' used in target region without a map clause"),
                    );
                }
            }
        }
    }
}

/// `x op= e`, `x = x op e`, `x++`/`x--` where `x` is a scalar or element.
fn is_simple_atomic_update(e: &Expr) -> bool {
    fn is_place(e: &Expr) -> bool {
        matches!(
            e.kind,
            ExprKind::Ident(_) | ExprKind::Index { .. } | ExprKind::Member { .. }
        ) || matches!(
            &e.kind,
            ExprKind::Unary {
                op: UnaryOp::Deref,
                ..
            }
        )
    }
    match &e.kind {
        ExprKind::Assign {
            op: Some(_), lhs, ..
        } => is_place(lhs),
        ExprKind::Assign { op: None, lhs, rhs } => {
            // x = x op e / x = e op x
            let ExprKind::Binary {
                lhs: bl, rhs: br, ..
            } = &rhs.kind
            else {
                return false;
            };
            is_place(lhs) && (same_place(lhs, bl) || same_place(lhs, br))
        }
        ExprKind::Unary { op, expr } => {
            matches!(
                op,
                UnaryOp::PreInc | UnaryOp::PreDec | UnaryOp::PostInc | UnaryOp::PostDec
            ) && is_place(expr)
        }
        _ => false,
    }
}

fn same_place(a: &Expr, b: &Expr) -> bool {
    match (&a.kind, &b.kind) {
        (ExprKind::Ident(x), ExprKind::Ident(y)) => x == y,
        (
            ExprKind::Index {
                base: ab,
                index: ai,
            },
            ExprKind::Index {
                base: bb,
                index: bi,
            },
        ) => same_place(ab, bb) && ai.kind == bi.kind,
        _ => false,
    }
}

/// Collect every identifier occurrence (with span start) in a statement tree.
fn collect_idents(s: &Stmt, out: &mut Vec<(String, u32)>) {
    visit_stmt_exprs(s, &mut |e| {
        if let ExprKind::Ident(name) = &e.kind {
            out.push((name.clone(), e.span.start));
        }
    });
}

fn visit_stmt_exprs(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    match &s.kind {
        StmtKind::Decl(d) => {
            for dim in &d.array_dims {
                visit_expr(dim, f);
            }
            match &d.init {
                Some(minihpc_lang::ast::Init::Expr(e)) => visit_expr(e, f),
                Some(minihpc_lang::ast::Init::List(es))
                | Some(minihpc_lang::ast::Init::Ctor(es)) => {
                    for e in es {
                        visit_expr(e, f);
                    }
                }
                None => {}
            }
        }
        StmtKind::Expr(e) => visit_expr(e, f),
        StmtKind::If { cond, then, els } => {
            visit_expr(cond, f);
            visit_stmt_exprs(then, f);
            if let Some(e) = els {
                visit_stmt_exprs(e, f);
            }
        }
        StmtKind::While { cond, body } => {
            visit_expr(cond, f);
            visit_stmt_exprs(body, f);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                visit_stmt_exprs(i, f);
            }
            if let Some(c) = cond {
                visit_expr(c, f);
            }
            if let Some(st) = step {
                visit_expr(st, f);
            }
            visit_stmt_exprs(body, f);
        }
        StmtKind::Return(Some(e)) => visit_expr(e, f),
        StmtKind::Block(b) => {
            for s in &b.stmts {
                visit_stmt_exprs(s, f);
            }
        }
        StmtKind::Omp { body, .. } => {
            if let Some(b) = body {
                visit_stmt_exprs(b, f);
            }
        }
        StmtKind::Return(None)
        | StmtKind::Break
        | StmtKind::Continue
        | StmtKind::RawPragma(_)
        | StmtKind::Empty => {}
    }
}

fn visit_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match &e.kind {
        ExprKind::Unary { expr, .. }
        | ExprKind::Cast { expr, .. }
        | ExprKind::SizeOfExpr(expr)
        | ExprKind::Paren(expr) => visit_expr(expr, f),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            visit_expr(lhs, f);
            visit_expr(rhs, f);
        }
        ExprKind::Ternary { cond, then, els } => {
            visit_expr(cond, f);
            visit_expr(then, f);
            visit_expr(els, f);
        }
        ExprKind::Call { callee, args } => {
            visit_expr(callee, f);
            for a in args {
                visit_expr(a, f);
            }
        }
        ExprKind::KernelLaunch {
            grid, block, args, ..
        } => {
            visit_expr(grid, f);
            visit_expr(block, f);
            for a in args {
                visit_expr(a, f);
            }
        }
        ExprKind::Index { base, index } => {
            visit_expr(base, f);
            visit_expr(index, f);
        }
        ExprKind::Member { base, .. } => visit_expr(base, f),
        ExprKind::Lambda { body, .. } => {
            for s in &body.stmts {
                visit_stmt_exprs(s, f);
            }
        }
        ExprKind::IntLit(_)
        | ExprKind::FloatLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::CharLit(_)
        | ExprKind::BoolLit(_)
        | ExprKind::Ident(_)
        | ExprKind::Path(_)
        | ExprKind::SizeOfType(_) => {}
    }
}

// ---------------------------------------------------------------------------
// Parallel-region analysis
// ---------------------------------------------------------------------------

/// How a scalar write updates its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteKind {
    /// `v = e` with `e` not referencing `v`.
    Plain,
    /// `v op= e`, `v = v op e`, `v++` — a reduction-shaped self-update.
    SelfUpdate,
}

#[derive(Debug)]
struct ScalarWrite {
    name: String,
    kind: WriteKind,
    span_start: u32,
}

#[derive(Debug)]
struct ArrayAccess {
    base: String,
    index: Expr,
    span_start: u32,
}

struct RegionAnalyzer<'f, 'a> {
    cx: &'f mut FnAnalyzer<'a>,
    directive: OmpDirective,
    loop_indices: HashSet<String>,
    private: HashSet<String>,
    reduction: HashSet<String>,
    /// Names declared inside the region body (thread-private storage).
    declared: HashSet<String>,
    scalar_writes: Vec<ScalarWrite>,
    array_writes: Vec<ArrayAccess>,
    array_reads: Vec<ArrayAccess>,
    /// Depth of enclosing `atomic`/`critical` protection while walking.
    protected: u32,
    /// Depth of enclosing `critical`/`master` (for barrier placement).
    serial_section: u32,
}

impl<'f, 'a> RegionAnalyzer<'f, 'a> {
    fn analyze(cx: &'f mut FnAnalyzer<'a>, d: &OmpDirective, body: &Stmt) {
        let mut private = HashSet::new();
        let mut reduction = HashSet::new();
        for clause in &d.clauses {
            match clause {
                OmpClause::Private(vars) | OmpClause::FirstPrivate(vars) => {
                    private.extend(vars.iter().cloned());
                }
                OmpClause::Reduction { vars, .. } => {
                    reduction.extend(vars.iter().cloned());
                }
                _ => {}
            }
        }

        let mut this = RegionAnalyzer {
            cx,
            directive: d.clone(),
            loop_indices: HashSet::new(),
            private,
            reduction,
            declared: HashSet::new(),
            scalar_writes: Vec::new(),
            array_writes: Vec::new(),
            array_reads: Vec::new(),
            protected: 0,
            serial_section: 0,
        };
        this.collect_loop_indices(body);

        if d.targets_device() {
            this.cx.check_map_arity(d);
            this.cx.check_missing_maps(d, body);
        }

        this.walk(body, /* in_loop_body: */ d.is_loop_directive());
        this.emit();
    }

    /// Loop-index variables of the canonical nest, up to `collapse` depth.
    fn collect_loop_indices(&mut self, body: &Stmt) {
        let depth = self.directive.collapse().max(1) as usize;
        let mut current = body;
        for _ in 0..depth {
            let StmtKind::For { init, body, .. } = &current.kind else {
                return;
            };
            match init.as_deref().map(|s| &s.kind) {
                Some(StmtKind::Decl(d)) => {
                    self.loop_indices.insert(d.name.clone());
                }
                Some(StmtKind::Expr(e)) => {
                    if let ExprKind::Assign { lhs, .. } = &e.kind {
                        if let ExprKind::Ident(n) = &lhs.kind {
                            self.loop_indices.insert(n.clone());
                        }
                    }
                }
                _ => return,
            }
            current = match &body.kind {
                StmtKind::Block(b) if b.stmts.len() == 1 => &b.stmts[0],
                _ => body,
            };
        }
    }

    fn walk(&mut self, s: &Stmt, in_loop_body: bool) {
        match &s.kind {
            StmtKind::Decl(d) => {
                self.declared.insert(d.name.clone());
                match &d.init {
                    Some(minihpc_lang::ast::Init::Expr(e)) => self.collect_reads(e),
                    Some(minihpc_lang::ast::Init::List(es))
                    | Some(minihpc_lang::ast::Init::Ctor(es)) => {
                        for e in es {
                            self.collect_reads(e);
                        }
                    }
                    None => {}
                }
            }
            StmtKind::Expr(e) => self.walk_expr(e),
            StmtKind::If { cond, then, els } => {
                self.collect_reads(cond);
                self.walk(then, in_loop_body);
                if let Some(e) = els {
                    self.walk(e, in_loop_body);
                }
            }
            StmtKind::While { cond, body } => {
                self.collect_reads(cond);
                self.walk(body, in_loop_body);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    // A nested sequential loop's index is thread-private.
                    if let StmtKind::Decl(d) = &i.kind {
                        self.declared.insert(d.name.clone());
                    }
                    self.walk(i, in_loop_body);
                }
                if let Some(c) = cond {
                    self.collect_reads(c);
                }
                if let Some(st) = step {
                    self.walk_expr(st);
                }
                self.walk(body, in_loop_body);
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    self.collect_reads(e);
                }
            }
            StmtKind::Block(b) => {
                for s in &b.stmts {
                    self.walk(s, in_loop_body);
                }
            }
            StmtKind::Omp { directive, body } => {
                self.walk_nested_omp(directive, body.as_deref(), in_loop_body);
            }
            StmtKind::Break | StmtKind::Continue | StmtKind::RawPragma(_) | StmtKind::Empty => {}
        }
    }

    fn walk_nested_omp(&mut self, d: &OmpDirective, body: Option<&Stmt>, in_loop_body: bool) {
        if d.has(OmpConstruct::Barrier) {
            if in_loop_body || self.serial_section > 0 {
                let place = if self.serial_section > 0 {
                    "a critical/master section"
                } else {
                    "a worksharing loop body"
                };
                self.cx.report(
                    Rule::BarrierMisuse,
                    "<barrier>",
                    d.span.start,
                    format!("barrier inside {place}"),
                );
            }
            return;
        }
        let Some(body) = body else { return };
        if d.has(OmpConstruct::Atomic) {
            self.cx.check_atomic(d, body);
            self.protected += 1;
            self.walk(body, in_loop_body);
            self.protected -= 1;
            return;
        }
        if d.has(OmpConstruct::Critical) {
            self.protected += 1;
            self.serial_section += 1;
            self.walk(body, in_loop_body);
            self.serial_section -= 1;
            self.protected -= 1;
            return;
        }
        if d.has(OmpConstruct::Master) || d.has(OmpConstruct::Single) {
            self.serial_section += 1;
            self.walk(body, in_loop_body);
            self.serial_section -= 1;
            return;
        }
        // A nested worksharing/loop directive: fold its clause privatisation
        // and its loop indices into this region's sets and keep walking — a
        // conservative merge that avoids double-reporting.
        for clause in &d.clauses {
            match clause {
                OmpClause::Private(vars) | OmpClause::FirstPrivate(vars) => {
                    self.declared.extend(vars.iter().cloned());
                }
                OmpClause::Reduction { vars, .. } => {
                    self.reduction.extend(vars.iter().cloned());
                }
                _ => {}
            }
        }
        if d.is_loop_directive() {
            if let StmtKind::For {
                init: Some(init), ..
            } = &body.kind
            {
                if let StmtKind::Decl(decl) = &init.kind {
                    self.loop_indices.insert(decl.name.clone());
                }
            }
        }
        self.walk(body, in_loop_body || d.is_loop_directive());
    }

    /// Walk an expression statement, classifying writes and reads.
    fn walk_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Assign { op, lhs, rhs } => {
                self.collect_reads(rhs);
                self.record_write(lhs, op.is_some(), Some(rhs), e.span.start);
            }
            ExprKind::Unary {
                op: UnaryOp::PreInc | UnaryOp::PreDec | UnaryOp::PostInc | UnaryOp::PostDec,
                expr,
            } => {
                self.record_write(expr, true, None, e.span.start);
            }
            ExprKind::Paren(inner) => self.walk_expr(inner),
            _ => self.collect_reads(e),
        }
    }

    fn record_write(&mut self, lhs: &Expr, compound: bool, rhs: Option<&Expr>, span_start: u32) {
        if self.protected > 0 || self.serial_section > 0 {
            // Atomic/critical-protected and single/master writes do not
            // conflict (master/single still read-shares; good enough here).
            if let Some(r) = rhs {
                self.collect_reads(r);
            }
            return;
        }
        match &lhs.kind {
            ExprKind::Ident(name) => {
                let kind = if compound || rhs.is_some_and(|r| expr_references(r, name)) {
                    WriteKind::SelfUpdate
                } else {
                    WriteKind::Plain
                };
                self.scalar_writes.push(ScalarWrite {
                    name: name.clone(),
                    kind,
                    span_start,
                });
            }
            ExprKind::Index { base, index } => {
                self.collect_reads(index);
                if let Some(root) = index_root(base) {
                    self.array_writes.push(ArrayAccess {
                        base: root.to_string(),
                        index: (**index).clone(),
                        span_start,
                    });
                }
            }
            ExprKind::Unary {
                op: UnaryOp::Deref,
                expr,
            } => {
                // `*p = e`: a fixed location, same as indexing with a
                // loop-invariant index.
                if let ExprKind::Ident(name) = &expr.kind {
                    self.array_writes.push(ArrayAccess {
                        base: name.clone(),
                        index: Expr::int(0),
                        span_start,
                    });
                }
            }
            ExprKind::Member { base, .. } => {
                if let Some(root) = index_root(base) {
                    self.scalar_writes.push(ScalarWrite {
                        name: root.to_string(),
                        kind: if compound {
                            WriteKind::SelfUpdate
                        } else {
                            WriteKind::Plain
                        },
                        span_start,
                    });
                }
            }
            ExprKind::Paren(inner) => self.record_write(inner, compound, rhs, span_start),
            _ => {}
        }
    }

    /// Record array reads appearing anywhere in an expression.
    fn collect_reads(&mut self, e: &Expr) {
        visit_expr(e, &mut |sub| {
            if let ExprKind::Index { base, index } = &sub.kind {
                if let Some(root) = index_root(base) {
                    self.array_reads.push(ArrayAccess {
                        base: root.to_string(),
                        index: (**index).clone(),
                        span_start: sub.span.start,
                    });
                }
            }
        });
    }

    fn is_thread_private(&self, name: &str) -> bool {
        self.loop_indices.contains(name)
            || self.private.contains(name)
            || self.declared.contains(name)
    }

    fn emit(mut self) {
        let has_parallel_semantics = self.directive.has(OmpConstruct::Parallel)
            || self.directive.has(OmpConstruct::Teams)
            || self.directive.has(OmpConstruct::For)
            || self.directive.has(OmpConstruct::Distribute);
        if !has_parallel_semantics {
            return;
        }

        // Scalar writes: raw reductions take precedence over plain
        // conflicting writes so the fix suggestion is actionable.
        let scalar_writes = std::mem::take(&mut self.scalar_writes);
        let mut reported: HashSet<(String, u8)> = HashSet::new();
        for w in scalar_writes {
            if self.is_thread_private(&w.name) || self.reduction.contains(&w.name) {
                continue;
            }
            let (rule, message) = match w.kind {
                WriteKind::SelfUpdate => (
                    Rule::RawReduction,
                    format!(
                        "shared variable '{}' is updated as a raw reduction without a \
                         reduction clause",
                        w.name
                    ),
                ),
                WriteKind::Plain => (
                    Rule::SharedWriteConflict,
                    format!(
                        "shared variable '{}' is written by every iteration without \
                         privatization or atomics",
                        w.name
                    ),
                ),
            };
            if reported.insert((w.name.clone(), rule.code())) {
                self.cx.report(rule, &w.name, w.span_start, message);
            }
        }

        // Array writes: conflicting when the index does not involve any
        // parallel loop index; loop-carried when written at `i` and read at
        // `i +/- c`.
        let array_writes = std::mem::take(&mut self.array_writes);
        let array_reads = std::mem::take(&mut self.array_reads);
        for w in &array_writes {
            if self.is_thread_private(&w.base) {
                continue;
            }
            let uses_index = self
                .loop_indices
                .iter()
                .any(|ix| expr_references(&w.index, ix));
            if !uses_index {
                if reported.insert((w.base.clone(), Rule::SharedWriteConflict.code())) {
                    self.cx.report(
                        Rule::SharedWriteConflict,
                        &w.base,
                        w.span_start,
                        format!(
                            "array '{}' is written at an index that does not depend on \
                             the parallel loop index",
                            w.base
                        ),
                    );
                }
                continue;
            }
            // Loop-carried: write exactly at `i`, read at `i +/- c` (c != 0).
            let Some(write_ix) = plain_index_var(&w.index) else {
                continue;
            };
            if !self.loop_indices.contains(write_ix) {
                continue;
            }
            for r in &array_reads {
                if r.base != w.base {
                    continue;
                }
                if let Some(offset) = shifted_index_offset(&r.index, write_ix) {
                    if offset != 0
                        && reported.insert((w.base.clone(), Rule::LoopCarriedDependency.code()))
                    {
                        self.cx.report(
                            Rule::LoopCarriedDependency,
                            &w.base,
                            w.span_start,
                            format!(
                                "array '{}' is written at {write_ix} and read at \
                                 {write_ix}{offset:+}: loop-carried dependency across \
                                 parallel iterations",
                                w.base
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// The root identifier of a (possibly nested) indexing base.
fn index_root(base: &Expr) -> Option<&str> {
    match &base.kind {
        ExprKind::Ident(name) => Some(name),
        ExprKind::Index { base, .. } | ExprKind::Paren(base) => index_root(base),
        ExprKind::Member { base, .. } => index_root(base),
        ExprKind::Unary {
            op: UnaryOp::Deref,
            expr,
        } => index_root(expr),
        _ => None,
    }
}

/// Does `e` reference identifier `name` anywhere?
fn expr_references(e: &Expr, name: &str) -> bool {
    let mut found = false;
    visit_expr(e, &mut |sub| {
        if matches!(&sub.kind, ExprKind::Ident(n) if n == name) {
            found = true;
        }
    });
    found
}

/// `Some(var)` when the index expression is exactly a bare identifier.
fn plain_index_var(e: &Expr) -> Option<&str> {
    match &e.kind {
        ExprKind::Ident(n) => Some(n),
        ExprKind::Paren(inner) => plain_index_var(inner),
        _ => None,
    }
}

/// `Some(c)` when the expression is `var + c`, `c + var`, or `var - c`.
fn shifted_index_offset(e: &Expr, var: &str) -> Option<i64> {
    use minihpc_lang::ast::BinOp;
    match &e.kind {
        ExprKind::Paren(inner) => shifted_index_offset(inner, var),
        ExprKind::Ident(n) if n == var => Some(0),
        ExprKind::Binary { op, lhs, rhs } => {
            let (ident, lit, negate) = match (&lhs.kind, &rhs.kind, op) {
                (ExprKind::Ident(n), ExprKind::IntLit(c), BinOp::Add) => (n, *c, false),
                (ExprKind::IntLit(c), ExprKind::Ident(n), BinOp::Add) => (n, *c, false),
                (ExprKind::Ident(n), ExprKind::IntLit(c), BinOp::Sub) => (n, *c, true),
                _ => return None,
            };
            if ident == var {
                Some(if negate { -lit } else { lit })
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_src(src: &str) -> Vec<AnalysisFinding> {
        let repo = SourceRepo::new().with_file("src/main.cpp", src);
        analyze_repo(&repo)
    }

    fn rules(findings: &[AnalysisFinding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn raw_reduction_without_clause_is_flagged() {
        let f = analyze_src(
            "int main() {\n\
             double sum = 0.0;\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 100; i++) {\n\
             sum += i;\n\
             }\n\
             return 0;\n\
             }\n",
        );
        assert_eq!(rules(&f), vec![Rule::RawReduction], "{f:#?}");
        assert_eq!(f[0].variable, "sum");
        assert_eq!(f[0].line, Some(5));
        assert!(f[0].is_error());
    }

    #[test]
    fn reduction_clause_suppresses_raw_reduction() {
        let f = analyze_src(
            "int main() {\n\
             double sum = 0.0;\n\
             #pragma omp parallel for reduction(+: sum)\n\
             for (int i = 0; i < 100; i++) {\n\
             sum += i;\n\
             }\n\
             return 0;\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn plain_shared_scalar_write_conflicts() {
        let f = analyze_src(
            "int main() {\n\
             int last = 0;\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 100; i++) {\n\
             last = i;\n\
             }\n\
             return last;\n\
             }\n",
        );
        assert_eq!(rules(&f), vec![Rule::SharedWriteConflict], "{f:#?}");
    }

    #[test]
    fn region_locals_and_loop_index_are_private() {
        let f = analyze_src(
            "void k(int* out) {\n\
             #pragma omp parallel for collapse(2)\n\
             for (int i = 0; i < 8; i++) {\n\
             for (int j = 0; j < 8; j++) {\n\
             int count = 0;\n\
             count += i + j;\n\
             out[i * 8 + j] = count;\n\
             }\n\
             }\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn private_clause_respected() {
        let f = analyze_src(
            "int main() {\n\
             int tmp = 0;\n\
             #pragma omp parallel for private(tmp)\n\
             for (int i = 0; i < 8; i++) {\n\
             tmp = i;\n\
             }\n\
             return 0;\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn array_write_not_using_loop_index_conflicts() {
        let f = analyze_src(
            "void k(double* out) {\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 100; i++) {\n\
             out[0] = i;\n\
             }\n\
             }\n",
        );
        assert_eq!(rules(&f), vec![Rule::SharedWriteConflict], "{f:#?}");
        assert_eq!(f[0].variable, "out");
    }

    #[test]
    fn loop_carried_dependency_is_warned() {
        let f = analyze_src(
            "void k(double* a) {\n\
             #pragma omp parallel for\n\
             for (int i = 1; i < 100; i++) {\n\
             a[i] = a[i - 1] + 1.0;\n\
             }\n\
             }\n",
        );
        assert_eq!(rules(&f), vec![Rule::LoopCarriedDependency], "{f:#?}");
        assert!(!f[0].is_error());
    }

    #[test]
    fn atomic_protects_shared_update_and_misuse_is_flagged() {
        let clean = analyze_src(
            "int main() {\n\
             int n = 0;\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 8; i++) {\n\
             #pragma omp atomic\n\
             n += 1;\n\
             }\n\
             return n;\n\
             }\n",
        );
        assert!(clean.is_empty(), "{clean:#?}");

        let misuse = analyze_src(
            "int main() {\n\
             int n = 0;\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 8; i++) {\n\
             #pragma omp atomic\n\
             { n += 1; n += 2; }\n\
             }\n\
             return n;\n\
             }\n",
        );
        assert!(rules(&misuse).contains(&Rule::AtomicMisuse), "{misuse:#?}");
    }

    #[test]
    fn critical_protects_shared_update() {
        let f = analyze_src(
            "int main() {\n\
             int n = 0;\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 8; i++) {\n\
             #pragma omp critical\n\
             { n += 1; }\n\
             }\n\
             return n;\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn barrier_in_worksharing_loop_is_flagged() {
        let f = analyze_src(
            "void k(double* a) {\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 8; i++) {\n\
             a[i] = 0.0;\n\
             #pragma omp barrier\n\
             }\n\
             }\n",
        );
        assert_eq!(rules(&f), vec![Rule::BarrierMisuse], "{f:#?}");
    }

    #[test]
    fn missing_map_on_target_region_is_warned() {
        let f = analyze_src(
            "void k(double* a, double* b) {\n\
             #pragma omp target teams distribute parallel for map(tofrom: a)\n\
             for (int i = 0; i < 8; i++) {\n\
             a[i] = b[i];\n\
             }\n\
             }\n",
        );
        assert_eq!(rules(&f), vec![Rule::MissingMap], "{f:#?}");
        assert_eq!(f[0].variable, "b");
    }

    #[test]
    fn enclosing_target_data_satisfies_map() {
        let f = analyze_src(
            "void k(double* a, double* b) {\n\
             #pragma omp target data map(to: b) map(tofrom: a)\n\
             {\n\
             #pragma omp target teams distribute parallel for\n\
             for (int i = 0; i < 8; i++) {\n\
             a[i] = b[i];\n\
             }\n\
             }\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn map_arity_mismatch_is_flagged() {
        let f = analyze_src(
            "void k(double* a) {\n\
             #pragma omp target teams distribute parallel for map(tofrom: a[0:4][0:4])\n\
             for (int i = 0; i < 4; i++) {\n\
             a[i] = 1.0;\n\
             }\n\
             }\n",
        );
        assert!(rules(&f).contains(&Rule::MapArity), "{f:#?}");
    }

    #[test]
    fn oracle_offload_shape_is_clean() {
        // The shape the oracle transpiler emits: full construct chain,
        // collapse, reduction, and maps for every referenced pointer.
        let f = analyze_src(
            "double lookup(double* g, int i);\n\
             double run(double* grid, int n) {\n\
             double verification = 0.0;\n\
             #pragma omp target teams distribute parallel for \
             reduction(+: verification) map(to: grid) map(tofrom: verification)\n\
             for (int i = 0; i < n; i++) {\n\
             verification += lookup(grid, i);\n\
             }\n\
             return verification;\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn unparseable_files_are_skipped() {
        let repo = SourceRepo::new()
            .with_file("src/bad.cpp", "int main( {{{ this is not minihpc")
            .with_file("src/ok.cpp", "int main() { return 0; }\n");
        assert!(analyze_repo(&repo).is_empty());
    }

    #[test]
    fn findings_are_deterministic_and_sorted() {
        let src = "int main() {\n\
                   int a = 0; int b = 0;\n\
                   #pragma omp parallel for\n\
                   for (int i = 0; i < 8; i++) {\n\
                   b += 1;\n\
                   a += 1;\n\
                   }\n\
                   return a + b;\n\
                   }\n";
        let f1 = analyze_src(src);
        let f2 = analyze_src(src);
        assert_eq!(f1, f2);
        assert_eq!(f1.len(), 2);
        let vars: Vec<_> = f1.iter().map(|f| f.variable.as_str()).collect();
        assert_eq!(vars, vec!["b", "a"], "sorted by line, not name");
    }

    #[test]
    fn rule_codes_roundtrip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_code(r.code()), Some(r));
        }
        assert_eq!(Rule::from_code(200), None);
    }

    #[test]
    fn diagnostic_conversion_and_render() {
        let f = analyze_src(
            "int main() {\n\
             double s = 0.0;\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < 4; i++) { s += i; }\n\
             return 0;\n\
             }\n",
        );
        assert_eq!(f.len(), 1);
        let d = f[0].diagnostic();
        assert_eq!(d.category, ErrorCategory::OmpInvalidDirective);
        assert!(d.is_error());
        assert!(d.message.contains("[raw-reduction]"));
        let rendered = render_findings(&f);
        assert!(rendered.contains("src/main.cpp:4"), "{rendered}");
        assert_eq!(render_findings(&[]), "analyze: clean (no findings)\n");
    }
}
