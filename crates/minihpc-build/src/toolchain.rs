//! The compiler/toolchain model: which compilers exist, which flags they
//! accept, and how flags map to language features.
//!
//! This mirrors the paper's evaluation environment (Sec. 7.2): CUDA 12.3
//! `nvcc`, LLVM 19 `clang++` for OpenMP offload, GCC 11 `g++` for host
//! OpenMP and Kokkos (via CMake). Incorrect offload flags are one of the
//! dominant failure modes the paper reports ("Invalid Compiler Flag").

use crate::diag::{Diagnostic, ErrorCategory};
use std::fmt;

/// Known compiler front ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompilerKind {
    /// NVIDIA `nvcc` — enables CUDA constructs.
    Nvcc,
    /// LLVM `clang`/`clang++` — supports `-fopenmp` and offload targets.
    Clang,
    /// GNU `gcc`/`g++` — supports host `-fopenmp`; offload flags rejected
    /// (matching the paper's toolchain where offload builds use LLVM).
    Gcc,
}

impl CompilerKind {
    /// Resolve a command name (`nvcc`, `clang++-19`, `g++`, ...).
    pub fn from_command(cmd: &str) -> Option<CompilerKind> {
        let base = cmd.rsplit('/').next().unwrap_or(cmd);
        // Accept versioned names like `clang++-19`.
        let base = base.split('-').next().unwrap_or(base);
        match base {
            "nvcc" => Some(CompilerKind::Nvcc),
            "clang" | "clang++" => Some(CompilerKind::Clang),
            "gcc" | "g++" | "cc" | "c++" => Some(CompilerKind::Gcc),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            CompilerKind::Nvcc => "nvcc",
            CompilerKind::Clang => "clang++",
            CompilerKind::Gcc => "g++",
        }
    }
}

impl fmt::Display for CompilerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The GPU architecture of the evaluation machine (A100 → `sm_80` /
/// `nvptx64-nvidia-cuda`).
pub const GPU_ARCH_SM: &str = "sm_80";
pub const OFFLOAD_TRIPLE: &str = "nvptx64-nvidia-cuda";
/// Offload arch values clang accepts for the triple above.
const VALID_OFFLOAD_ARCHS: [&str; 3] = ["nvptx64-nvidia-cuda", "nvptx64", "sm_80"];

/// Language/library features enabled for a translation unit by the compiler
/// and flags. Semantic analysis keys off this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileFeatures {
    /// CUDA constructs (`__global__`, `<<<>>>`, `cuda*` API).
    pub cuda: bool,
    /// OpenMP pragmas are honoured (otherwise ignored with a warning).
    pub openmp: bool,
    /// OpenMP target offload is configured (device execution possible).
    pub offload: bool,
    /// Kokkos headers/library available (CMake `find_package(Kokkos)`).
    pub kokkos: bool,
    /// cuRAND device library available.
    pub curand: bool,
    /// Math library linked (`-lm`; implied by nvcc).
    pub libm: bool,
}

/// A parsed compiler command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    pub compiler: CompilerKind,
    pub inputs: Vec<String>,
    pub output: Option<String>,
    /// `-c`: compile only, do not link.
    pub compile_only: bool,
    pub features: CompileFeatures,
    pub include_dirs: Vec<String>,
    /// Libraries requested with `-l`.
    pub libs: Vec<String>,
    pub opt_level: u8,
}

/// Parse a compiler command line (already split into words, `$(VAR)`s
/// expanded). Returns the invocation or a diagnostic — unknown flags are the
/// paper's "Invalid Compiler Flag" category.
pub fn parse_invocation(words: &[String], origin: &str) -> Result<Invocation, Diagnostic> {
    if words.is_empty() {
        return Err(Diagnostic::error(
            ErrorCategory::BuildFileSyntax,
            origin,
            "empty command",
        ));
    }
    let compiler = CompilerKind::from_command(&words[0]).ok_or_else(|| {
        Diagnostic::error(
            ErrorCategory::BuildFileSyntax,
            origin,
            format!("command not found: {}", words[0]),
        )
    })?;

    let mut inv = Invocation {
        compiler,
        inputs: vec![],
        output: None,
        compile_only: false,
        features: CompileFeatures {
            cuda: compiler == CompilerKind::Nvcc,
            libm: compiler == CompilerKind::Nvcc,
            ..CompileFeatures::default()
        },
        include_dirs: vec![],
        libs: vec![],
        opt_level: 0,
    };
    // `-fopenmp-targets` requires `-fopenmp`; validated after the loop.
    let mut saw_offload_targets: Option<String> = None;
    let mut saw_openmp = false;

    let mut i = 1;
    while i < words.len() {
        let w = words[i].as_str();
        match w {
            "-o" => {
                i += 1;
                let out = words.get(i).ok_or_else(|| {
                    Diagnostic::error(
                        ErrorCategory::InvalidCompilerFlag,
                        origin,
                        "missing filename after `-o`",
                    )
                })?;
                inv.output = Some(out.clone());
            }
            "-c" => inv.compile_only = true,
            "-g" | "-Wall" | "-Wextra" | "-w" | "-fPIC" => {}
            "-fopenmp" | "-qopenmp" | "-openmp" => {
                saw_openmp = true;
                inv.features.openmp = true;
            }
            "-lm" => inv.features.libm = true,
            _ if w.starts_with("-O") => {
                let lvl = &w[2..];
                inv.opt_level = match lvl {
                    "0" => 0,
                    "1" => 1,
                    "2" => 2,
                    "3" | "fast" => 3,
                    _ => {
                        return Err(Diagnostic::error(
                            ErrorCategory::InvalidCompilerFlag,
                            origin,
                            format!("unknown optimization level `{w}`"),
                        ))
                    }
                };
            }
            _ if w.starts_with("-I") => {
                let dir = if w.len() > 2 {
                    w[2..].to_string()
                } else {
                    i += 1;
                    words
                        .get(i)
                        .ok_or_else(|| {
                            Diagnostic::error(
                                ErrorCategory::InvalidCompilerFlag,
                                origin,
                                "missing directory after `-I`",
                            )
                        })?
                        .clone()
                };
                inv.include_dirs.push(dir);
            }
            _ if w.starts_with("-l") => {
                let lib = w[2..].to_string();
                match lib.as_str() {
                    "m" => inv.features.libm = true,
                    "curand" | "cudart" | "gomp" | "omp" | "pthread" => {
                        if lib == "curand" {
                            inv.features.curand = true;
                        }
                        inv.libs.push(lib);
                    }
                    _ => {
                        return Err(Diagnostic::error(
                            ErrorCategory::LinkerError,
                            origin,
                            format!("cannot find -l{lib}"),
                        ))
                    }
                }
            }
            _ if w.starts_with("-std=") => {
                let std = &w[5..];
                if !matches!(
                    std,
                    "c99" | "c11" | "c17" | "c++11" | "c++14" | "c++17" | "c++20"
                ) {
                    return Err(Diagnostic::error(
                        ErrorCategory::InvalidCompilerFlag,
                        origin,
                        format!("invalid value `{std}` in `{w}`"),
                    ));
                }
            }
            _ if w.starts_with("-fopenmp-targets=") => {
                saw_offload_targets = Some(w["-fopenmp-targets=".len()..].to_string());
            }
            _ if w.starts_with("--offload-arch=") => {
                saw_offload_targets = Some(w["--offload-arch=".len()..].to_string());
            }
            _ if w.starts_with("-arch=") => {
                // nvcc GPU architecture.
                let arch = &w[6..];
                if inv.compiler != CompilerKind::Nvcc {
                    return Err(Diagnostic::error(
                        ErrorCategory::InvalidCompilerFlag,
                        origin,
                        format!("unknown argument: `{w}`"),
                    ));
                }
                if !arch.starts_with("sm_") {
                    return Err(Diagnostic::error(
                        ErrorCategory::InvalidCompilerFlag,
                        origin,
                        format!("nvcc fatal: unsupported gpu architecture '{arch}'"),
                    ));
                }
            }
            _ if w.starts_with("-D") => {
                // Preprocessor defines accepted and ignored (our apps take
                // problem sizes on the command line, not -D).
            }
            _ if w.starts_with('-') => {
                return Err(Diagnostic::error(
                    ErrorCategory::InvalidCompilerFlag,
                    origin,
                    format!("unknown argument: `{w}`"),
                ));
            }
            _ => inv.inputs.push(w.to_string()),
        }
        i += 1;
    }

    // Offload configuration rules (mirrors clang/gcc behaviour).
    if let Some(arch) = saw_offload_targets {
        if inv.compiler == CompilerKind::Gcc {
            return Err(Diagnostic::error(
                ErrorCategory::InvalidCompilerFlag,
                origin,
                "g++: error: unrecognized command-line option '-fopenmp-targets=...'; \
                 OpenMP offload builds require clang++ (LLVM 19)",
            ));
        }
        if !saw_openmp && inv.compiler == CompilerKind::Clang {
            return Err(Diagnostic::error(
                ErrorCategory::InvalidCompilerFlag,
                origin,
                "'-fopenmp-targets' must be used in conjunction with a '-fopenmp' option",
            ));
        }
        if !VALID_OFFLOAD_ARCHS.contains(&arch.as_str()) {
            return Err(Diagnostic::error(
                ErrorCategory::InvalidCompilerFlag,
                origin,
                format!("invalid target triple '{arch}' in '-fopenmp-targets={arch}'"),
            ));
        }
        inv.features.offload = true;
    }
    // nvcc implies the CUDA runtime; OpenMP offload from nvcc is not modelled.
    if inv.compiler == CompilerKind::Nvcc {
        inv.features.curand = true;
    }

    if inv.inputs.is_empty() {
        return Err(Diagnostic::error(
            ErrorCategory::InvalidCompilerFlag,
            origin,
            "no input files",
        ));
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_nvcc_line() {
        let inv = parse_invocation(
            &words("nvcc -O2 -arch=sm_80 -o app src/main.cu"),
            "Makefile",
        )
        .unwrap();
        assert_eq!(inv.compiler, CompilerKind::Nvcc);
        assert!(inv.features.cuda);
        assert!(inv.features.curand, "nvcc bundles the CUDA toolkit libs");
        assert_eq!(inv.output.as_deref(), Some("app"));
        assert_eq!(inv.inputs, vec!["src/main.cu"]);
        assert_eq!(inv.opt_level, 2);
    }

    #[test]
    fn parse_clang_offload_line() {
        let inv = parse_invocation(
            &words("clang++ -O3 -fopenmp -fopenmp-targets=nvptx64-nvidia-cuda -o app main.cpp"),
            "Makefile",
        )
        .unwrap();
        assert!(inv.features.openmp);
        assert!(inv.features.offload);
        assert!(!inv.features.cuda);
    }

    #[test]
    fn offload_without_openmp_rejected() {
        let err = parse_invocation(
            &words("clang++ -fopenmp-targets=nvptx64-nvidia-cuda -o app main.cpp"),
            "Makefile",
        )
        .unwrap_err();
        assert_eq!(err.category, ErrorCategory::InvalidCompilerFlag);
        assert!(err.message.contains("-fopenmp"));
    }

    #[test]
    fn gcc_rejects_offload_targets() {
        let err = parse_invocation(
            &words("g++ -fopenmp -fopenmp-targets=nvptx64-nvidia-cuda main.cpp"),
            "Makefile",
        )
        .unwrap_err();
        assert_eq!(err.category, ErrorCategory::InvalidCompilerFlag);
    }

    #[test]
    fn bad_offload_arch_rejected() {
        let err = parse_invocation(
            &words("clang++ -fopenmp -fopenmp-targets=amdgcn main.cpp"),
            "Makefile",
        )
        .unwrap_err();
        assert_eq!(err.category, ErrorCategory::InvalidCompilerFlag);
        assert!(err.message.contains("amdgcn"));
    }

    #[test]
    fn unknown_flag_rejected() {
        let err = parse_invocation(
            &words("clang++ -fopenmp-offload=nvptx main.cpp"),
            "Makefile",
        )
        .unwrap_err();
        assert_eq!(err.category, ErrorCategory::InvalidCompilerFlag);
    }

    #[test]
    fn unknown_command_is_build_file_error() {
        let err = parse_invocation(&words("icc -O2 main.cpp"), "Makefile").unwrap_err();
        assert_eq!(err.category, ErrorCategory::BuildFileSyntax);
        assert!(err.message.contains("command not found"));
    }

    #[test]
    fn unknown_library_is_linker_error() {
        let err = parse_invocation(&words("g++ main.cpp -lkokkoscore"), "Makefile").unwrap_err();
        assert_eq!(err.category, ErrorCategory::LinkerError);
    }

    #[test]
    fn versioned_clang_accepted() {
        let inv = parse_invocation(&words("clang++-19 -fopenmp main.cpp"), "Makefile").unwrap();
        assert_eq!(inv.compiler, CompilerKind::Clang);
    }

    #[test]
    fn compile_only_and_includes() {
        let inv = parse_invocation(
            &words("g++ -c -Isrc -I include main.cpp -o main.o"),
            "Makefile",
        )
        .unwrap();
        assert!(inv.compile_only);
        assert_eq!(inv.include_dirs, vec!["src", "include"]);
    }

    #[test]
    fn missing_output_after_dash_o() {
        let err = parse_invocation(&words("g++ main.cpp -o"), "Makefile").unwrap_err();
        assert_eq!(err.category, ErrorCategory::InvalidCompilerFlag);
    }

    #[test]
    fn no_inputs_rejected() {
        let err = parse_invocation(&words("g++ -O2 -o app"), "Makefile").unwrap_err();
        assert_eq!(err.category, ErrorCategory::InvalidCompilerFlag);
        assert!(err.message.contains("no input files"));
    }

    #[test]
    fn curand_via_explicit_lib() {
        let inv =
            parse_invocation(&words("clang++ -fopenmp main.cpp -lcurand"), "Makefile").unwrap();
        assert!(inv.features.curand);
    }
}
