//! The build driver: interprets the repository's build system, runs each
//! compiler invocation through preprocess → parse → sema, links, and
//! produces a [`BuildOutcome`] whose log is exactly what the paper's error
//! clustering consumes.

use crate::cmake;
use crate::diag::{BuildLog, Diagnostic, ErrorCategory};
use crate::linker;
use crate::makefile;
use crate::object::{Executable, ObjectCode};
use crate::preprocess;
use crate::sema;
use crate::toolchain::{parse_invocation, Invocation};
use crate::unit::{unit_key, CompiledUnit, UnitCache};
use minihpc_lang::parser;
use minihpc_lang::repo::{FileKind, SourceRepo};
use std::collections::BTreeMap;
use std::sync::Arc;

/// What to build.
#[derive(Debug, Clone)]
pub struct BuildRequest {
    /// The executable the harness expects the build to produce (the task's
    /// build-interface contract from the prompt addendum, paper Sec. 3.1).
    pub binary: String,
    /// The make target to invoke (`None` → default/first target).
    pub make_target: Option<String>,
}

impl BuildRequest {
    pub fn new(binary: impl Into<String>) -> Self {
        BuildRequest {
            binary: binary.into(),
            make_target: None,
        }
    }
}

/// Result of a build: the full log plus the executable on success.
#[derive(Debug, Clone)]
pub struct BuildOutcome {
    pub log: BuildLog,
    pub executable: Option<Executable>,
}

impl BuildOutcome {
    pub fn succeeded(&self) -> bool {
        self.executable.is_some()
    }

    pub fn first_error_category(&self) -> Option<ErrorCategory> {
        self.log.first_error_category()
    }
}

/// Build the repository per its build system (Makefile preferred, else
/// CMakeLists.txt), parsing and compiling every unit from scratch.
pub fn build_repo(repo: &SourceRepo, request: &BuildRequest) -> BuildOutcome {
    build_repo_with(repo, request, None)
}

/// [`build_repo`] with an optional per-file compile-unit cache.
///
/// When `cache` is present, each compiler input's include closure is
/// rediscovered (parses memoized through [`UnitCache::parse_file`]) and
/// sema runs only for units whose closure content changed — everything
/// else replays the cached object + diagnostics byte-identically. The
/// link and binary-contract stages always run: they see cross-unit state
/// the per-unit key deliberately excludes.
pub fn build_repo_with(
    repo: &SourceRepo,
    request: &BuildRequest,
    cache: Option<&dyn UnitCache>,
) -> BuildOutcome {
    let mut log = BuildLog::new();
    let Some((build_path, build_text)) = repo.build_file() else {
        log.diagnostic(Diagnostic::error(
            ErrorCategory::MissingFile,
            "(repository)",
            "no Makefile or CMakeLists.txt found in repository",
        ));
        return BuildOutcome {
            log,
            executable: None,
        };
    };
    let build_text = build_text.to_string();

    match FileKind::of(build_path) {
        FileKind::Makefile => build_with_make(repo, &build_text, request, cache, log),
        FileKind::CMakeLists => build_with_cmake(repo, &build_text, request, cache, log),
        _ => unreachable!("build_file returns only build files"),
    }
}

fn build_with_make(
    repo: &SourceRepo,
    text: &str,
    request: &BuildRequest,
    cache: Option<&dyn UnitCache>,
    mut log: BuildLog,
) -> BuildOutcome {
    let target_desc = request.make_target.clone().unwrap_or_default();
    log.note(format!("$ make {target_desc}").trim_end().to_string());
    let mf = match makefile::parse(text) {
        Ok(mf) => mf,
        Err(d) => {
            log.diagnostic(d);
            return BuildOutcome {
                log,
                executable: None,
            };
        }
    };
    let commands = match mf.make(request.make_target.as_deref(), repo) {
        Ok(c) => c,
        Err(d) => {
            log.diagnostic(d);
            return BuildOutcome {
                log,
                executable: None,
            };
        }
    };

    let mut state = ExecState::default();
    for cmd in commands {
        if !cmd.silent {
            log.note(cmd.words.join(" "));
        }
        let word0 = cmd.words[0].as_str();
        match word0 {
            "rm" | "echo" | "mkdir" | "touch" | "true" => continue,
            _ => {}
        }
        let inv = match parse_invocation(&cmd.words, "Makefile") {
            Ok(inv) => inv,
            Err(d) => {
                if cmd.ignore_errors {
                    log.note(format!("make: [Makefile:{}] Error (ignored)", cmd.line));
                    continue;
                }
                log.diagnostic(d);
                log.note(format!("make: *** [Makefile:{}] Error 1", cmd.line));
                return BuildOutcome {
                    log,
                    executable: None,
                };
            }
        };
        if let Err(()) = run_invocation(repo, &inv, cache, &mut state, &mut log) {
            log.note(format!("make: *** [Makefile:{}] Error 1", cmd.line));
            return BuildOutcome {
                log,
                executable: None,
            };
        }
    }
    finish(request, state, log)
}

fn build_with_cmake(
    repo: &SourceRepo,
    text: &str,
    request: &BuildRequest,
    cache: Option<&dyn UnitCache>,
    mut log: BuildLog,
) -> BuildOutcome {
    log.note("$ cmake -B build . && cmake --build build".to_string());
    let cfg = match cmake::configure(text) {
        Ok(cfg) => cfg,
        Err(d) => {
            log.diagnostic(d);
            log.note("-- Configuring incomplete, errors occurred!".to_string());
            return BuildOutcome {
                log,
                executable: None,
            };
        }
    };
    for line in &cfg.log {
        log.note(line.clone());
    }
    let mut state = ExecState::default();
    for (name, inv) in &cfg.invocations {
        log.note(format!("[build] Building CXX executable {name}"));
        if let Err(()) = run_invocation(repo, inv, cache, &mut state, &mut log) {
            log.note(format!(
                "gmake[2]: *** [CMakeFiles/{name}.dir/build.make] Error 1"
            ));
            return BuildOutcome {
                log,
                executable: None,
            };
        }
    }
    finish(request, state, log)
}

/// Virtual filesystem of build products. Objects are `Arc`-shared: a
/// cache-replayed unit and the cache's own copy are the same allocation.
#[derive(Default)]
struct ExecState {
    objects: BTreeMap<String, Arc<ObjectCode>>,
    executables: BTreeMap<String, Executable>,
}

/// Compile one source input to a unit, consulting `cache` when present.
///
/// Assembly always runs — it is what discovers the include closure the
/// unit key hashes — but parses inside it are memoized by the cache, and
/// a key hit skips sema entirely, replaying the stored object and
/// diagnostics. Assembly failures (missing file/header, syntax error) are
/// reported directly and never cached: they are cheap to recompute and
/// have no object to store.
fn compile_input(
    repo: &SourceRepo,
    input: &str,
    inv: &Invocation,
    cache: Option<&dyn UnitCache>,
) -> Result<CompiledUnit, Vec<Diagnostic>> {
    let tu = match cache {
        Some(c) => preprocess::assemble_with(repo, input, &inv.features, &|t| c.parse_file(t))?,
        None => preprocess::assemble_with(repo, input, &inv.features, &parser::parse_file)?,
    };
    let obj_name = object_name_for(input);
    if let Some(c) = cache {
        let key = unit_key(
            input,
            &obj_name,
            &inv.features,
            tu.files
                .iter()
                .map(|p| (p.as_str(), repo.get(p).unwrap_or(""))),
        );
        if let Some(unit) = c.lookup_unit(key) {
            return Ok(unit);
        }
        let result = sema::check(&tu, input, &obj_name, &inv.features);
        let unit = CompiledUnit {
            object: result.object.map(Arc::new),
            diagnostics: result.diagnostics,
        };
        c.store_unit(key, &unit);
        return Ok(unit);
    }
    let result = sema::check(&tu, input, &obj_name, &inv.features);
    Ok(CompiledUnit {
        object: result.object.map(Arc::new),
        diagnostics: result.diagnostics,
    })
}

/// Execute one compiler invocation: compile each input (source files inline,
/// `.o` files looked up) and link unless `-c`.
fn run_invocation(
    repo: &SourceRepo,
    inv: &Invocation,
    cache: Option<&dyn UnitCache>,
    state: &mut ExecState,
    log: &mut BuildLog,
) -> Result<(), ()> {
    let mut objects: Vec<Arc<ObjectCode>> = Vec::new();
    for input in &inv.inputs {
        if input.ends_with(".o") {
            match state.objects.get(input) {
                Some(o) => objects.push(Arc::clone(o)),
                None => {
                    log.diagnostic(Diagnostic::error(
                        ErrorCategory::MissingFile,
                        input,
                        format!("no such file or directory: '{input}'"),
                    ));
                    return Err(());
                }
            }
            continue;
        }
        // `.cu` sources need nvcc.
        if input.ends_with(".cu") && inv.compiler != crate::toolchain::CompilerKind::Nvcc {
            log.diagnostic(Diagnostic::error(
                ErrorCategory::InvalidCompilerFlag,
                input,
                format!(
                    "{}: error: CUDA source file '{input}' requires nvcc",
                    inv.compiler
                ),
            ));
            return Err(());
        }
        let unit = match compile_input(repo, input, inv, cache) {
            Ok(unit) => unit,
            Err(diags) => {
                log.extend_diagnostics(diags);
                return Err(());
            }
        };
        let had_errors = unit.diagnostics.iter().any(Diagnostic::is_error);
        log.extend_diagnostics(unit.diagnostics);
        match unit.object {
            Some(obj) if !had_errors => objects.push(obj),
            _ => return Err(()),
        }
    }

    if inv.compile_only {
        // Register each object under its `-o` name (single input) or its
        // default `<stem>.o` name.
        if let (Some(out), true) = (&inv.output, objects.len() == 1) {
            let obj = objects.pop().unwrap();
            // Rename only when the `-o` name differs from the default;
            // cached units keep their default name, so the clone is rare.
            let obj = if obj.name == *out {
                obj
            } else {
                let mut renamed = (*obj).clone();
                renamed.name = out.clone();
                Arc::new(renamed)
            };
            state.objects.insert(out.clone(), obj);
        } else {
            for obj in objects {
                let name = obj.name.clone();
                state.objects.insert(name, obj);
            }
        }
        return Ok(());
    }

    let output = inv.output.clone().unwrap_or_else(|| "a.out".to_string());
    match linker::link(&objects, &output, inv.compiler, &inv.features) {
        Ok(exe) => {
            state.executables.insert(output, exe);
            Ok(())
        }
        Err(diags) => {
            log.extend_diagnostics(diags);
            Err(())
        }
    }
}

fn object_name_for(input: &str) -> String {
    let base = input.rsplit('/').next().unwrap_or(input);
    match base.rsplit_once('.') {
        Some((stem, _)) => format!("{stem}.o"),
        None => format!("{base}.o"),
    }
}

fn finish(request: &BuildRequest, state: ExecState, mut log: BuildLog) -> BuildOutcome {
    // Accept the expected binary name, tolerating path prefixes
    // (`./app`, `bin/app`).
    let found = state
        .executables
        .iter()
        .find(|(name, _)| {
            name.as_str() == request.binary
                || name.rsplit('/').next() == Some(request.binary.as_str())
        })
        .map(|(_, exe)| exe.clone());
    match found {
        Some(exe) => {
            log.note(format!("build succeeded: produced '{}'", request.binary));
            BuildOutcome {
                log,
                executable: Some(exe),
            }
        }
        None => {
            let produced: Vec<&String> = state.executables.keys().collect();
            log.diagnostic(Diagnostic::error(
                ErrorCategory::MakefileMissingTarget,
                "(build)",
                format!(
                    "build did not produce expected binary '{}' (produced: {:?})",
                    request.binary, produced
                ),
            ));
            BuildOutcome {
                log,
                executable: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cuda_repo() -> SourceRepo {
        SourceRepo::new()
            .with_file(
                "Makefile",
                "NVCC = nvcc\napp: src/main.cu\n\t$(NVCC) -O2 -arch=sm_80 -o app src/main.cu\n",
            )
            .with_file(
                "src/main.cu",
                r#"
#include <cuda_runtime.h>
__global__ void k(int* a, size_t n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) a[i] = i;
}
int main() {
    int* d;
    cudaMalloc(&d, 64 * sizeof(int));
    k<<<2, 32>>>(d, 64);
    cudaDeviceSynchronize();
    cudaFree(d);
    return 0;
}
"#,
            )
    }

    #[test]
    fn cuda_make_build_succeeds() {
        let out = build_repo(&cuda_repo(), &BuildRequest::new("app"));
        assert!(out.succeeded(), "log:\n{}", out.log.text());
        let exe = out.executable.unwrap();
        assert!(exe.features.cuda);
        assert!(exe.usage.uses_cuda());
    }

    #[test]
    fn omp_offload_two_file_build() {
        let repo = SourceRepo::new()
            .with_file(
                "Makefile",
                "CXX = clang++\nFLAGS = -O2 -fopenmp -fopenmp-targets=nvptx64-nvidia-cuda\n\
                 app: src/main.cpp src/kernel.cpp\n\t$(CXX) $(FLAGS) -o app src/main.cpp src/kernel.cpp\n",
            )
            .with_file("src/kernel.h", "void run(int* a, int n);\n")
            .with_file(
                "src/kernel.cpp",
                "#include \"kernel.h\"\nvoid run(int* a, int n) {\n\
                 #pragma omp target teams distribute parallel for map(tofrom: a[0:n])\n\
                 for (int i = 0; i < n; i++) a[i] = i;\n}\n",
            )
            .with_file(
                "src/main.cpp",
                "#include \"kernel.h\"\nint main() {\n    int* a = (int*)malloc(64 * sizeof(int));\n    run(a, 64);\n    free(a);\n    return 0;\n}\n",
            );
        let out = build_repo(&repo, &BuildRequest::new("app"));
        assert!(out.succeeded(), "log:\n{}", out.log.text());
        assert!(out.executable.unwrap().features.offload);
    }

    #[test]
    fn kokkos_cmake_build() {
        let repo = SourceRepo::new()
            .with_file(
                "CMakeLists.txt",
                "cmake_minimum_required(VERSION 3.16)\nproject(app LANGUAGES CXX)\n\
                 find_package(Kokkos REQUIRED)\nadd_executable(app src/main.cpp)\n\
                 target_link_libraries(app PRIVATE Kokkos::kokkos)\n",
            )
            .with_file(
                "src/main.cpp",
                r#"
#include <Kokkos_Core.hpp>
int main() {
    Kokkos::initialize();
    {
        Kokkos::View<double*> d("d", 100);
        Kokkos::parallel_for(100, KOKKOS_LAMBDA(int i) { d(i) = 2.0 * i; });
        Kokkos::fence();
    }
    Kokkos::finalize();
    return 0;
}
"#,
            );
        let out = build_repo(&repo, &BuildRequest::new("app"));
        assert!(out.succeeded(), "log:\n{}", out.log.text());
        assert!(out.executable.unwrap().features.kokkos);
    }

    #[test]
    fn missing_build_file() {
        let repo = SourceRepo::new().with_file("main.cpp", "int main() { return 0; }");
        let out = build_repo(&repo, &BuildRequest::new("app"));
        assert!(!out.succeeded());
        assert_eq!(out.first_error_category(), Some(ErrorCategory::MissingFile));
    }

    #[test]
    fn wrong_binary_name_fails() {
        let repo = SourceRepo::new()
            .with_file("Makefile", "prog: main.cpp\n\tg++ -o prog main.cpp\n")
            .with_file("main.cpp", "int main() { return 0; }");
        let out = build_repo(&repo, &BuildRequest::new("app"));
        assert!(!out.succeeded());
        assert_eq!(
            out.first_error_category(),
            Some(ErrorCategory::MakefileMissingTarget)
        );
    }

    #[test]
    fn object_file_pipeline() {
        let repo = SourceRepo::new()
            .with_file(
                "Makefile",
                "app: main.o util.o\n\tg++ -o app main.o util.o\n\
                 main.o: main.cpp\n\tg++ -c main.cpp -o main.o\n\
                 util.o: util.cpp\n\tg++ -c util.cpp -o util.o\n",
            )
            .with_file("util.h", "int util(int x);\n")
            .with_file(
                "util.cpp",
                "#include \"util.h\"\nint util(int x) { return x + 1; }\n",
            )
            .with_file(
                "main.cpp",
                "#include \"util.h\"\nint main() { return util(41) - 42; }\n",
            );
        let out = build_repo(&repo, &BuildRequest::new("app"));
        assert!(out.succeeded(), "log:\n{}", out.log.text());
    }

    #[test]
    fn sema_failure_surfaces_in_log() {
        let repo = SourceRepo::new()
            .with_file("Makefile", "app: main.cpp\n\tg++ -o app main.cpp\n")
            .with_file("main.cpp", "int main() { return undeclared_thing; }\n");
        let out = build_repo(&repo, &BuildRequest::new("app"));
        assert!(!out.succeeded());
        assert_eq!(
            out.first_error_category(),
            Some(ErrorCategory::UndeclaredIdentifier)
        );
        assert!(out.log.text().contains("undeclared_thing"));
    }

    #[test]
    fn cu_file_requires_nvcc() {
        let repo = SourceRepo::new()
            .with_file("Makefile", "app: main.cu\n\tg++ -o app main.cu\n")
            .with_file("main.cu", "int main() { return 0; }\n");
        let out = build_repo(&repo, &BuildRequest::new("app"));
        assert_eq!(
            out.first_error_category(),
            Some(ErrorCategory::InvalidCompilerFlag)
        );
    }

    #[test]
    fn linker_failure_across_units() {
        let repo = SourceRepo::new()
            .with_file("Makefile", "app: main.cpp\n\tg++ -o app main.cpp\n")
            .with_file(
                "main.cpp",
                "void helper(int);\nint main() { helper(1); return 0; }\n",
            );
        let out = build_repo(&repo, &BuildRequest::new("app"));
        assert_eq!(out.first_error_category(), Some(ErrorCategory::LinkerError));
    }

    #[test]
    fn ignored_rm_and_echo() {
        let repo = SourceRepo::new()
            .with_file(
                "Makefile",
                "app: main.cpp\n\t@echo building app\n\t-rm -f app\n\tg++ -o app main.cpp\n",
            )
            .with_file("main.cpp", "int main() { return 0; }\n");
        let out = build_repo(&repo, &BuildRequest::new("app"));
        assert!(out.succeeded(), "log:\n{}", out.log.text());
    }
}
