//! A GNU-Make-subset interpreter.
//!
//! Supports what the ParEval-Repo tasks (and LLM-generated attempts at them)
//! actually use: variables (`=`, `:=`, `+=`), explicit rules, `%` pattern
//! rules, automatic variables (`$@`, `$<`, `$^`), `.PHONY`, comments, line
//! continuations — and, crucially, the **tab rule**: recipe lines must start
//! with a hard tab. Tabs replaced by spaces (what SWE-agent does to every
//! Makefile, per paper Sec. 3.3) produce the classic
//! `*** missing separator` error.

use crate::diag::{Diagnostic, ErrorCategory};
use minihpc_lang::repo::SourceRepo;
use std::collections::{BTreeMap, HashSet};

/// A parsed rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    pub targets: Vec<String>,
    pub prereqs: Vec<String>,
    /// Raw recipe lines (tab stripped), in order.
    pub recipe: Vec<String>,
    /// 1-based line of the rule header.
    pub line: u32,
}

/// A parsed Makefile.
#[derive(Debug, Clone, Default)]
pub struct Makefile {
    pub variables: BTreeMap<String, String>,
    pub rules: Vec<Rule>,
    pub phony: HashSet<String>,
}

/// A shell command from a recipe, split into words, with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Command {
    pub words: Vec<String>,
    pub line: u32,
    /// `@`-prefixed (silent).
    pub silent: bool,
    /// `-`-prefixed (ignore errors).
    pub ignore_errors: bool,
}

/// Parse Makefile text.
pub fn parse(text: &str) -> Result<Makefile, Diagnostic> {
    let mut mf = Makefile::default();
    let mut current_rule: Option<Rule> = None;

    // Join continuation lines, remembering original line numbers.
    let mut logical: Vec<(u32, String)> = Vec::new();
    {
        let mut pending: Option<(u32, String)> = None;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i as u32 + 1;
            let (mut buf, start) = match pending.take() {
                Some((start, buf)) => (buf, start),
                None => (String::new(), lineno),
            };
            if let Some(stripped) = raw.strip_suffix('\\') {
                buf.push_str(stripped);
                buf.push(' ');
                pending = Some((start, buf));
            } else {
                buf.push_str(raw);
                logical.push((start, buf));
            }
        }
        if let Some((start, buf)) = pending {
            logical.push((start, buf));
        }
    }

    for (lineno, line) in logical {
        // Recipe line?
        if let Some(recipe) = line.strip_prefix('\t') {
            let recipe = recipe.trim_end();
            if recipe.is_empty() {
                continue;
            }
            match &mut current_rule {
                Some(rule) => rule.recipe.push(recipe.to_string()),
                None => {
                    return Err(Diagnostic::error(
                        ErrorCategory::BuildFileSyntax,
                        "Makefile",
                        format!(
                            "Makefile:{lineno}: *** recipe commences before first target.  Stop."
                        ),
                    ))
                }
            }
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        // A non-tab indented line in recipe position: GNU make's most famous
        // diagnostic. (Unindented lines fall through to var/rule parsing.)
        if line.starts_with(' ') && !trimmed.contains('=') && !trimmed.contains(':') {
            return Err(Diagnostic::error(
                ErrorCategory::BuildFileSyntax,
                "Makefile",
                format!("Makefile:{lineno}: *** missing separator.  Stop."),
            ));
        }

        // Close out the current rule before a new var/rule.
        // Variable assignment? (Check before rule: `:=` contains `:`.)
        if let Some((name, op, value)) = split_assignment(trimmed) {
            if let Some(rule) = current_rule.take() {
                mf.rules.push(rule);
            }
            let name = name.trim().to_string();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(Diagnostic::error(
                    ErrorCategory::BuildFileSyntax,
                    "Makefile",
                    format!("Makefile:{lineno}: *** invalid variable name.  Stop."),
                ));
            }
            let value = value.trim();
            match op {
                "+=" => {
                    let entry = mf.variables.entry(name).or_default();
                    if !entry.is_empty() {
                        entry.push(' ');
                    }
                    entry.push_str(value);
                }
                _ => {
                    mf.variables.insert(name, value.to_string());
                }
            }
            continue;
        }
        // Rule header?
        if let Some(colon) = find_rule_colon(trimmed) {
            if let Some(rule) = current_rule.take() {
                mf.rules.push(rule);
            }
            let (targets_s, prereqs_s) = trimmed.split_at(colon);
            let prereqs_s = &prereqs_s[1..];
            let targets: Vec<String> = targets_s.split_whitespace().map(str::to_string).collect();
            let prereqs: Vec<String> = prereqs_s.split_whitespace().map(str::to_string).collect();
            if targets.is_empty() {
                return Err(Diagnostic::error(
                    ErrorCategory::BuildFileSyntax,
                    "Makefile",
                    format!("Makefile:{lineno}: *** empty target name.  Stop."),
                ));
            }
            if targets == [".PHONY".to_string()] {
                mf.phony.extend(prereqs);
                continue;
            }
            current_rule = Some(Rule {
                targets,
                prereqs,
                recipe: vec![],
                line: lineno,
            });
            continue;
        }
        return Err(Diagnostic::error(
            ErrorCategory::BuildFileSyntax,
            "Makefile",
            format!("Makefile:{lineno}: *** missing separator.  Stop."),
        ));
    }
    if let Some(rule) = current_rule.take() {
        mf.rules.push(rule);
    }
    Ok(mf)
}

fn split_assignment(line: &str) -> Option<(&str, &str, &str)> {
    // Only treat as assignment if `=` appears before any `:` that is a rule
    // separator (i.e. handle `:=` correctly).
    for (i, c) in line.char_indices() {
        match c {
            '=' => {
                let (op, name_end) = if i > 0 && line.as_bytes()[i - 1] == b':' {
                    (":=", i - 1)
                } else if i > 0 && line.as_bytes()[i - 1] == b'+' {
                    ("+=", i - 1)
                } else if i > 0 && line.as_bytes()[i - 1] == b'?' {
                    ("?=", i - 1)
                } else {
                    ("=", i)
                };
                return Some((&line[..name_end], op, &line[i + 1..]));
            }
            ':'
                // `:=` handled above; a bare `:` before `=` means a rule.
                if line.as_bytes().get(i + 1) != Some(&b'=') => {
                    return None;
                }
            _ => {}
        }
    }
    None
}

fn find_rule_colon(line: &str) -> Option<usize> {
    line.char_indices()
        .find(|&(i, c)| c == ':' && line.as_bytes().get(i + 1) != Some(&b'='))
        .map(|(i, _)| i)
}

impl Makefile {
    /// Expand `$(VAR)` / `${VAR}` and automatic variables.
    fn expand(&self, s: &str, auto: &BTreeMap<char, String>) -> String {
        let mut out = String::with_capacity(s.len());
        let bytes = s.as_bytes();
        let mut i = 0;
        // Bounded nesting to defeat accidental recursion.
        while i < bytes.len() {
            if bytes[i] == b'$' && i + 1 < bytes.len() {
                let next = bytes[i + 1];
                match next {
                    b'(' | b'{' => {
                        let close = if next == b'(' { b')' } else { b'}' };
                        if let Some(end) = s[i + 2..].find(close as char) {
                            let name = &s[i + 2..i + 2 + end];
                            let value = self.variables.get(name).cloned().unwrap_or_default();
                            // One level of nested expansion.
                            out.push_str(&self.expand(&value, auto));
                            i += 2 + end + 1;
                            continue;
                        }
                        out.push('$');
                        i += 1;
                    }
                    b'@' | b'<' | b'^' => {
                        if let Some(v) = auto.get(&(next as char)) {
                            out.push_str(v);
                        }
                        i += 2;
                    }
                    b'$' => {
                        out.push('$');
                        i += 2;
                    }
                    _ => {
                        // `$X` single-letter variable.
                        let name = (next as char).to_string();
                        if let Some(v) = self.variables.get(&name) {
                            out.push_str(v);
                        }
                        i += 2;
                    }
                }
            } else {
                out.push(bytes[i] as char);
                i += 1;
            }
        }
        out
    }

    fn find_rule(&self, target: &str) -> Option<&Rule> {
        self.rules
            .iter()
            .find(|r| r.targets.iter().any(|t| t == target))
    }

    fn find_pattern_rule(&self, target: &str) -> Option<(&Rule, String)> {
        for rule in &self.rules {
            for t in &rule.targets {
                if let Some(stem) = pattern_match(t, target) {
                    return Some((rule, stem));
                }
            }
        }
        None
    }

    /// Expand variables in rule targets and prerequisites (GNU make expands
    /// these at read time; we do it once up front, which is equivalent for
    /// non-self-referential files).
    fn expanded(&self) -> Makefile {
        let auto = BTreeMap::new();
        let rules = self
            .rules
            .iter()
            .map(|r| Rule {
                targets: r
                    .targets
                    .iter()
                    .flat_map(|t| {
                        self.expand(t, &auto)
                            .split_whitespace()
                            .map(str::to_string)
                            .collect::<Vec<_>>()
                    })
                    .collect(),
                prereqs: r
                    .prereqs
                    .iter()
                    .flat_map(|p| {
                        self.expand(p, &auto)
                            .split_whitespace()
                            .map(str::to_string)
                            .collect::<Vec<_>>()
                    })
                    .collect(),
                recipe: r.recipe.clone(),
                line: r.line,
            })
            .collect();
        Makefile {
            variables: self.variables.clone(),
            rules,
            phony: self.phony.clone(),
        }
    }

    /// Run `make [target]`: resolve the goal chain and return the commands
    /// to execute, in order.
    pub fn make(&self, goal: Option<&str>, repo: &SourceRepo) -> Result<Vec<Command>, Diagnostic> {
        let this = self.expanded();
        let goal = match goal {
            Some(g) => g.to_string(),
            None => this
                .rules
                .first()
                .and_then(|r| r.targets.first().cloned())
                .ok_or_else(|| {
                    Diagnostic::error(
                        ErrorCategory::MakefileMissingTarget,
                        "Makefile",
                        "make: *** No targets.  Stop.",
                    )
                })?,
        };
        let mut commands = Vec::new();
        let mut done: HashSet<String> = HashSet::new();
        let mut in_progress: HashSet<String> = HashSet::new();
        this.build_target(
            &goal,
            repo,
            &mut commands,
            &mut done,
            &mut in_progress,
            true,
        )?;
        Ok(commands)
    }

    fn build_target(
        &self,
        target: &str,
        repo: &SourceRepo,
        commands: &mut Vec<Command>,
        done: &mut HashSet<String>,
        in_progress: &mut HashSet<String>,
        is_goal: bool,
    ) -> Result<(), Diagnostic> {
        if done.contains(target) {
            return Ok(());
        }
        if !in_progress.insert(target.to_string()) {
            return Err(Diagnostic::error(
                ErrorCategory::BuildFileSyntax,
                "Makefile",
                format!("make: Circular dependency for target `{target}' dropped."),
            ));
        }
        let resolved = self
            .find_rule(target)
            .map(|r| (r, String::new()))
            .or_else(|| self.find_pattern_rule(target));
        let Some((rule, stem)) = resolved else {
            in_progress.remove(target);
            if repo.contains(target) && !is_goal {
                // A plain source file: nothing to do.
                done.insert(target.to_string());
                return Ok(());
            }
            return Err(Diagnostic::error(
                ErrorCategory::MakefileMissingTarget,
                "Makefile",
                format!("make: *** No rule to make target `{target}'.  Stop."),
            ));
        };
        // Pattern-substituted prerequisites.
        let prereqs: Vec<String> = rule.prereqs.iter().map(|p| p.replace('%', &stem)).collect();
        let recipe = rule.recipe.clone();
        let line = rule.line;
        for p in &prereqs {
            self.build_target(p, repo, commands, done, in_progress, false)?;
        }
        let mut auto = BTreeMap::new();
        auto.insert('@', target.to_string());
        auto.insert('<', prereqs.first().cloned().unwrap_or_default());
        auto.insert('^', prereqs.join(" "));
        for r in &recipe {
            let mut r = self.expand(r, &auto);
            let mut silent = false;
            let mut ignore_errors = false;
            loop {
                if let Some(rest) = r.strip_prefix('@') {
                    silent = true;
                    r = rest.to_string();
                } else if let Some(rest) = r.strip_prefix('-') {
                    ignore_errors = true;
                    r = rest.to_string();
                } else {
                    break;
                }
            }
            let words: Vec<String> = r.split_whitespace().map(str::to_string).collect();
            if words.is_empty() {
                continue;
            }
            commands.push(Command {
                words,
                line,
                silent,
                ignore_errors,
            });
        }
        in_progress.remove(target);
        done.insert(target.to_string());
        Ok(())
    }
}

/// Match `pattern` (containing a single `%`) against `target`, returning the
/// stem.
fn pattern_match(pattern: &str, target: &str) -> Option<String> {
    let pct = pattern.find('%')?;
    let (prefix, suffix) = (&pattern[..pct], &pattern[pct + 1..]);
    if target.len() >= prefix.len() + suffix.len()
        && target.starts_with(prefix)
        && target.ends_with(suffix)
    {
        Some(target[prefix.len()..target.len() - suffix.len()].to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_with_sources() -> SourceRepo {
        SourceRepo::new()
            .with_file("main.cpp", "int main() { return 0; }")
            .with_file("kernel.cpp", "void k() { }")
    }

    #[test]
    fn parse_and_run_simple() {
        let text = "CXX = clang++\nCXXFLAGS = -O2 -fopenmp\n\napp: main.cpp\n\t$(CXX) $(CXXFLAGS) -o app main.cpp\n";
        let mf = parse(text).unwrap();
        let cmds = mf.make(None, &repo_with_sources()).unwrap();
        assert_eq!(cmds.len(), 1);
        assert_eq!(
            cmds[0].words,
            vec!["clang++", "-O2", "-fopenmp", "-o", "app", "main.cpp"]
        );
    }

    #[test]
    fn spaces_instead_of_tab_is_missing_separator() {
        // This is exactly the SWE-agent failure mode from paper Sec. 3.3.
        let text = "app: main.cpp\n    clang++ -o app main.cpp\n";
        let err = parse(text).unwrap_err();
        assert_eq!(err.category, ErrorCategory::BuildFileSyntax);
        assert!(err.message.contains("missing separator"), "{}", err.message);
    }

    #[test]
    fn missing_target_error() {
        let text = "app: main.cpp\n\tg++ -o app main.cpp\n";
        let mf = parse(text).unwrap();
        let err = mf.make(Some("test"), &repo_with_sources()).unwrap_err();
        assert_eq!(err.category, ErrorCategory::MakefileMissingTarget);
        assert!(err.message.contains("No rule to make target"));
    }

    #[test]
    fn missing_prereq_rule_error() {
        let text = "app: ghost.o\n\tg++ -o app ghost.o\n";
        let mf = parse(text).unwrap();
        let err = mf.make(None, &repo_with_sources()).unwrap_err();
        assert_eq!(err.category, ErrorCategory::MakefileMissingTarget);
    }

    #[test]
    fn multi_step_object_build() {
        let text = "\
CXX = g++
app: main.o kernel.o
\t$(CXX) -o $@ $^
main.o: main.cpp
\t$(CXX) -c main.cpp -o main.o
kernel.o: kernel.cpp
\t$(CXX) -c kernel.cpp -o kernel.o
";
        let mf = parse(text).unwrap();
        let cmds = mf.make(None, &repo_with_sources()).unwrap();
        assert_eq!(cmds.len(), 3);
        // Prereqs built first, link last with automatic vars expanded.
        assert_eq!(cmds[0].words[1], "-c");
        assert_eq!(
            cmds[2].words,
            vec!["g++", "-o", "app", "main.o", "kernel.o"]
        );
    }

    #[test]
    fn pattern_rule() {
        let text = "\
app: main.o kernel.o
\tg++ -o $@ $^
%.o: %.cpp
\tg++ -c $< -o $@
";
        let mf = parse(text).unwrap();
        let cmds = mf.make(None, &repo_with_sources()).unwrap();
        assert_eq!(cmds.len(), 3);
        assert_eq!(cmds[0].words, vec!["g++", "-c", "main.cpp", "-o", "main.o"]);
    }

    #[test]
    fn phony_and_clean() {
        let text = "\
.PHONY: all clean
all: app
app: main.cpp
\tg++ -o app main.cpp
clean:
\trm -f app
";
        let mf = parse(text).unwrap();
        assert!(mf.phony.contains("all"));
        let cmds = mf.make(Some("all"), &repo_with_sources()).unwrap();
        assert_eq!(cmds.len(), 1);
        let cmds = mf.make(Some("clean"), &repo_with_sources()).unwrap();
        assert_eq!(cmds[0].words[0], "rm");
    }

    #[test]
    fn plus_equals_appends() {
        let text =
            "FLAGS = -O2\nFLAGS += -fopenmp\napp: main.cpp\n\tg++ $(FLAGS) -o app main.cpp\n";
        let mf = parse(text).unwrap();
        let cmds = mf.make(None, &repo_with_sources()).unwrap();
        assert!(cmds[0].words.contains(&"-O2".to_string()));
        assert!(cmds[0].words.contains(&"-fopenmp".to_string()));
    }

    #[test]
    fn line_continuation() {
        let text = "app: main.cpp\n\tg++ -O2 \\\n\t-fopenmp -o app main.cpp\n";
        let mf = parse(text).unwrap();
        let cmds = mf.make(None, &repo_with_sources()).unwrap();
        assert!(cmds[0].words.contains(&"-fopenmp".to_string()));
    }

    #[test]
    fn silent_and_ignore_prefixes() {
        let text = "app: main.cpp\n\t@echo building\n\t-rm -f app\n\tg++ -o app main.cpp\n";
        let mf = parse(text).unwrap();
        let cmds = mf.make(None, &repo_with_sources()).unwrap();
        assert!(cmds[0].silent);
        assert!(cmds[1].ignore_errors);
        assert_eq!(cmds.len(), 3);
    }

    #[test]
    fn circular_dependency_detected() {
        let text = "a: b\n\techo a\nb: a\n\techo b\n";
        let mf = parse(text).unwrap();
        let err = mf.make(Some("a"), &repo_with_sources()).unwrap_err();
        assert!(err.message.contains("Circular"));
    }

    #[test]
    fn garbage_line_is_syntax_error() {
        let err = parse("this is not a makefile\n").unwrap_err();
        assert_eq!(err.category, ErrorCategory::BuildFileSyntax);
    }

    #[test]
    fn nested_variable_expansion() {
        let text = "A = -O2\nB = $(A) -g\napp: main.cpp\n\tg++ $(B) -o app main.cpp\n";
        let mf = parse(text).unwrap();
        let cmds = mf.make(None, &repo_with_sources()).unwrap();
        assert!(cmds[0].words.contains(&"-O2".to_string()));
        assert!(cmds[0].words.contains(&"-g".to_string()));
    }

    #[test]
    fn variables_in_targets_and_prereqs() {
        let text = "SRCS = main.cpp kernel.cpp\nBIN = app\n\n$(BIN): $(SRCS)\n\tg++ -o $@ $^\n";
        let mf = parse(text).unwrap();
        let cmds = mf.make(Some("app"), &repo_with_sources()).unwrap();
        assert_eq!(
            cmds[0].words,
            vec!["g++", "-o", "app", "main.cpp", "kernel.cpp"]
        );
    }

    #[test]
    fn recipe_before_target_errors() {
        let err = parse("\tg++ -o app main.cpp\n").unwrap_err();
        assert!(err.message.contains("commences before first target"));
    }
}
