//! Per-file compile units: the file-granular caching seam of the build
//! driver.
//!
//! A *unit* is the result of `preprocess → parse → sema` for one compiler
//! input: the object code (when sema succeeded) plus every diagnostic the
//! front end emitted. Builds that differ in a single file re-run assemble
//! (cheap: parsing is memoized behind [`UnitCache::parse_file`]) to
//! rediscover each input's include closure, then replay every unit whose
//! closure is byte-identical from the cache — only changed units pay for
//! sema, and only the link + run stages execute unconditionally.
//!
//! # Key discipline
//!
//! [`unit_key`] must cover every input `sema::check` sees. The translation
//! unit handed to sema is a pure function of the include closure — the
//! resolved file paths and their byte contents, in splice order — so the
//! key hashes exactly that, plus the input path, the object name, the
//! [`CompileFeatures`], and a format-version salt. Anything else (other
//! repo files, build-system text, link flags) cannot reach a unit's
//! output and is deliberately excluded; keying on whole-repo content is
//! precisely the bug this module exists to fix.

use crate::diag::{Diagnostic, ErrorCategory, Severity};
use crate::object::ObjectCode;
use crate::toolchain::CompileFeatures;
use minihpc_lang::codec::{Dec, Enc};
use minihpc_lang::parser::ParseError;
use std::sync::Arc;

/// Bumped whenever the unit codec or the sema output format changes:
/// old disk entries simply stop matching instead of mis-decoding.
const UNIT_KEY_SALT: &str = "minihpc-unit-v1";

/// The cached result of compiling one translation unit.
///
/// The object is `Arc`-shared so a memory-tier hit costs a pointer clone,
/// not an AST deep copy. Failed sema runs are cached too (object `None`,
/// diagnostics replayed verbatim) — repair loops re-evaluate failing repos
/// repeatedly, and a deterministic failure is as cacheable as a success.
#[derive(Debug, Clone)]
pub struct CompiledUnit {
    pub object: Option<Arc<ObjectCode>>,
    pub diagnostics: Vec<Diagnostic>,
}

/// A cache the build driver consults per compile unit.
///
/// Implementations live above this crate (the eval pipeline's `BuildCache`
/// adds memory + disk tiers and stats); the driver only needs lookup,
/// store, and a memoized parse.
pub trait UnitCache: Sync {
    /// Parse `text`, memoizing by content so unchanged files across
    /// repeated builds (and headers shared between units within one
    /// build) are parsed once.
    fn parse_file(&self, text: &str) -> Result<minihpc_lang::ast::SourceFile, ParseError>;

    /// Fetch the unit stored under `key`, if any.
    fn lookup_unit(&self, key: u128) -> Option<CompiledUnit>;

    /// Store a freshly compiled unit under `key`.
    fn store_unit(&self, key: u128, unit: &CompiledUnit);
}

/// 128-bit FNV-1a hasher for unit keys (the same construction the eval
/// layer uses for whole-repo keys; re-implemented here so the build crate
/// stays dependency-free).
struct KeyHasher(u128);

impl KeyHasher {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    fn new() -> Self {
        KeyHasher(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        // Field separator: "ab" + "c" never collides with "a" + "bc".
        self.0 ^= 0xff;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }
}

fn features_bits(f: &CompileFeatures) -> u8 {
    let CompileFeatures {
        cuda,
        openmp,
        offload,
        kokkos,
        curand,
        libm,
    } = *f;
    (cuda as u8)
        | (openmp as u8) << 1
        | (offload as u8) << 2
        | (kokkos as u8) << 3
        | (curand as u8) << 4
        | (libm as u8) << 5
}

/// The content key of one compile unit.
///
/// `closure` is the unit's include closure in splice order — resolved
/// paths *and* contents, exactly as `preprocess::assemble` discovered it.
/// Hashing resolved paths (not just contents) prevents aliasing between
/// repos whose include resolution differs but whose file bodies happen to
/// match.
pub fn unit_key<'a>(
    input: &str,
    obj_name: &str,
    features: &CompileFeatures,
    closure: impl IntoIterator<Item = (&'a str, &'a str)>,
) -> u128 {
    let mut h = KeyHasher::new();
    h.write(UNIT_KEY_SALT.as_bytes());
    h.write(input.as_bytes());
    h.write(obj_name.as_bytes());
    h.write(&[features_bits(features)]);
    for (path, contents) in closure {
        h.write(path.as_bytes());
        h.write(contents.as_bytes());
    }
    h.0
}

// ---------------------------------------------------------------------------
// Byte codec (for the disk tier)
// ---------------------------------------------------------------------------

fn enc_features(enc: &mut Enc, f: &CompileFeatures) {
    enc.u8(features_bits(f));
}

fn dec_features(dec: &mut Dec) -> Option<CompileFeatures> {
    let bits = dec.u8()?;
    if bits >= 1 << 6 {
        return None;
    }
    Some(CompileFeatures {
        cuda: bits & 1 != 0,
        openmp: bits & (1 << 1) != 0,
        offload: bits & (1 << 2) != 0,
        kokkos: bits & (1 << 3) != 0,
        curand: bits & (1 << 4) != 0,
        libm: bits & (1 << 5) != 0,
    })
}

fn enc_diag(enc: &mut Enc, d: &Diagnostic) {
    enc.boolean(d.severity == Severity::Error);
    enc.u8(d.category.code());
    enc.str(&d.message);
    enc.str(&d.file);
    match d.line {
        Some(line) => {
            enc.u8(1);
            enc.u32(line);
        }
        None => enc.u8(0),
    }
}

fn dec_diag(dec: &mut Dec) -> Option<Diagnostic> {
    let severity = if dec.boolean()? {
        Severity::Error
    } else {
        Severity::Warning
    };
    let category = ErrorCategory::from_code(dec.u8()?)?;
    let message = dec.str()?;
    let file = dec.str()?;
    let line = match dec.u8()? {
        0 => None,
        1 => Some(dec.u32()?),
        _ => return None,
    };
    Some(Diagnostic {
        severity,
        category,
        message,
        file,
        line,
    })
}

fn enc_object(enc: &mut Enc, o: &ObjectCode) {
    enc.str(&o.source);
    enc.str(&o.name);
    enc.u32(o.functions.len() as u32);
    for (name, f) in &o.functions {
        enc.str(name);
        enc.function(f);
    }
    enc.u32(o.structs.len() as u32);
    for (name, s) in &o.structs {
        enc.str(name);
        enc.struct_def(s);
    }
    enc.u32(o.globals.len() as u32);
    for g in &o.globals {
        enc.var_decl(g);
    }
    enc.str_list(&o.undefined);
    enc.boolean(o.uses_libm);
    enc_features(enc, &o.features);
    enc.model_usage(&o.usage);
}

fn dec_object(dec: &mut Dec) -> Option<ObjectCode> {
    let source = dec.str()?;
    let name = dec.str()?;
    let nf = dec.u32()? as usize;
    let mut functions = std::collections::BTreeMap::new();
    for _ in 0..nf {
        let key = dec.str()?;
        functions.insert(key, dec.function()?);
    }
    let ns = dec.u32()? as usize;
    let mut structs = std::collections::BTreeMap::new();
    for _ in 0..ns {
        let key = dec.str()?;
        structs.insert(key, dec.struct_def()?);
    }
    let ng = dec.u32()? as usize;
    let mut globals = Vec::with_capacity(ng.min(1024));
    for _ in 0..ng {
        globals.push(dec.var_decl()?);
    }
    Some(ObjectCode {
        source,
        name,
        functions,
        structs,
        globals,
        undefined: dec.str_list()?,
        uses_libm: dec.boolean()?,
        features: dec_features(dec)?,
        usage: dec.model_usage()?,
    })
}

/// Serialize a unit for the disk tier. The caller frames the payload
/// (magic, checksum); this is content only.
pub fn encode_unit(unit: &CompiledUnit) -> Vec<u8> {
    let mut enc = Enc::new();
    match &unit.object {
        Some(o) => {
            enc.u8(1);
            enc_object(&mut enc, o);
        }
        None => enc.u8(0),
    }
    enc.u32(unit.diagnostics.len() as u32);
    for d in &unit.diagnostics {
        enc_diag(&mut enc, d);
    }
    enc.into_bytes()
}

/// Total decoder: any malformed byte (including trailing garbage) yields
/// `None`, which the disk tier treats as corruption ⇒ miss.
pub fn decode_unit(bytes: &[u8]) -> Option<CompiledUnit> {
    let mut dec = Dec::new(bytes);
    let object = match dec.u8()? {
        0 => None,
        1 => Some(Arc::new(dec_object(&mut dec)?)),
        _ => return None,
    };
    let nd = dec.u32()? as usize;
    let mut diagnostics = Vec::with_capacity(nd.min(1024));
    for _ in 0..nd {
        diagnostics.push(dec_diag(&mut dec)?);
    }
    dec.at_end().then_some(CompiledUnit {
        object,
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess;
    use crate::sema;
    use minihpc_lang::repo::SourceRepo;

    fn unit_of(src: &str) -> CompiledUnit {
        let repo = SourceRepo::new().with_file("main.cpp", src);
        let features = CompileFeatures {
            openmp: true,
            ..CompileFeatures::default()
        };
        let tu = preprocess::assemble(&repo, "main.cpp", &features).expect("assemble");
        let result = sema::check(&tu, "main.cpp", "main.o", &features);
        CompiledUnit {
            object: result.object.map(Arc::new),
            diagnostics: result.diagnostics,
        }
    }

    #[test]
    fn unit_round_trips_through_codec() {
        let unit = unit_of(
            "static double acc = 0.0;\n\
             struct P { int x; };\n\
             double f(double* a, int n) {\n\
             #pragma omp parallel for reduction(+: acc)\n\
             for (int i = 0; i < n; i++) acc += a[i];\n\
             return acc; }\n\
             int main() { double a[4] = {1.0, 2.0, 3.0, 4.0}; return (int)f(a, 4); }\n",
        );
        let bytes = encode_unit(&unit);
        let back = decode_unit(&bytes).expect("decode");
        let obj = unit.object.as_ref().unwrap();
        let bobj = back.object.as_ref().unwrap();
        assert_eq!(obj.source, bobj.source);
        assert_eq!(obj.name, bobj.name);
        assert_eq!(obj.functions, bobj.functions);
        assert_eq!(obj.structs, bobj.structs);
        assert_eq!(obj.globals, bobj.globals);
        assert_eq!(obj.undefined, bobj.undefined);
        assert_eq!(obj.uses_libm, bobj.uses_libm);
        assert_eq!(obj.features, bobj.features);
        assert_eq!(obj.usage, bobj.usage);
        assert_eq!(unit.diagnostics, back.diagnostics);
    }

    #[test]
    fn failed_unit_round_trips_diagnostics() {
        let unit = unit_of("int main() { return undeclared_thing; }\n");
        assert!(unit.object.is_none());
        assert!(!unit.diagnostics.is_empty());
        let back = decode_unit(&encode_unit(&unit)).expect("decode");
        assert!(back.object.is_none());
        assert_eq!(unit.diagnostics, back.diagnostics);
    }

    #[test]
    fn truncated_or_garbled_bytes_decode_to_none() {
        let unit = unit_of("int main() { return 0; }\n");
        let bytes = encode_unit(&unit);
        for cut in 0..bytes.len() {
            assert!(decode_unit(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_unit(&trailing).is_none(), "trailing byte accepted");
    }

    #[test]
    fn key_covers_closure_paths_and_contents() {
        let features = CompileFeatures::default();
        let base = unit_key(
            "src/main.cpp",
            "main.o",
            &features,
            [
                ("src/main.cpp", "int main() { return 0; }"),
                ("src/a.h", "int f();"),
            ],
        );
        // Changing any header byte changes the key.
        let edited = unit_key(
            "src/main.cpp",
            "main.o",
            &features,
            [
                ("src/main.cpp", "int main() { return 0; }"),
                ("src/a.h", "int g();"),
            ],
        );
        assert_ne!(base, edited);
        // Same bytes resolved from a different path changes the key.
        let moved = unit_key(
            "src/main.cpp",
            "main.o",
            &features,
            [
                ("src/main.cpp", "int main() { return 0; }"),
                ("a.h", "int f();"),
            ],
        );
        assert_ne!(base, moved);
        // Features and object name are part of the key.
        let cuda = CompileFeatures {
            cuda: true,
            ..features
        };
        assert_ne!(
            base,
            unit_key(
                "src/main.cpp",
                "main.o",
                &cuda,
                [
                    ("src/main.cpp", "int main() { return 0; }"),
                    ("src/a.h", "int f();")
                ],
            )
        );
        // Field separation: shifting a byte across the path/content
        // boundary must not collide.
        let a = unit_key("m", "o", &features, [("ab", "c")]);
        let b = unit_key("m", "o", &features, [("a", "bc")]);
        assert_ne!(a, b);
    }
}
