//! The linker: merges object files into an [`Executable`], reporting the
//! paper's "Linker Error" category for undefined references, duplicate
//! definitions, and a missing `main`.

use crate::diag::{Diagnostic, ErrorCategory};
use crate::object::{Executable, ObjectCode};
use crate::toolchain::{CompileFeatures, CompilerKind};
use minihpc_lang::model::ModelUsage;
use std::collections::BTreeMap;

/// Link objects into an executable named `output`.
///
/// `compiler` is the driver doing the link (nvcc bundles libm and the CUDA
/// runtime; gcc/clang need `-lm` for math usage, which is the classic
/// missing-flag linker failure).
pub fn link<B: std::borrow::Borrow<ObjectCode>>(
    objects: &[B],
    output: &str,
    compiler: CompilerKind,
    link_features: &CompileFeatures,
) -> Result<Executable, Vec<Diagnostic>> {
    let mut diags = Vec::new();
    let mut functions = BTreeMap::new();
    let mut structs = BTreeMap::new();
    let mut globals = Vec::new();
    let mut features = *link_features;
    let mut usage = ModelUsage::default();
    let mut uses_libm = false;

    for obj in objects {
        let obj = obj.borrow();
        for (name, f) in &obj.functions {
            if f.quals.is_static {
                // Internal linkage: visible only within its own unit; the
                // runtime resolves calls within the merged table, so a
                // static name collision is still reported (a MiniHPC
                // simplification documented in DESIGN.md).
            }
            if functions.insert(name.clone(), f.clone()).is_some() {
                diags.push(Diagnostic::error(
                    ErrorCategory::LinkerError,
                    output,
                    format!("multiple definition of `{name}'"),
                ));
            }
        }
        for (name, s) in &obj.structs {
            structs.entry(name.clone()).or_insert_with(|| s.clone());
        }
        globals.extend(obj.globals.iter().cloned());
        features.cuda |= obj.features.cuda;
        features.openmp |= obj.features.openmp;
        features.offload |= obj.features.offload;
        features.kokkos |= obj.features.kokkos;
        features.curand |= obj.features.curand;
        features.libm |= obj.features.libm;
        usage.merge(&obj.usage);
        uses_libm |= obj.uses_libm;
    }

    // Resolve undefined symbols across units.
    for obj in objects {
        let obj = obj.borrow();
        for sym in &obj.undefined {
            if !functions.contains_key(sym) {
                diags.push(Diagnostic::error(
                    ErrorCategory::LinkerError,
                    output,
                    format!("{}: undefined reference to `{sym}'", obj.name),
                ));
            }
        }
    }

    if uses_libm && !features.libm && compiler != CompilerKind::Nvcc {
        diags.push(Diagnostic::error(
            ErrorCategory::LinkerError,
            output,
            "undefined reference to `sqrt' (math functions require -lm)",
        ));
    }

    if !functions.contains_key("main") {
        diags.push(Diagnostic::error(
            ErrorCategory::LinkerError,
            output,
            "in function `_start': undefined reference to `main'",
        ));
    }

    if diags.iter().any(Diagnostic::is_error) {
        return Err(diags);
    }
    Ok(Executable {
        name: output.to_string(),
        functions,
        structs,
        globals,
        features,
        usage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::assemble;
    use crate::sema;
    use minihpc_lang::repo::SourceRepo;

    fn object_of(path: &str, src: &str, features: CompileFeatures) -> ObjectCode {
        let repo = SourceRepo::new().with_file(path, src);
        let tu = assemble(&repo, path, &features).unwrap();
        let r = sema::check(&tu, path, &format!("{path}.o"), &features);
        assert!(
            r.object.is_some(),
            "sema failed: {:?}",
            r.diagnostics
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
        );
        r.object.unwrap()
    }

    #[test]
    fn two_unit_link_resolves_prototypes() {
        let f = CompileFeatures::default();
        let main_o = object_of(
            "main.cpp",
            "void helper(int x);\nint main() { helper(1); return 0; }",
            f,
        );
        let helper_o = object_of("helper.cpp", "void helper(int x) { }", f);
        let exe = link(&[main_o, helper_o], "app", CompilerKind::Gcc, &f).unwrap();
        assert!(exe.main().is_some());
        assert!(exe.functions.contains_key("helper"));
    }

    #[test]
    fn undefined_reference_reported() {
        let f = CompileFeatures::default();
        let main_o = object_of(
            "main.cpp",
            "void helper(int x);\nint main() { helper(1); return 0; }",
            f,
        );
        let errs = link(&[main_o], "app", CompilerKind::Gcc, &f).unwrap_err();
        assert_eq!(errs[0].category, ErrorCategory::LinkerError);
        assert!(errs[0].message.contains("helper"));
    }

    #[test]
    fn duplicate_definition_reported() {
        let f = CompileFeatures::default();
        let a = object_of(
            "a.cpp",
            "int compute() { return 1; }\nint main() { return compute(); }",
            f,
        );
        let b = object_of("b.cpp", "int compute() { return 2; }", f);
        let errs = link(&[a, b], "app", CompilerKind::Gcc, &f).unwrap_err();
        assert!(errs[0].message.contains("multiple definition"));
    }

    #[test]
    fn missing_main_reported() {
        let f = CompileFeatures::default();
        let a = object_of("a.cpp", "int compute() { return 1; }", f);
        let errs = link(&[a], "app", CompilerKind::Gcc, &f).unwrap_err();
        assert!(errs[0].message.contains("main"));
    }

    #[test]
    fn libm_required_for_gcc_but_not_nvcc() {
        let f = CompileFeatures::default();
        let src = "int main() { double x = sqrt(2.0); return (int)x; }";
        let a = object_of("a.cpp", src, f);
        let errs = link(std::slice::from_ref(&a), "app", CompilerKind::Gcc, &f).unwrap_err();
        assert!(errs[0].message.contains("-lm"));

        // With -lm.
        let with_m = CompileFeatures {
            libm: true,
            ..CompileFeatures::default()
        };
        assert!(link(std::slice::from_ref(&a), "app", CompilerKind::Gcc, &with_m).is_ok());

        // nvcc links libm implicitly.
        assert!(link(&[a], "app", CompilerKind::Nvcc, &f).is_ok());
    }

    #[test]
    fn features_unioned() {
        let cuda = CompileFeatures {
            cuda: true,
            ..CompileFeatures::default()
        };
        let omp = CompileFeatures {
            openmp: true,
            ..CompileFeatures::default()
        };
        let a = object_of("a.cpp", "int main() { return 0; }", cuda);
        let b = object_of("b.cpp", "void side(void) { }", omp);
        let exe = link(
            &[a, b],
            "app",
            CompilerKind::Nvcc,
            &CompileFeatures::default(),
        )
        .unwrap();
        assert!(exe.features.cuda);
        assert!(exe.features.openmp);
    }
}
