//! Object files and linked executables.
//!
//! A MiniHPC "object" keeps the semantically-checked AST of its translation
//! unit plus the symbol information the linker needs. A linked [`Executable`]
//! is what the simulated runtime (`minihpc-runtime`) interprets.

use crate::toolchain::CompileFeatures;
use minihpc_lang::ast::{Function, StructDef, VarDecl};
use minihpc_lang::model::ModelUsage;
use std::collections::BTreeMap;

/// A compiled translation unit.
#[derive(Debug, Clone)]
pub struct ObjectCode {
    /// The source path this object was compiled from.
    pub source: String,
    /// The (logical) object file name, e.g. `main.o`.
    pub name: String,
    /// Function definitions, by name.
    pub functions: BTreeMap<String, Function>,
    /// Struct definitions visible in this unit.
    pub structs: BTreeMap<String, StructDef>,
    /// Global variable definitions.
    pub globals: Vec<VarDecl>,
    /// Names of functions declared (prototype) and referenced but not
    /// defined in this unit — resolved at link time.
    pub undefined: Vec<String>,
    /// Whether any libm math function is referenced (link-time `-lm` check).
    pub uses_libm: bool,
    pub features: CompileFeatures,
    pub usage: ModelUsage,
}

/// A fully linked program, ready for the simulated runtime.
#[derive(Debug, Clone)]
pub struct Executable {
    /// Program name (the `-o` output).
    pub name: String,
    pub functions: BTreeMap<String, Function>,
    pub structs: BTreeMap<String, StructDef>,
    pub globals: Vec<VarDecl>,
    /// Union of the features of all linked objects.
    pub features: CompileFeatures,
    /// Merged model-usage evidence (for the harness's target-model check).
    pub usage: ModelUsage,
}

impl Executable {
    pub fn main(&self) -> Option<&Function> {
        self.functions.get("main")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executable_main_lookup() {
        let exe = Executable {
            name: "app".into(),
            functions: BTreeMap::new(),
            structs: BTreeMap::new(),
            globals: vec![],
            features: CompileFeatures::default(),
            usage: ModelUsage::default(),
        };
        assert!(exe.main().is_none());
    }
}
