//! # minihpc-build
//!
//! The MiniHPC toolchain: build-system interpreters (Make and CMake subsets),
//! a compiler driver (preprocess → parse → semantic analysis), and a linker.
//!
//! It substitutes for the paper's real toolchain (nvcc / clang++ with OpenMP
//! offload / g++ + Kokkos via CMake, Sec. 7.2) while producing the same
//! *categories* of failure the paper's Fig. 3 clusters — see
//! [`diag::ErrorCategory`].
//!
//! Entry point: [`driver::build_repo`] takes a [`minihpc_lang::SourceRepo`]
//! and a [`driver::BuildRequest`], and returns a [`driver::BuildOutcome`]
//! containing the raw build log (the clustering input) and, on success, a
//! linked [`object::Executable`] for the simulated runtime.

pub mod cmake;
pub mod diag;
pub mod driver;
pub mod linker;
pub mod makefile;
pub mod object;
pub mod preprocess;
pub mod sema;
pub mod toolchain;
pub mod unit;

pub use diag::{BuildLog, Diagnostic, ErrorCategory, Severity};
pub use driver::{build_repo, build_repo_with, BuildOutcome, BuildRequest};
pub use object::{Executable, ObjectCode};
pub use toolchain::{CompileFeatures, CompilerKind};
pub use unit::{CompiledUnit, UnitCache};
