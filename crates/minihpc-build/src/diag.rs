//! Build diagnostics and the error taxonomy of paper Figure 3.
//!
//! Every failure anywhere in the toolchain — build-system interpretation,
//! preprocessing, parsing, semantic analysis, linking — is reported as a
//! [`Diagnostic`] tagged with one of the ten [`ErrorCategory`] values the
//! paper's semi-automated clustering recovers from raw logs. The harness
//! keeps the *raw log text* as the clustering input and the category as
//! ground truth for validating the clustering pipeline.

use std::fmt;

/// The error categories of paper Fig. 3, plus catch-alls the paper notes it
/// removed from the figure (missing files, timeouts, success).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ErrorCategory {
    /// "CMake or Makefile Syntax Error"
    BuildFileSyntax,
    /// "Makefile Missing Build Target"
    MakefileMissingTarget,
    /// "CMake Config Error"
    CMakeConfig,
    /// "Invalid Compiler Flag"
    InvalidCompilerFlag,
    /// "Missing Header File"
    MissingHeader,
    /// "Code Syntax Error"
    CodeSyntax,
    /// "Undeclared Identifier"
    UndeclaredIdentifier,
    /// "Function Argument or Type Mismatch"
    ArgTypeMismatch,
    /// "OpenMP Invalid Directive"
    OmpInvalidDirective,
    /// "Linker Error"
    LinkerError,
    /// Expected output file missing from the translation (excluded from
    /// Fig. 3 by the paper, but tracked).
    MissingFile,
    /// Anything else (runtime failures, internal limits).
    Other,
}

impl ErrorCategory {
    /// The ten categories shown in paper Fig. 3, in figure order.
    pub const FIGURE3: [ErrorCategory; 10] = [
        ErrorCategory::BuildFileSyntax,
        ErrorCategory::MakefileMissingTarget,
        ErrorCategory::CMakeConfig,
        ErrorCategory::InvalidCompilerFlag,
        ErrorCategory::MissingHeader,
        ErrorCategory::CodeSyntax,
        ErrorCategory::UndeclaredIdentifier,
        ErrorCategory::ArgTypeMismatch,
        ErrorCategory::OmpInvalidDirective,
        ErrorCategory::LinkerError,
    ];

    /// Stable on-disk code of this category, shared by every persisted
    /// format (the journal and the disk build cache). Exhaustive match:
    /// adding a category refuses to compile until it gets a code.
    pub fn code(self) -> u8 {
        match self {
            ErrorCategory::BuildFileSyntax => 0,
            ErrorCategory::MakefileMissingTarget => 1,
            ErrorCategory::CMakeConfig => 2,
            ErrorCategory::InvalidCompilerFlag => 3,
            ErrorCategory::MissingHeader => 4,
            ErrorCategory::CodeSyntax => 5,
            ErrorCategory::UndeclaredIdentifier => 6,
            ErrorCategory::ArgTypeMismatch => 7,
            ErrorCategory::OmpInvalidDirective => 8,
            ErrorCategory::LinkerError => 9,
            ErrorCategory::MissingFile => 10,
            ErrorCategory::Other => 11,
        }
    }

    /// Inverse of [`ErrorCategory::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<ErrorCategory> {
        Some(match code {
            0 => ErrorCategory::BuildFileSyntax,
            1 => ErrorCategory::MakefileMissingTarget,
            2 => ErrorCategory::CMakeConfig,
            3 => ErrorCategory::InvalidCompilerFlag,
            4 => ErrorCategory::MissingHeader,
            5 => ErrorCategory::CodeSyntax,
            6 => ErrorCategory::UndeclaredIdentifier,
            7 => ErrorCategory::ArgTypeMismatch,
            8 => ErrorCategory::OmpInvalidDirective,
            9 => ErrorCategory::LinkerError,
            10 => ErrorCategory::MissingFile,
            11 => ErrorCategory::Other,
            _ => return None,
        })
    }

    /// The label used in paper Fig. 3.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCategory::BuildFileSyntax => "CMake or Makefile Syntax Error",
            ErrorCategory::MakefileMissingTarget => "Makefile Missing Build Target",
            ErrorCategory::CMakeConfig => "CMake Config Error",
            ErrorCategory::InvalidCompilerFlag => "Invalid Compiler Flag",
            ErrorCategory::MissingHeader => "Missing Header File",
            ErrorCategory::CodeSyntax => "Code Syntax Error",
            ErrorCategory::UndeclaredIdentifier => "Undeclared Identifier",
            ErrorCategory::ArgTypeMismatch => "Function Argument or Type Mismatch",
            ErrorCategory::OmpInvalidDirective => "OpenMP Invalid Directive",
            ErrorCategory::LinkerError => "Linker Error",
            ErrorCategory::MissingFile => "Missing File",
            ErrorCategory::Other => "Other",
        }
    }
}

impl fmt::Display for ErrorCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Severity of a diagnostic. Only `Error` blocks the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Warning,
    Error,
}

/// One toolchain diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub category: ErrorCategory,
    pub message: String,
    /// File the diagnostic refers to (build file or source path).
    pub file: String,
    /// 1-based line, when known.
    pub line: Option<u32>,
}

impl Diagnostic {
    pub fn error(
        category: ErrorCategory,
        file: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Error,
            category,
            message: message.into(),
            file: file.into(),
            line: None,
        }
    }

    pub fn warning(
        category: ErrorCategory,
        file: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            category,
            message: message.into(),
            file: file.into(),
            line: None,
        }
    }

    pub fn at_line(mut self, line: u32) -> Self {
        self.line = Some(line);
        self
    }

    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        match self.line {
            Some(line) => write!(f, "{}:{}: {}: {}", self.file, line, sev, self.message),
            None => write!(f, "{}: {}: {}", self.file, sev, self.message),
        }
    }
}

/// An accumulating build log: free-form lines (compiler invocations, make
/// echo output) interleaved with diagnostics. The rendered text is what the
/// error-clustering pipeline embeds; the structured diagnostics are the
/// ground truth.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BuildLog {
    lines: Vec<String>,
    diagnostics: Vec<Diagnostic>,
}

impl BuildLog {
    pub fn new() -> Self {
        BuildLog::default()
    }

    pub fn note(&mut self, line: impl Into<String>) {
        self.lines.push(line.into());
    }

    pub fn diagnostic(&mut self, d: Diagnostic) {
        self.lines.push(d.to_string());
        self.diagnostics.push(d);
    }

    pub fn extend_diagnostics(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        for d in ds {
            self.diagnostic(d);
        }
    }

    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_error())
    }

    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// The category of the first error, if any — the paper assigns each
    /// failed build to a single cluster.
    pub fn first_error_category(&self) -> Option<ErrorCategory> {
        self.errors().next().map(|d| d.category)
    }

    /// Render the full log text (the clustering input).
    pub fn text(&self) -> String {
        self.lines.join("\n")
    }

    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

impl fmt::Display for BuildLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_categories_have_distinct_labels() {
        use std::collections::HashSet;
        let labels: HashSet<_> = ErrorCategory::FIGURE3.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 10);
    }

    #[test]
    fn log_first_error_category() {
        let mut log = BuildLog::new();
        log.note("clang++ -fopenmp -o app main.cpp");
        assert!(!log.has_errors());
        log.diagnostic(
            Diagnostic::warning(ErrorCategory::Other, "main.cpp", "unused variable `x`").at_line(3),
        );
        assert!(!log.has_errors());
        log.diagnostic(
            Diagnostic::error(
                ErrorCategory::UndeclaredIdentifier,
                "main.cpp",
                "use of undeclared identifier `foo`",
            )
            .at_line(10),
        );
        log.diagnostic(Diagnostic::error(
            ErrorCategory::LinkerError,
            "app",
            "undefined reference to `bar`",
        ));
        assert!(log.has_errors());
        assert_eq!(
            log.first_error_category(),
            Some(ErrorCategory::UndeclaredIdentifier)
        );
    }

    #[test]
    fn log_text_contains_diagnostics_and_notes() {
        let mut log = BuildLog::new();
        log.note("make all");
        log.diagnostic(Diagnostic::error(
            ErrorCategory::MakefileMissingTarget,
            "Makefile",
            "no rule to make target `app`",
        ));
        let text = log.text();
        assert!(text.contains("make all"));
        assert!(text.contains("no rule to make target"));
    }

    #[test]
    fn diagnostic_display_with_line() {
        let d = Diagnostic::error(ErrorCategory::CodeSyntax, "src/main.cpp", "expected `;`")
            .at_line(42);
        assert_eq!(d.to_string(), "src/main.cpp:42: error: expected `;`");
    }
}
