//! Translation-unit assembly: resolves `#include` directives against the
//! repository and the simulated system header set, producing one merged
//! [`SourceFile`] per compiled source.
//!
//! Missing headers are the paper's "Missing Header File" category — in the
//! paper this is a dominant failure for XSBench, whose many cross-file
//! includes LLMs frequently break.

use crate::diag::{Diagnostic, ErrorCategory};
use crate::toolchain::CompileFeatures;
use minihpc_lang::ast::{Item, ItemKind, SourceFile};
use minihpc_lang::parser;
use minihpc_lang::repo::SourceRepo;
use minihpc_lang::span;
use std::collections::HashSet;

/// System headers that always exist (libc/libm and friends).
const ALWAYS_HEADERS: [&str; 12] = [
    "stdio.h",
    "stdlib.h",
    "string.h",
    "math.h",
    "assert.h",
    "stdbool.h",
    "stddef.h",
    "stdint.h",
    "time.h",
    "float.h",
    "limits.h",
    "omp.h",
];

/// Headers available only with certain toolchain features.
fn header_available(path: &str, features: &CompileFeatures) -> bool {
    if ALWAYS_HEADERS.contains(&path) {
        return true;
    }
    match path {
        "cuda_runtime.h" | "cuda.h" => features.cuda,
        "curand_kernel.h" | "curand.h" => features.cuda && features.curand,
        "Kokkos_Core.hpp" | "Kokkos_Random.hpp" => features.kokkos,
        _ => false,
    }
}

/// The result of assembling a translation unit.
#[derive(Debug, Clone)]
pub struct TranslationUnit {
    /// The merged AST: items of all transitively included local headers
    /// spliced in include order, each file included at most once.
    pub ast: SourceFile,
    /// Paths of all repository files that went into this unit.
    pub files: Vec<String>,
}

/// The outcome of parsing one file — what the [`assemble_with`] parse hook
/// returns, letting callers memoize parses by file content.
pub type ParsedFile = Result<SourceFile, minihpc_lang::parser::ParseError>;

/// Assemble the translation unit rooted at `main_path`, parsing every file
/// fresh.
pub fn assemble(
    repo: &SourceRepo,
    main_path: &str,
    features: &CompileFeatures,
) -> Result<TranslationUnit, Vec<Diagnostic>> {
    assemble_with(repo, main_path, features, &parser::parse_file)
}

/// Assemble the translation unit rooted at `main_path`, obtaining each
/// file's AST through `parse` — typically a content-addressed memo, so a
/// header shared by many units (or unchanged across re-evaluations) is
/// parsed once.
pub fn assemble_with(
    repo: &SourceRepo,
    main_path: &str,
    features: &CompileFeatures,
    parse: &dyn Fn(&str) -> ParsedFile,
) -> Result<TranslationUnit, Vec<Diagnostic>> {
    let mut included: HashSet<String> = HashSet::new();
    let mut files = Vec::new();
    let mut items = Vec::new();
    let mut diags = Vec::new();
    expand_file(
        repo,
        main_path,
        features,
        parse,
        &mut included,
        &mut files,
        &mut items,
        &mut diags,
    );
    if diags.iter().any(Diagnostic::is_error) {
        return Err(diags);
    }
    Ok(TranslationUnit {
        ast: SourceFile { items },
        files,
    })
}

#[allow(clippy::too_many_arguments)]
fn expand_file(
    repo: &SourceRepo,
    path: &str,
    features: &CompileFeatures,
    parse: &dyn Fn(&str) -> ParsedFile,
    included: &mut HashSet<String>,
    files: &mut Vec<String>,
    items: &mut Vec<Item>,
    diags: &mut Vec<Diagnostic>,
) {
    if !included.insert(path.to_string()) {
        return; // include guard: each file spliced once
    }
    let Some(text) = repo.get(path) else {
        diags.push(Diagnostic::error(
            ErrorCategory::MissingFile,
            path,
            format!("no such file or directory: '{path}'"),
        ));
        return;
    };
    files.push(path.to_string());
    let parsed = match parse(text) {
        Ok(p) => p,
        Err(e) => {
            let line = span::line_col(text, e.span.start).line;
            let category = if e.in_omp_directive {
                ErrorCategory::OmpInvalidDirective
            } else {
                ErrorCategory::CodeSyntax
            };
            diags.push(Diagnostic::error(category, path, e.message).at_line(line));
            return;
        }
    };
    for item in parsed.items {
        match &item.kind {
            ItemKind::Include {
                path: inc,
                system: false,
            } => match repo.resolve_include(path, inc) {
                Some(resolved) => {
                    let resolved = resolved.to_string();
                    expand_file(
                        repo, &resolved, features, parse, included, files, items, diags,
                    );
                }
                None => {
                    let line = span::line_col(text, item.span.start).line;
                    diags.push(
                        Diagnostic::error(
                            ErrorCategory::MissingHeader,
                            path,
                            format!("'{inc}' file not found"),
                        )
                        .at_line(line),
                    );
                }
            },
            ItemKind::Include {
                path: inc,
                system: true,
            } => {
                if !header_available(inc, features) {
                    let line = span::line_col(text, item.span.start).line;
                    diags.push(
                        Diagnostic::error(
                            ErrorCategory::MissingHeader,
                            path,
                            format!("'{inc}' file not found"),
                        )
                        .at_line(line),
                    );
                }
                // Available system headers contribute builtins via sema, not items.
            }
            _ => items.push(item),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features_cuda() -> CompileFeatures {
        CompileFeatures {
            cuda: true,
            curand: true,
            ..CompileFeatures::default()
        }
    }

    #[test]
    fn local_include_spliced() {
        let repo = SourceRepo::new()
            .with_file("src/kernel.h", "void k(int* a, int n);\n")
            .with_file(
                "src/main.cpp",
                "#include \"kernel.h\"\nint main() { return 0; }\n",
            );
        let tu = assemble(&repo, "src/main.cpp", &CompileFeatures::default()).unwrap();
        assert_eq!(tu.files, vec!["src/main.cpp", "src/kernel.h"]);
        assert!(tu.ast.find_function("k").is_some());
        assert!(tu.ast.find_function("main").is_some());
    }

    #[test]
    fn missing_local_header_reported() {
        let repo = SourceRepo::new().with_file(
            "main.cpp",
            "#include \"nonexistent.h\"\nint main() { return 0; }\n",
        );
        let errs = assemble(&repo, "main.cpp", &CompileFeatures::default()).unwrap_err();
        assert_eq!(errs[0].category, ErrorCategory::MissingHeader);
        assert_eq!(errs[0].line, Some(1));
    }

    #[test]
    fn cuda_header_requires_cuda_feature() {
        let repo = SourceRepo::new().with_file(
            "main.cpp",
            "#include <cuda_runtime.h>\nint main() { return 0; }\n",
        );
        let errs = assemble(&repo, "main.cpp", &CompileFeatures::default()).unwrap_err();
        assert_eq!(errs[0].category, ErrorCategory::MissingHeader);
        assert!(assemble(&repo, "main.cpp", &features_cuda()).is_ok());
    }

    #[test]
    fn kokkos_header_requires_kokkos_feature() {
        let repo = SourceRepo::new().with_file(
            "main.cpp",
            "#include <Kokkos_Core.hpp>\nint main() { return 0; }\n",
        );
        assert!(assemble(&repo, "main.cpp", &CompileFeatures::default()).is_err());
        let f = CompileFeatures {
            kokkos: true,
            ..CompileFeatures::default()
        };
        assert!(assemble(&repo, "main.cpp", &f).is_ok());
    }

    #[test]
    fn include_guard_behaviour() {
        // Two files both include the same header: each TU includes it once.
        let repo = SourceRepo::new()
            .with_file("a.h", "int shared(void);\n")
            .with_file(
                "main.cpp",
                "#include \"a.h\"\n#include \"b.h\"\nint main() { return 0; }\n",
            )
            .with_file("b.h", "#include \"a.h\"\nint other(void);\n");
        let tu = assemble(&repo, "main.cpp", &CompileFeatures::default()).unwrap();
        let shared_count = tu
            .ast
            .items
            .iter()
            .filter(|i| matches!(&i.kind, ItemKind::Function(f) if f.name == "shared"))
            .count();
        assert_eq!(shared_count, 1);
    }

    #[test]
    fn syntax_error_in_header_attributed_to_header() {
        let repo = SourceRepo::new()
            .with_file("bad.h", "int broken( { ;\n")
            .with_file("main.cpp", "#include \"bad.h\"\nint main() { return 0; }\n");
        let errs = assemble(&repo, "main.cpp", &CompileFeatures::default()).unwrap_err();
        assert_eq!(errs[0].category, ErrorCategory::CodeSyntax);
        assert_eq!(errs[0].file, "bad.h");
    }

    #[test]
    fn missing_main_file() {
        let repo = SourceRepo::new();
        let errs = assemble(&repo, "ghost.cpp", &CompileFeatures::default()).unwrap_err();
        assert_eq!(errs[0].category, ErrorCategory::MissingFile);
    }
}
