//! Semantic analysis for MiniHPC translation units.
//!
//! Produces the diagnostic categories the paper's Fig. 3 clusters:
//! undeclared identifiers, function argument/type mismatches, invalid OpenMP
//! directives — and records the symbol information linking needs.
//!
//! Checking is deliberately *loose* in the places C is loose (numeric
//! conversions) and strict where real toolchains are strict (pointer
//! pointee mismatches, calling `__global__` kernels directly, Kokkos used
//! without its package, OpenMP loop-directive shape).

use crate::diag::{Diagnostic, ErrorCategory};
use crate::object::ObjectCode;
use crate::preprocess::TranslationUnit;
use crate::toolchain::CompileFeatures;
use minihpc_lang::ast::*;
use minihpc_lang::model::detect_usage;
use minihpc_lang::pragma::{OmpClause, OmpConstruct, OmpDirective};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Result of checking one translation unit: the object (present unless
/// errors occurred) and all diagnostics, warnings included.
pub struct SemaResult {
    pub object: Option<ObjectCode>,
    pub diagnostics: Vec<Diagnostic>,
}

/// Parameter class for builtin signatures.
#[derive(Debug, Clone, Copy, PartialEq)]
enum P {
    /// Any numeric scalar.
    Num,
    /// Any pointer (or view — views decay for the generic API shims).
    AnyPtr,
    /// Pointer to pointer (e.g. `cudaMalloc(&ptr, n)`).
    PtrPtr,
    /// String literal / char pointer.
    Str,
    /// Anything.
    Any,
}

struct Builtin {
    params: &'static [P],
    variadic: bool,
    ret: Type,
    /// Requires `features.cuda`.
    needs_cuda: bool,
    /// Requires `features.curand` (and cuda).
    needs_curand: bool,
    /// Counts as a libm reference (link-time `-lm` requirement).
    libm: bool,
}

fn builtin_table() -> HashMap<&'static str, Builtin> {
    fn b(params: &'static [P], ret: Type) -> Builtin {
        Builtin {
            params,
            variadic: false,
            ret,
            needs_cuda: false,
            needs_curand: false,
            libm: false,
        }
    }
    fn libm(params: &'static [P], ret: Type) -> Builtin {
        Builtin {
            libm: true,
            ..b(params, ret)
        }
    }
    fn cuda(params: &'static [P], ret: Type) -> Builtin {
        Builtin {
            needs_cuda: true,
            ..b(params, ret)
        }
    }
    fn curand(params: &'static [P], ret: Type) -> Builtin {
        Builtin {
            needs_cuda: true,
            needs_curand: true,
            ..b(params, ret)
        }
    }
    let dbl = Type::Scalar(ScalarType::Double);
    let flt = Type::Scalar(ScalarType::Float);
    let int = Type::INT;
    let voidp = Type::ptr(Type::VOID);

    let mut m = HashMap::new();
    // stdio / stdlib
    m.insert(
        "printf",
        Builtin {
            variadic: true,
            ..b(&[P::Str], int.clone())
        },
    );
    m.insert(
        "fprintf",
        Builtin {
            variadic: true,
            ..b(&[P::Any, P::Str], int.clone())
        },
    );
    m.insert("malloc", b(&[P::Num], voidp.clone()));
    m.insert("calloc", b(&[P::Num, P::Num], voidp.clone()));
    m.insert("free", b(&[P::AnyPtr], Type::VOID));
    m.insert("memset", b(&[P::AnyPtr, P::Num, P::Num], voidp.clone()));
    m.insert("memcpy", b(&[P::AnyPtr, P::AnyPtr, P::Num], voidp));
    m.insert("strcmp", b(&[P::Str, P::Str], int.clone()));
    m.insert("atoi", b(&[P::Str], int.clone()));
    m.insert("atol", b(&[P::Str], Type::Scalar(ScalarType::Long)));
    m.insert("atof", b(&[P::Str], dbl.clone()));
    m.insert("exit", b(&[P::Num], Type::VOID));
    m.insert("abs", b(&[P::Num], int.clone()));
    m.insert("labs", b(&[P::Num], Type::Scalar(ScalarType::Long)));
    m.insert("min", b(&[P::Num, P::Num], int.clone()));
    m.insert("max", b(&[P::Num, P::Num], int.clone()));
    m.insert("rand", b(&[], int.clone()));
    m.insert("srand", b(&[P::Num], Type::VOID));
    m.insert(
        "assert",
        Builtin {
            variadic: false,
            ..b(&[P::Any], Type::VOID)
        },
    );
    // omp runtime (omp.h links without -fopenmp too; stubs exist)
    m.insert("omp_get_wtime", b(&[], dbl.clone()));
    m.insert("omp_get_num_threads", b(&[], int.clone()));
    m.insert("omp_get_max_threads", b(&[], int.clone()));
    m.insert("omp_get_thread_num", b(&[], int.clone()));
    m.insert("omp_get_num_devices", b(&[], int.clone()));
    m.insert("omp_is_initial_device", b(&[], int.clone()));
    m.insert("omp_set_num_threads", b(&[P::Num], Type::VOID));
    // libm
    for name in [
        "sqrt", "fabs", "exp", "log", "log2", "floor", "ceil", "sin", "cos", "tanh", "erf",
    ] {
        m.insert(name, libm(&[P::Num], dbl.clone()));
    }
    for name in ["pow", "fmax", "fmin", "fmod"] {
        m.insert(name, libm(&[P::Num, P::Num], dbl.clone()));
    }
    for name in [
        "sqrtf", "fabsf", "expf", "logf", "log2f", "floorf", "ceilf", "sinf", "cosf", "tanhf",
        "coshf", "erff",
    ] {
        m.insert(name, libm(&[P::Num], flt.clone()));
    }
    for name in ["powf", "fmaxf", "fminf"] {
        m.insert(name, libm(&[P::Num, P::Num], flt.clone()));
    }
    // CUDA runtime API
    m.insert("cudaMalloc", cuda(&[P::PtrPtr, P::Num], int.clone()));
    m.insert(
        "cudaMemcpy",
        cuda(&[P::AnyPtr, P::AnyPtr, P::Num, P::Num], int.clone()),
    );
    m.insert(
        "cudaMemset",
        cuda(&[P::AnyPtr, P::Num, P::Num], int.clone()),
    );
    m.insert("cudaFree", cuda(&[P::AnyPtr], int.clone()));
    m.insert("cudaDeviceSynchronize", cuda(&[], int.clone()));
    m.insert("cudaGetLastError", cuda(&[], int.clone()));
    m.insert(
        "cudaGetErrorString",
        cuda(&[P::Num], Type::ptr(Type::Scalar(ScalarType::Char))),
    );
    m.insert("atomicAdd", cuda(&[P::AnyPtr, P::Num], dbl.clone()));
    // cuRAND device API
    m.insert(
        "curand_init",
        curand(&[P::Num, P::Num, P::Num, P::AnyPtr], Type::VOID),
    );
    m.insert("curand", curand(&[P::AnyPtr], int.clone()));
    m.insert("curand_uniform", curand(&[P::AnyPtr], flt));
    m.insert("curand_uniform_double", curand(&[P::AnyPtr], dbl));
    m
}

/// Builtin integer constants (CUDA enums, limits).
fn builtin_constants(features: &CompileFeatures) -> HashMap<&'static str, Type> {
    let mut m = HashMap::new();
    m.insert("RAND_MAX", Type::INT);
    m.insert("NULL", Type::ptr(Type::VOID));
    m.insert("INT_MAX", Type::INT);
    m.insert("DBL_MAX", Type::Scalar(ScalarType::Double));
    if features.cuda {
        for c in [
            "cudaMemcpyHostToDevice",
            "cudaMemcpyDeviceToHost",
            "cudaMemcpyDeviceToDevice",
            "cudaSuccess",
        ] {
            m.insert(c, Type::INT);
        }
    }
    m
}

struct UserFn {
    ret: Type,
    params: Vec<Param>,
    quals: FnQuals,
    defined: bool,
    referenced: std::cell::Cell<bool>,
}

pub struct Checker<'a> {
    features: &'a CompileFeatures,
    source: String,
    builtins: HashMap<&'static str, Builtin>,
    constants: HashMap<&'static str, Type>,
    structs: BTreeMap<String, StructDef>,
    functions: BTreeMap<String, UserFn>,
    globals: HashMap<String, Type>,
    scopes: Vec<HashMap<String, Type>>,
    diags: Vec<Diagnostic>,
    in_kernel: bool,
    in_lambda_device: bool,
    uses_libm: bool,
}

/// Check a translation unit, producing an object on success.
pub fn check(
    tu: &TranslationUnit,
    source_path: &str,
    object_name: &str,
    features: &CompileFeatures,
) -> SemaResult {
    let mut ck = Checker {
        features,
        source: source_path.to_string(),
        builtins: builtin_table(),
        constants: builtin_constants(features),
        structs: BTreeMap::new(),
        functions: BTreeMap::new(),
        globals: HashMap::new(),
        scopes: vec![],
        diags: vec![],
        in_kernel: false,
        in_lambda_device: false,
        uses_libm: false,
    };
    // curandState is a library-provided opaque struct.
    if features.cuda && features.curand {
        ck.structs.insert(
            "curandState".to_string(),
            StructDef {
                name: "curandState".into(),
                fields: vec![],
                is_typedef: true,
                span: minihpc_lang::span::Span::DUMMY,
            },
        );
    }

    // Pass 1: collect top-level declarations.
    // Object-like macros from headers behave as constants across the TU
    // (lexer-level expansion is per-file; cross-file uses resolve here).
    let mut define_globals: Vec<VarDecl> = Vec::new();
    for item in &tu.ast.items {
        if let ItemKind::Define { name, body_text } = &item.kind {
            if let Ok(e) = minihpc_lang::parser::parse_expr_str(body_text) {
                let ty = match &e.kind {
                    ExprKind::FloatLit(_) => Type::DOUBLE,
                    _ => Type::INT,
                };
                ck.globals.insert(name.clone(), ty.clone());
                define_globals.push(VarDecl {
                    name: name.clone(),
                    ty,
                    array_dims: vec![],
                    init: Some(Init::Expr(e)),
                    is_static: true,
                });
            }
        }
    }
    for item in &tu.ast.items {
        match &item.kind {
            ItemKind::Struct(s) => {
                ck.structs.insert(s.name.clone(), s.clone());
            }
            ItemKind::Function(f) => {
                let entry = ck.functions.entry(f.name.clone());
                match entry {
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        if f.is_definition() {
                            if e.get().defined {
                                ck.diags.push(Diagnostic::error(
                                    ErrorCategory::CodeSyntax,
                                    source_path,
                                    format!("redefinition of '{}'", f.name),
                                ));
                            }
                            e.get_mut().defined = true;
                            e.get_mut().ret = f.ret.clone();
                            e.get_mut().params = f.params.clone();
                            e.get_mut().quals = f.quals;
                        }
                    }
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert(UserFn {
                            ret: f.ret.clone(),
                            params: f.params.clone(),
                            quals: f.quals,
                            defined: f.is_definition(),
                            referenced: std::cell::Cell::new(false),
                        });
                    }
                }
            }
            ItemKind::Global(d) => {
                let ty = decl_runtime_type(d);
                ck.globals.insert(d.name.clone(), ty);
            }
            _ => {}
        }
    }

    // Pass 2: check bodies.
    for item in &tu.ast.items {
        match &item.kind {
            ItemKind::Function(f) => {
                if let Some(body) = &f.body {
                    ck.check_function_body(f, body);
                }
            }
            ItemKind::Global(d) => {
                if let Some(Init::Expr(e)) = &d.init {
                    ck.scopes.push(HashMap::new());
                    ck.infer(e);
                    ck.scopes.pop();
                }
            }
            _ => {}
        }
    }

    let has_errors = ck.diags.iter().any(Diagnostic::is_error);
    let object = if has_errors {
        None
    } else {
        let mut functions = BTreeMap::new();
        let mut globals = define_globals;
        for item in &tu.ast.items {
            match &item.kind {
                ItemKind::Function(f) if f.is_definition() => {
                    functions.insert(f.name.clone(), f.clone());
                }
                ItemKind::Global(d) => globals.push(d.clone()),
                _ => {}
            }
        }
        let undefined: Vec<String> = ck
            .functions
            .iter()
            .filter(|(_, uf)| !uf.defined && uf.referenced.get())
            .map(|(n, _)| n.clone())
            .collect();
        Some(ObjectCode {
            source: source_path.to_string(),
            name: object_name.to_string(),
            functions,
            structs: ck.structs.clone(),
            globals,
            undefined,
            uses_libm: ck.uses_libm,
            features: *features,
            usage: detect_usage(&tu.ast),
        })
    };
    SemaResult {
        object,
        diagnostics: ck.diags,
    }
}

/// The type a declaration has at use sites (arrays decay to pointers).
fn decl_runtime_type(d: &VarDecl) -> Type {
    let mut ty = d.ty.clone();
    for _ in &d.array_dims {
        ty = Type::ptr(ty);
    }
    ty
}

impl<'a> Checker<'a> {
    fn error(&mut self, category: ErrorCategory, message: impl Into<String>) {
        let d = Diagnostic::error(category, self.source.clone(), message);
        self.diags.push(d);
    }

    fn warn(&mut self, category: ErrorCategory, message: impl Into<String>) {
        let d = Diagnostic::warning(category, self.source.clone(), message);
        self.diags.push(d);
    }

    fn lookup_var(&self, name: &str) -> Option<Type> {
        for scope in self.scopes.iter().rev() {
            if let Some(t) = scope.get(name) {
                return Some(t.clone());
            }
        }
        self.globals.get(name).cloned()
    }

    fn declare(&mut self, name: &str, ty: Type) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.insert(name.to_string(), ty);
        }
    }

    fn check_function_body(&mut self, f: &Function, body: &Block) {
        self.in_kernel = f.quals.cuda_global || f.quals.cuda_device;
        self.scopes.push(HashMap::new());
        for p in &f.params {
            if !p.name.is_empty() {
                self.declare(&p.name, p.ty.clone());
            }
        }
        for s in &body.stmts {
            self.check_stmt(s);
        }
        self.scopes.pop();
        self.in_kernel = false;
    }

    fn check_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl(d) => self.check_decl(d),
            StmtKind::Expr(e) => {
                self.infer(e);
            }
            StmtKind::If { cond, then, els } => {
                self.infer(cond);
                self.check_stmt(then);
                if let Some(e) = els {
                    self.check_stmt(e);
                }
            }
            StmtKind::While { cond, body } => {
                self.infer(cond);
                self.check_stmt(body);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.check_stmt(i);
                }
                if let Some(c) = cond {
                    self.infer(c);
                }
                if let Some(st) = step {
                    self.infer(st);
                }
                self.check_stmt(body);
                self.scopes.pop();
            }
            StmtKind::Return(Some(e)) => {
                self.infer(e);
            }
            StmtKind::Block(b) => {
                self.scopes.push(HashMap::new());
                for s in &b.stmts {
                    self.check_stmt(s);
                }
                self.scopes.pop();
            }
            StmtKind::Omp { directive, body } => {
                self.check_omp(directive, body.as_deref());
            }
            _ => {}
        }
    }

    fn check_decl(&mut self, d: &VarDecl) {
        // Named struct types must exist (unless opaque library type).
        if let Type::Named(n) = d.ty.unqualified() {
            if !self.structs.contains_key(n) {
                self.error(
                    ErrorCategory::UndeclaredIdentifier,
                    format!("unknown type name '{n}'"),
                );
            }
        }
        if let Type::View { .. } = d.ty.unqualified() {
            if !self.features.kokkos {
                self.error(
                    ErrorCategory::UndeclaredIdentifier,
                    "use of undeclared identifier 'Kokkos'",
                );
            }
        }
        for dim in &d.array_dims {
            self.infer(dim);
        }
        match &d.init {
            Some(Init::Expr(e)) => {
                let rhs = self.infer(e);
                let lhs = decl_runtime_type(d);
                self.check_assignable(&lhs, rhs.as_ref(), &d.name);
            }
            Some(Init::List(es)) => {
                for e in es {
                    self.infer(e);
                }
            }
            Some(Init::Ctor(es)) => {
                for e in es {
                    self.infer(e);
                }
            }
            None => {}
        }
        self.declare(&d.name, decl_runtime_type(d));
    }

    fn check_assignable(&mut self, lhs: &Type, rhs: Option<&Type>, what: &str) {
        let Some(rhs) = rhs else { return };
        if !types_compatible(lhs, rhs) {
            self.error(
                ErrorCategory::ArgTypeMismatch,
                format!(
                    "incompatible types assigning to '{}' from '{}' in '{}'",
                    minihpc_lang::printer::type_to_string(lhs),
                    minihpc_lang::printer::type_to_string(rhs),
                    what
                ),
            );
        }
    }

    // -- OpenMP directive validation ----------------------------------------

    fn check_omp(&mut self, d: &OmpDirective, body: Option<&Stmt>) {
        if !self.features.openmp {
            self.warn(
                ErrorCategory::OmpInvalidDirective,
                format!("'#pragma {}' ignored: compiled without -fopenmp", d.text()),
            );
        }
        // Clause variable references must resolve.
        for clause in &d.clauses {
            match clause {
                OmpClause::Map { sections, .. } => {
                    for s in sections {
                        if self.lookup_var(&s.var).is_none() {
                            self.error(
                                ErrorCategory::UndeclaredIdentifier,
                                format!("use of undeclared identifier '{}' in map clause", s.var),
                            );
                        }
                        for (lo, len) in &s.ranges {
                            self.infer(lo);
                            self.infer(len);
                        }
                    }
                }
                OmpClause::Reduction { vars, .. }
                | OmpClause::Private(vars)
                | OmpClause::FirstPrivate(vars)
                | OmpClause::Shared(vars) => {
                    for v in vars {
                        if self.lookup_var(v).is_none() {
                            self.error(
                                ErrorCategory::UndeclaredIdentifier,
                                format!(
                                    "use of undeclared identifier '{}' in {} clause",
                                    v,
                                    clause.name()
                                ),
                            );
                        }
                    }
                }
                OmpClause::NumThreads(e)
                | OmpClause::NumTeams(e)
                | OmpClause::ThreadLimit(e)
                | OmpClause::If(e)
                | OmpClause::Device(e) => {
                    self.infer(e);
                }
                OmpClause::Unknown { name, .. } => {
                    self.warn(
                        ErrorCategory::OmpInvalidDirective,
                        format!("ignoring unknown OpenMP clause '{name}'"),
                    );
                }
                _ => {}
            }
        }
        // Structural rules.
        if d.has(OmpConstruct::Distribute) && !d.has(OmpConstruct::Teams) {
            self.error(
                ErrorCategory::OmpInvalidDirective,
                "region cannot be closely nested inside of a non-teams region; \
                 'distribute' requires 'teams'",
            );
        }
        if d.has(OmpConstruct::Teams) && !d.targets_device() {
            // Paper Listing 4: compiles, executes on the host.
            self.warn(
                ErrorCategory::OmpInvalidDirective,
                "'teams' construct outside a 'target' region executes on the host",
            );
        }
        if d.clauses
            .iter()
            .any(|c| matches!(c, OmpClause::NumThreads(_)))
            && !d.has(OmpConstruct::Parallel)
        {
            self.warn(
                ErrorCategory::OmpInvalidDirective,
                "'num_threads' clause has no effect without a 'parallel' construct",
            );
        }
        if d.map_clauses().next().is_some() && !d.targets_device() {
            self.warn(
                ErrorCategory::OmpInvalidDirective,
                "'map' clause has no effect on a non-target directive",
            );
        }
        // Loop-directive shape.
        if d.is_loop_directive() {
            match body {
                Some(b) if is_for_stmt(b) => {
                    let depth = nested_for_depth(b);
                    let collapse = d.collapse();
                    if (collapse as usize) > depth {
                        self.error(
                            ErrorCategory::OmpInvalidDirective,
                            format!(
                                "collapse({collapse}) requires {collapse} perfectly nested \
                                 loops, but only {depth} found"
                            ),
                        );
                    }
                }
                _ => {
                    self.error(
                        ErrorCategory::OmpInvalidDirective,
                        format!("statement after '#pragma {}' must be a for loop", d.text()),
                    );
                }
            }
        }
        if let Some(b) = body {
            self.check_stmt(b);
        }
    }

    // -- expression type inference -------------------------------------------

    fn infer(&mut self, e: &Expr) -> Option<Type> {
        match &e.kind {
            ExprKind::IntLit(_) => Some(Type::INT),
            ExprKind::FloatLit(_) => Some(Type::DOUBLE),
            ExprKind::StrLit(_) => Some(Type::ptr(Type::Scalar(ScalarType::Char))),
            ExprKind::CharLit(_) => Some(Type::Scalar(ScalarType::Char)),
            ExprKind::BoolLit(_) => Some(Type::Scalar(ScalarType::Bool)),
            ExprKind::Ident(name) => self.infer_ident(name),
            ExprKind::Path(segments) => self.infer_path(segments, &[]),
            ExprKind::Unary { op, expr } => {
                let t = self.infer(expr)?;
                match op {
                    UnaryOp::Deref => match t.unqualified() {
                        Type::Ptr(inner) => Some((**inner).clone()),
                        _ => {
                            self.error(
                                ErrorCategory::ArgTypeMismatch,
                                "indirection requires pointer operand",
                            );
                            None
                        }
                    },
                    UnaryOp::AddrOf => Some(Type::ptr(t)),
                    UnaryOp::Not => Some(Type::Scalar(ScalarType::Bool)),
                    _ => Some(t),
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.infer(lhs);
                let rt = self.infer(rhs);
                self.infer_binary(*op, lt, rt)
            }
            ExprKind::Assign { lhs, rhs, .. } => {
                let lt = self.infer(lhs);
                let rt = self.infer(rhs);
                if let (Some(lt), Some(rt)) = (&lt, &rt) {
                    if !types_compatible(lt, rt) {
                        self.error(
                            ErrorCategory::ArgTypeMismatch,
                            format!(
                                "incompatible types assigning '{}' to '{}'",
                                minihpc_lang::printer::type_to_string(rt),
                                minihpc_lang::printer::type_to_string(lt),
                            ),
                        );
                    }
                }
                lt
            }
            ExprKind::Ternary { cond, then, els } => {
                self.infer(cond);
                let t = self.infer(then);
                self.infer(els);
                t
            }
            ExprKind::Call { callee, args } => self.infer_call(callee, args),
            ExprKind::KernelLaunch {
                kernel,
                grid,
                block,
                args,
            } => self.infer_launch(kernel, grid, block, args),
            ExprKind::Index { base, index } => {
                let bt = self.infer(base);
                let it = self.infer(index);
                if let Some(it) = &it {
                    if !it.is_numeric() {
                        self.error(
                            ErrorCategory::ArgTypeMismatch,
                            "array subscript is not an integer",
                        );
                    }
                }
                match bt.as_ref().map(Type::unqualified) {
                    Some(Type::Ptr(inner)) => Some((**inner).clone()),
                    Some(_) => {
                        self.error(
                            ErrorCategory::ArgTypeMismatch,
                            "subscripted value is not an array or pointer",
                        );
                        None
                    }
                    None => None,
                }
            }
            ExprKind::Member {
                base,
                member,
                arrow,
            } => self.infer_member(base, member, *arrow),
            ExprKind::Cast { ty, expr } => {
                self.infer(expr);
                Some(ty.clone())
            }
            ExprKind::SizeOfType(_) => Some(Type::Scalar(ScalarType::SizeT)),
            ExprKind::SizeOfExpr(e) => {
                // `sizeof(Name)` where Name is a struct type parses as an
                // expression; accept it silently when the type exists.
                let is_type_name = matches!(
                    &e.kind,
                    ExprKind::Ident(n) if self.structs.contains_key(n) && self.lookup_var(n).is_none()
                );
                if !is_type_name {
                    self.infer(e);
                }
                Some(Type::Scalar(ScalarType::SizeT))
            }
            ExprKind::Lambda {
                capture,
                params,
                body,
            } => {
                if *capture == CaptureMode::KokkosLambda && !self.features.kokkos {
                    self.error(
                        ErrorCategory::UndeclaredIdentifier,
                        "use of undeclared identifier 'KOKKOS_LAMBDA'",
                    );
                }
                self.scopes.push(HashMap::new());
                for p in params {
                    self.declare(&p.name, p.ty.clone());
                }
                let was = self.in_lambda_device;
                self.in_lambda_device = true;
                for s in &body.stmts {
                    self.check_stmt(s);
                }
                self.in_lambda_device = was;
                self.scopes.pop();
                None
            }
            ExprKind::Paren(inner) => self.infer(inner),
        }
    }

    fn infer_ident(&mut self, name: &str) -> Option<Type> {
        if let Some(t) = self.lookup_var(name) {
            return Some(t);
        }
        if let Some(t) = self.constants.get(name) {
            return Some(t.clone());
        }
        // CUDA kernel builtins.
        if matches!(name, "threadIdx" | "blockIdx" | "blockDim" | "gridDim") {
            if self.features.cuda && self.in_kernel {
                return Some(Type::Dim3);
            }
            self.error(
                ErrorCategory::UndeclaredIdentifier,
                format!("use of undeclared identifier '{name}'"),
            );
            return None;
        }
        // A function name used as a value (e.g. passed as callback) — not
        // modelled; report undeclared only if it is not a known function.
        if self.functions.contains_key(name) || self.builtins.contains_key(name) {
            return None;
        }
        self.error(
            ErrorCategory::UndeclaredIdentifier,
            format!("use of undeclared identifier '{name}'"),
        );
        None
    }

    fn infer_path(&mut self, segments: &[String], _args: &[Expr]) -> Option<Type> {
        if segments.first().map(String::as_str) == Some("Kokkos") && !self.features.kokkos {
            self.error(
                ErrorCategory::UndeclaredIdentifier,
                "use of undeclared identifier 'Kokkos'",
            );
        }
        None
    }

    fn infer_call(&mut self, callee: &Expr, args: &[Expr]) -> Option<Type> {
        // View element access: `v(i)` / `v(i, j)`.
        if let ExprKind::Ident(name) = &callee.kind {
            if let Some(Type::View { elem, rank }) =
                self.lookup_var(name).map(|t| t.unqualified().clone())
            {
                if args.len() != rank as usize {
                    self.error(
                        ErrorCategory::ArgTypeMismatch,
                        format!(
                            "view '{name}' has rank {rank} but is accessed with {} indices",
                            args.len()
                        ),
                    );
                }
                for a in args {
                    self.infer(a);
                }
                return Some(Type::Scalar(elem));
            }
            return self.infer_named_call(name, args);
        }
        // Method-style calls: `view.extent(i)`.
        if let ExprKind::Member { base, member, .. } = &callee.kind {
            let bt = self.infer(base);
            if let Some(Type::View { .. }) = bt.as_ref().map(Type::unqualified) {
                match member.as_str() {
                    "extent" => {
                        for a in args {
                            self.infer(a);
                        }
                        return Some(Type::Scalar(ScalarType::SizeT));
                    }
                    _ => {
                        self.error(
                            ErrorCategory::ArgTypeMismatch,
                            format!("no member named '{member}' in 'Kokkos::View'"),
                        );
                        return None;
                    }
                }
            }
            for a in args {
                self.infer(a);
            }
            return None;
        }
        // Namespaced calls: `Kokkos::parallel_for(...)`.
        if let ExprKind::Path(segments) = &callee.kind {
            return self.infer_kokkos_call(segments, args);
        }
        for a in args {
            self.infer(a);
        }
        None
    }

    fn infer_named_call(&mut self, name: &str, args: &[Expr]) -> Option<Type> {
        // User-defined function?
        if let Some(uf) = self.functions.get(name) {
            uf.referenced.set(true);
            let params = uf.params.clone();
            let ret = uf.ret.clone();
            let quals = uf.quals;
            if quals.cuda_global && !self.in_kernel {
                self.error(
                    ErrorCategory::ArgTypeMismatch,
                    format!("call to __global__ function '{name}' requires a kernel launch (`<<<...>>>`)"),
                );
            }
            self.check_call_args(name, &params, args, false);
            return Some(ret);
        }
        // Builtin?
        let (needs_cuda, needs_curand, libm, params, variadic, ret) =
            if let Some(b) = self.builtins.get(name) {
                (
                    b.needs_cuda,
                    b.needs_curand,
                    b.libm,
                    b.params,
                    b.variadic,
                    b.ret.clone(),
                )
            } else {
                self.error(
                    ErrorCategory::UndeclaredIdentifier,
                    format!("use of undeclared identifier '{name}'"),
                );
                for a in args {
                    self.infer(a);
                }
                return None;
            };
        if needs_cuda && !self.features.cuda || needs_curand && !self.features.curand {
            self.error(
                ErrorCategory::UndeclaredIdentifier,
                format!("use of undeclared identifier '{name}'"),
            );
            for a in args {
                self.infer(a);
            }
            return None;
        }
        if libm {
            self.uses_libm = true;
        }
        self.check_builtin_args(name, params, variadic, args);
        Some(ret)
    }

    fn infer_kokkos_call(&mut self, segments: &[String], args: &[Expr]) -> Option<Type> {
        if segments.first().map(String::as_str) != Some("Kokkos") {
            for a in args {
                self.infer(a);
            }
            return None;
        }
        if !self.features.kokkos {
            self.error(
                ErrorCategory::UndeclaredIdentifier,
                "use of undeclared identifier 'Kokkos'",
            );
            for a in args {
                self.infer(a);
            }
            return None;
        }
        let func = segments.get(1).map(String::as_str).unwrap_or("");
        // Template suffixes were folded into the segment (`RangePolicy<>`).
        let func_base = func.split('<').next().unwrap_or(func);
        match func_base {
            "initialize" | "finalize" | "fence" => {
                for a in args {
                    self.infer(a);
                }
                Some(Type::VOID)
            }
            "parallel_for" | "parallel_reduce" => {
                // Optional label string, then policy/count, then functor,
                // then (for reduce) result reference.
                let mut rest = args;
                if matches!(rest.first().map(|a| &a.kind), Some(ExprKind::StrLit(_))) {
                    rest = &rest[1..];
                }
                let min_args = if func_base == "parallel_for" { 2 } else { 3 };
                if rest.len() < min_args {
                    self.error(
                        ErrorCategory::ArgTypeMismatch,
                        format!(
                            "too few arguments to 'Kokkos::{func_base}': expected at least \
                             {min_args}, have {}",
                            rest.len()
                        ),
                    );
                }
                for a in args {
                    self.infer(a);
                }
                // Functor must be a lambda.
                if rest.len() >= 2 && !matches!(rest[1].kind, ExprKind::Lambda { .. }) {
                    self.error(
                        ErrorCategory::ArgTypeMismatch,
                        format!("'Kokkos::{func_base}' requires a lambda functor argument"),
                    );
                }
                Some(Type::VOID)
            }
            "deep_copy" => {
                if args.len() != 2 {
                    self.error(
                        ErrorCategory::ArgTypeMismatch,
                        format!(
                            "'Kokkos::deep_copy' expects 2 arguments, have {}",
                            args.len()
                        ),
                    );
                }
                for a in args {
                    self.infer(a);
                }
                Some(Type::VOID)
            }
            "create_mirror_view" => {
                let t = args.first().and_then(|a| self.infer(a));
                if args.len() != 1
                    || !matches!(t.as_ref().map(Type::unqualified), Some(Type::View { .. }))
                {
                    self.error(
                        ErrorCategory::ArgTypeMismatch,
                        "'Kokkos::create_mirror_view' expects a view argument",
                    );
                }
                t
            }
            "RangePolicy" | "MDRangePolicy" => {
                for a in args {
                    self.infer(a);
                }
                Some(Type::Named("Kokkos::Policy".into()))
            }
            other => {
                self.error(
                    ErrorCategory::UndeclaredIdentifier,
                    format!("no member named '{other}' in namespace 'Kokkos'"),
                );
                for a in args {
                    self.infer(a);
                }
                None
            }
        }
    }

    fn infer_launch(
        &mut self,
        kernel: &str,
        grid: &Expr,
        block: &Expr,
        args: &[Expr],
    ) -> Option<Type> {
        if !self.features.cuda {
            self.error(
                ErrorCategory::CodeSyntax,
                "kernel launch syntax '<<<...>>>' requires CUDA compilation (nvcc)",
            );
            return None;
        }
        for dim in [grid, block] {
            if let Some(t) = self.infer(dim) {
                if !matches!(t.unqualified(), Type::Dim3) && !t.is_numeric() {
                    self.error(
                        ErrorCategory::ArgTypeMismatch,
                        "kernel launch configuration must be an integer or dim3",
                    );
                }
            }
        }
        let Some(uf) = self.functions.get(kernel) else {
            self.error(
                ErrorCategory::UndeclaredIdentifier,
                format!("use of undeclared identifier '{kernel}'"),
            );
            for a in args {
                self.infer(a);
            }
            return None;
        };
        uf.referenced.set(true);
        let params = uf.params.clone();
        let is_global = uf.quals.cuda_global;
        if !is_global {
            self.error(
                ErrorCategory::ArgTypeMismatch,
                format!("kernel call to non-__global__ function '{kernel}'"),
            );
        }
        self.check_call_args(kernel, &params, args, false);
        Some(Type::VOID)
    }

    fn check_call_args(&mut self, name: &str, params: &[Param], args: &[Expr], variadic: bool) {
        if args.len() < params.len() {
            self.error(
                ErrorCategory::ArgTypeMismatch,
                format!(
                    "too few arguments to function call '{name}': expected {}, have {}",
                    params.len(),
                    args.len()
                ),
            );
        } else if args.len() > params.len() && !variadic {
            self.error(
                ErrorCategory::ArgTypeMismatch,
                format!(
                    "too many arguments to function call '{name}': expected {}, have {}",
                    params.len(),
                    args.len()
                ),
            );
        }
        for (i, a) in args.iter().enumerate() {
            let at = self.infer(a);
            if let (Some(p), Some(at)) = (params.get(i), at.as_ref()) {
                if !types_compatible(&p.ty, at) {
                    self.error(
                        ErrorCategory::ArgTypeMismatch,
                        format!(
                            "no matching function for call to '{name}': argument {} has type \
                             '{}' but parameter '{}' has type '{}'",
                            i + 1,
                            minihpc_lang::printer::type_to_string(at),
                            p.name,
                            minihpc_lang::printer::type_to_string(&p.ty),
                        ),
                    );
                }
            }
        }
    }

    fn check_builtin_args(&mut self, name: &str, params: &[P], variadic: bool, args: &[Expr]) {
        if args.len() < params.len() || (args.len() > params.len() && !variadic) {
            self.error(
                ErrorCategory::ArgTypeMismatch,
                format!(
                    "function '{name}' expects {}{} arguments, have {}",
                    params.len(),
                    if variadic { "+" } else { "" },
                    args.len()
                ),
            );
        }
        for (i, a) in args.iter().enumerate() {
            let at = self.infer(a);
            let Some(p) = params.get(i) else { continue };
            let Some(at) = at else { continue };
            let ok = match p {
                P::Num => at.is_numeric(),
                P::AnyPtr => at.is_pointer() || at.is_view(),
                P::PtrPtr => matches!(at.unqualified(), Type::Ptr(inner) if inner.is_pointer()),
                P::Str => matches!(
                    at.unqualified(),
                    Type::Ptr(inner) if matches!(inner.unqualified(), Type::Scalar(ScalarType::Char))
                ),
                P::Any => true,
            };
            if !ok {
                self.error(
                    ErrorCategory::ArgTypeMismatch,
                    format!(
                        "no matching function for call to '{name}': argument {} has \
                         incompatible type '{}'",
                        i + 1,
                        minihpc_lang::printer::type_to_string(&at),
                    ),
                );
            }
        }
    }

    fn infer_member(&mut self, base: &Expr, member: &str, arrow: bool) -> Option<Type> {
        let bt = self.infer(base)?;
        let (struct_ty, is_ptr) = match bt.unqualified() {
            Type::Ptr(inner) => ((**inner).clone(), true),
            other => (other.clone(), false),
        };
        if arrow && !is_ptr {
            self.error(
                ErrorCategory::ArgTypeMismatch,
                format!("member reference type is not a pointer; did you mean '.{member}'?"),
            );
        } else if !arrow && is_ptr {
            self.error(
                ErrorCategory::ArgTypeMismatch,
                format!("member reference type is a pointer; did you mean '->{member}'?"),
            );
        }
        match struct_ty.unqualified() {
            Type::Dim3 => {
                if matches!(member, "x" | "y" | "z") {
                    Some(Type::INT)
                } else {
                    self.error(
                        ErrorCategory::ArgTypeMismatch,
                        format!("no member named '{member}' in 'dim3'"),
                    );
                    None
                }
            }
            Type::Named(n) => {
                let field_ty = self
                    .structs
                    .get(n)
                    .and_then(|s| s.fields.iter().find(|f| f.name == member))
                    .map(|f| {
                        let mut t = f.ty.clone();
                        for _ in &f.array_dims {
                            t = Type::ptr(t);
                        }
                        t
                    });
                match field_ty {
                    Some(t) => Some(t),
                    None => {
                        if self.structs.contains_key(n) {
                            self.error(
                                ErrorCategory::ArgTypeMismatch,
                                format!("no member named '{member}' in '{n}'"),
                            );
                        }
                        None
                    }
                }
            }
            _ => {
                self.error(
                    ErrorCategory::ArgTypeMismatch,
                    format!(
                        "member reference base type '{}' is not a structure",
                        minihpc_lang::printer::type_to_string(&struct_ty)
                    ),
                );
                None
            }
        }
    }

    fn infer_binary(&mut self, op: BinOp, lt: Option<Type>, rt: Option<Type>) -> Option<Type> {
        let (lt, rt) = (lt?, rt?);
        let l = lt.unqualified();
        let r = rt.unqualified();
        if op.is_comparison() || op.is_logical() {
            return Some(Type::Scalar(ScalarType::Bool));
        }
        match (l, r) {
            (Type::Ptr(_), t) if t.is_numeric() && matches!(op, BinOp::Add | BinOp::Sub) => {
                Some(l.clone())
            }
            (t, Type::Ptr(_)) if t.is_numeric() && op == BinOp::Add => Some(r.clone()),
            (Type::Ptr(_), Type::Ptr(_)) if op == BinOp::Sub => {
                Some(Type::Scalar(ScalarType::Long))
            }
            _ if l.is_numeric() && r.is_numeric() => {
                // Usual arithmetic conversions, collapsed to int/double.
                let lf = matches!(l, Type::Scalar(s) if s.is_float());
                let rf = matches!(r, Type::Scalar(s) if s.is_float());
                if lf || rf {
                    Some(Type::DOUBLE)
                } else {
                    Some(l.clone())
                }
            }
            _ => {
                self.error(
                    ErrorCategory::ArgTypeMismatch,
                    format!(
                        "invalid operands to binary expression ('{}' and '{}')",
                        minihpc_lang::printer::type_to_string(&lt),
                        minihpc_lang::printer::type_to_string(&rt),
                    ),
                );
                None
            }
        }
    }
}

fn is_for_stmt(s: &Stmt) -> bool {
    matches!(s.kind, StmtKind::For { .. })
}

/// Depth of the perfectly nested loop chain starting at `s` (a `for` whose
/// body is exactly another `for`, possibly wrapped in a single-statement
/// block, extends the chain).
fn nested_for_depth(s: &Stmt) -> usize {
    match &s.kind {
        StmtKind::For { body, .. } => {
            let inner = match &body.kind {
                StmtKind::Block(b) if b.stmts.len() == 1 => &b.stmts[0],
                _ => body,
            };
            1 + match &inner.kind {
                StmtKind::For { .. } => nested_for_depth(inner),
                _ => 0,
            }
        }
        _ => 0,
    }
}

/// Loose type compatibility for assignment and argument passing.
fn types_compatible(lhs: &Type, rhs: &Type) -> bool {
    let l = lhs.unqualified();
    let r = rhs.unqualified();
    match (l, r) {
        _ if l == r => true,
        (Type::Scalar(a), Type::Scalar(b)) => {
            a.is_integer() && b.is_integer()
                || a.is_float() && (b.is_float() || b.is_integer())
                || a.is_integer() && b.is_float() // narrowing allowed in C
        }
        // bool accepts anything numeric or pointer (truthiness).
        (Type::Scalar(ScalarType::Bool), _) => r.is_numeric() || r.is_pointer(),
        (Type::Ptr(a), Type::Ptr(b)) => {
            matches!(a.unqualified(), Type::Scalar(ScalarType::Void))
                || matches!(b.unqualified(), Type::Scalar(ScalarType::Void))
                || a.unqualified() == b.unqualified()
        }
        (Type::Dim3, t) if t.is_numeric() => true, // implicit dim3(int)
        (Type::View { elem: e1, rank: r1 }, Type::View { elem: e2, rank: r2 }) => {
            e1 == e2 && r1 == r2
        }
        (Type::Named(a), Type::Named(b)) => a == b,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::assemble;
    use minihpc_lang::repo::SourceRepo;

    fn check_src(src: &str, features: CompileFeatures) -> SemaResult {
        let repo = SourceRepo::new().with_file("main.cpp", src);
        let tu = assemble(&repo, "main.cpp", &features).expect("preprocess ok");
        check(&tu, "main.cpp", "main.o", &features)
    }

    fn cuda_features() -> CompileFeatures {
        CompileFeatures {
            cuda: true,
            curand: true,
            libm: true,
            ..CompileFeatures::default()
        }
    }

    fn omp_features() -> CompileFeatures {
        CompileFeatures {
            openmp: true,
            offload: true,
            libm: true,
            ..CompileFeatures::default()
        }
    }

    fn first_error(r: &SemaResult) -> &Diagnostic {
        r.diagnostics
            .iter()
            .find(|d| d.is_error())
            .expect("expected an error")
    }

    #[test]
    fn clean_cuda_program_checks() {
        let src = r#"
__global__ void k(const int* in, int* out, size_t n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) out[i] = in[i] ^ 1;
}
int main() {
    int* d_in;
    int* d_out;
    cudaMalloc(&d_in, 64 * sizeof(int));
    cudaMalloc(&d_out, 64 * sizeof(int));
    k<<<2, 32>>>(d_in, d_out, 64);
    cudaDeviceSynchronize();
    cudaFree(d_in);
    cudaFree(d_out);
    return 0;
}
"#;
        let r = check_src(src, cuda_features());
        assert!(
            r.object.is_some(),
            "diags: {:?}",
            r.diagnostics
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn undeclared_identifier() {
        let r = check_src(
            "int main() { x = 3; return 0; }",
            CompileFeatures::default(),
        );
        assert!(r.object.is_none());
        let d = first_error(&r);
        assert_eq!(d.category, ErrorCategory::UndeclaredIdentifier);
        assert!(d.message.contains("'x'"));
    }

    #[test]
    fn undeclared_function() {
        let r = check_src(
            "int main() { computeWithCuda(); return 0; }",
            CompileFeatures::default(),
        );
        assert_eq!(
            first_error(&r).category,
            ErrorCategory::UndeclaredIdentifier
        );
    }

    #[test]
    fn arity_mismatch() {
        let src = "void f(int a, int b) { }\nint main() { f(1); return 0; }";
        let r = check_src(src, CompileFeatures::default());
        let d = first_error(&r);
        assert_eq!(d.category, ErrorCategory::ArgTypeMismatch);
        assert!(d.message.contains("too few arguments"));
    }

    #[test]
    fn arg_type_mismatch() {
        let src = "void f(int* p) { }\nint main() { double d = 0.0; f(d); return 0; }";
        let r = check_src(src, CompileFeatures::default());
        assert_eq!(first_error(&r).category, ErrorCategory::ArgTypeMismatch);
    }

    #[test]
    fn cuda_builtins_unavailable_without_nvcc() {
        let src = "int main() { int* p; cudaMalloc(&p, 4); return 0; }";
        let r = check_src(src, CompileFeatures::default());
        assert_eq!(
            first_error(&r).category,
            ErrorCategory::UndeclaredIdentifier
        );
    }

    #[test]
    fn thread_idx_outside_kernel_is_undeclared() {
        let src = "int main() { int i = threadIdx.x; return i; }";
        let r = check_src(src, cuda_features());
        assert_eq!(
            first_error(&r).category,
            ErrorCategory::UndeclaredIdentifier
        );
    }

    #[test]
    fn kernel_launch_without_cuda_is_syntax_error() {
        let src = "void k(int n) { }\nint main() { k<<<1, 2>>>(3); return 0; }";
        let r = check_src(src, omp_features());
        assert_eq!(first_error(&r).category, ErrorCategory::CodeSyntax);
    }

    #[test]
    fn direct_call_to_global_kernel_rejected() {
        let src = "__global__ void k(int n) { }\nint main() { k(3); return 0; }";
        let r = check_src(src, cuda_features());
        let d = first_error(&r);
        assert_eq!(d.category, ErrorCategory::ArgTypeMismatch);
        assert!(d.message.contains("kernel launch"));
    }

    #[test]
    fn launch_of_non_global_rejected() {
        let src = "void f(int n) { }\nint main() { f<<<1, 1>>>(3); return 0; }";
        let r = check_src(src, cuda_features());
        let d = first_error(&r);
        assert!(d.message.contains("non-__global__"));
    }

    #[test]
    fn omp_distribute_without_teams_rejected() {
        let src = r#"
void f(int* a, int n) {
    #pragma omp distribute
    for (int i = 0; i < n; i++) a[i] = i;
}
"#;
        let r = check_src(src, omp_features());
        assert_eq!(first_error(&r).category, ErrorCategory::OmpInvalidDirective);
    }

    #[test]
    fn omp_teams_without_target_is_warning_only() {
        // Paper Listing 4 must *build* (its failure is at run time).
        let src = r#"
void f(int* a, int n) {
    #pragma omp teams distribute collapse(2) num_threads(16)
    for (int i = 0; i < n; i++)
        for (int j = 0; j < n; j++)
            a[i * n + j] = 0;
}
"#;
        let r = check_src(src, omp_features());
        assert!(r.object.is_some(), "{:?}", r.diagnostics);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| !d.is_error() && d.category == ErrorCategory::OmpInvalidDirective));
    }

    #[test]
    fn omp_collapse_requires_nesting() {
        let src = r#"
void f(int* a, int n) {
    #pragma omp target teams distribute parallel for collapse(2) map(tofrom: a[0:n])
    for (int i = 0; i < n; i++) a[i] = i;
}
"#;
        let r = check_src(src, omp_features());
        let d = first_error(&r);
        assert_eq!(d.category, ErrorCategory::OmpInvalidDirective);
        assert!(d.message.contains("collapse(2)"));
    }

    #[test]
    fn omp_loop_directive_requires_for() {
        let src = r#"
void f(int* a, int n) {
    #pragma omp parallel for
    a[0] = 1;
}
"#;
        let r = check_src(src, omp_features());
        assert_eq!(first_error(&r).category, ErrorCategory::OmpInvalidDirective);
    }

    #[test]
    fn omp_map_of_undeclared_var() {
        let src = r#"
void f(int n) {
    #pragma omp target teams distribute parallel for map(tofrom: ghost[0:n])
    for (int i = 0; i < n; i++) { }
}
"#;
        let r = check_src(src, omp_features());
        assert_eq!(
            first_error(&r).category,
            ErrorCategory::UndeclaredIdentifier
        );
    }

    #[test]
    fn kokkos_without_package_is_undeclared() {
        let src = r#"
int main() {
    Kokkos::initialize();
    Kokkos::finalize();
    return 0;
}
"#;
        let r = check_src(src, CompileFeatures::default());
        assert_eq!(
            first_error(&r).category,
            ErrorCategory::UndeclaredIdentifier
        );
        assert!(first_error(&r).message.contains("Kokkos"));
    }

    #[test]
    fn kokkos_program_checks_with_feature() {
        let src = r#"
int main() {
    Kokkos::initialize();
    {
        Kokkos::View<double*> d("d", 100);
        Kokkos::parallel_for(100, KOKKOS_LAMBDA(int i) { d(i) = 2.0 * i; });
        Kokkos::fence();
    }
    Kokkos::finalize();
    return 0;
}
"#;
        let f = CompileFeatures {
            kokkos: true,
            ..CompileFeatures::default()
        };
        let r = check_src(src, f);
        assert!(
            r.object.is_some(),
            "{:?}",
            r.diagnostics
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn view_rank_mismatch() {
        let src = r#"
int main() {
    Kokkos::View<double*> d("d", 100);
    Kokkos::parallel_for(100, KOKKOS_LAMBDA(int i) { d(i, 0) = 1.0; });
    return 0;
}
"#;
        let f = CompileFeatures {
            kokkos: true,
            ..CompileFeatures::default()
        };
        let r = check_src(src, f);
        let d = first_error(&r);
        assert_eq!(d.category, ErrorCategory::ArgTypeMismatch);
        assert!(d.message.contains("rank"));
    }

    #[test]
    fn struct_member_checks() {
        let src = r#"
typedef struct { double energy; int mat; } Lookup;
int main() {
    Lookup l;
    l.energy = 1.0;
    l.nuclide = 3;
    return 0;
}
"#;
        let r = check_src(src, CompileFeatures::default());
        let d = first_error(&r);
        assert_eq!(d.category, ErrorCategory::ArgTypeMismatch);
        assert!(d.message.contains("nuclide"));
    }

    #[test]
    fn arrow_vs_dot() {
        let src = r#"
typedef struct { int x; } S;
int main() {
    S s;
    S* p = &s;
    p.x = 1;
    return 0;
}
"#;
        let r = check_src(src, CompileFeatures::default());
        assert!(first_error(&r).message.contains("->"));
    }

    #[test]
    fn libm_usage_recorded() {
        let src = "int main() { double x = sqrt(2.0); return 0; }";
        let r = check_src(src, CompileFeatures::default());
        assert!(r.object.unwrap().uses_libm);
    }

    #[test]
    fn undefined_prototype_recorded_for_linker() {
        let src = "void helper(int x);\nint main() { helper(1); return 0; }";
        let r = check_src(src, CompileFeatures::default());
        let obj = r.object.unwrap();
        assert_eq!(obj.undefined, vec!["helper".to_string()]);
    }

    #[test]
    fn unknown_named_type() {
        let src = "int main() { Widget w; return 0; }";
        let r = check_src(src, CompileFeatures::default());
        let d = first_error(&r);
        assert_eq!(d.category, ErrorCategory::UndeclaredIdentifier);
        assert!(d.message.contains("Widget"));
    }

    #[test]
    fn pointer_pointee_mismatch() {
        let src = "int main() { double* d; int* i = d; return 0; }";
        let r = check_src(src, CompileFeatures::default());
        assert_eq!(first_error(&r).category, ErrorCategory::ArgTypeMismatch);
    }

    #[test]
    fn void_pointer_compatible() {
        let src = "int main() { int* i = (int*)malloc(4 * sizeof(int)); free(i); return 0; }";
        let r = check_src(src, CompileFeatures::default());
        assert!(r.object.is_some(), "{:?}", r.diagnostics);
    }

    #[test]
    fn pragma_without_fopenmp_warns() {
        let src = r#"
void f(int* a, int n) {
    #pragma omp parallel for
    for (int i = 0; i < n; i++) a[i] = i;
}
"#;
        let r = check_src(src, CompileFeatures::default());
        assert!(r.object.is_some());
        assert!(r.diagnostics.iter().any(|d| d.message.contains("-fopenmp")));
    }
}
