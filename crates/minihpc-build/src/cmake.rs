//! A CMake-subset interpreter: parses `CMakeLists.txt`, runs the configure
//! step (where `find_package(Kokkos)` and target wiring live — the paper's
//! "CMake Config Error" category), and generates compiler invocations.
//!
//! The simulated system has Kokkos 4.5.01 installed (paper Sec. 7.2), so
//! `find_package(Kokkos REQUIRED)` succeeds — what LLM translations get
//! wrong is *forgetting* the `find_package`, linking the wrong target name,
//! or misspelling commands, all reproduced here.

use crate::diag::{Diagnostic, ErrorCategory};
use crate::toolchain::{parse_invocation, Invocation};
use std::collections::BTreeMap;

/// One parsed CMake command: `name(arg arg ...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CMakeCommand {
    pub name: String,
    pub args: Vec<String>,
    pub line: u32,
}

/// Parse CMakeLists.txt text into commands.
pub fn parse(text: &str) -> Result<Vec<CMakeCommand>, Diagnostic> {
    let mut commands = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let len = bytes.len();
    while i < len {
        match bytes[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'#' => {
                while i < len && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < len && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let name = text[start..i].to_ascii_lowercase();
                let cmd_line = line;
                // Skip whitespace to '('.
                while i < len && (bytes[i] == b' ' || bytes[i] == b'\t') {
                    i += 1;
                }
                if i >= len || bytes[i] != b'(' {
                    return Err(Diagnostic::error(
                        ErrorCategory::BuildFileSyntax,
                        "CMakeLists.txt",
                        format!(
                            "CMake Error at CMakeLists.txt:{cmd_line}: Parse error. \
                             Expected \"(\" after command name \"{name}\"."
                        ),
                    ));
                }
                i += 1; // '('
                let mut args = Vec::new();
                let mut cur = String::new();
                let mut depth = 1;
                loop {
                    if i >= len {
                        return Err(Diagnostic::error(
                            ErrorCategory::BuildFileSyntax,
                            "CMakeLists.txt",
                            format!(
                                "CMake Error at CMakeLists.txt:{cmd_line}: Parse error. \
                                 Function missing ending \")\"."
                            ),
                        ));
                    }
                    match bytes[i] {
                        b'(' => {
                            depth += 1;
                            cur.push('(');
                            i += 1;
                        }
                        b')' => {
                            depth -= 1;
                            i += 1;
                            if depth == 0 {
                                if !cur.is_empty() {
                                    args.push(std::mem::take(&mut cur));
                                }
                                break;
                            }
                            cur.push(')');
                        }
                        b'"' => {
                            // Quoted argument.
                            i += 1;
                            let qstart = i;
                            while i < len && bytes[i] != b'"' {
                                if bytes[i] == b'\n' {
                                    line += 1;
                                }
                                i += 1;
                            }
                            if i >= len {
                                return Err(Diagnostic::error(
                                    ErrorCategory::BuildFileSyntax,
                                    "CMakeLists.txt",
                                    format!(
                                        "CMake Error at CMakeLists.txt:{cmd_line}: unterminated string."
                                    ),
                                ));
                            }
                            args.push(text[qstart..i].to_string());
                            i += 1;
                        }
                        b' ' | b'\t' | b'\r' | b'\n' => {
                            if bytes[i] == b'\n' {
                                line += 1;
                            }
                            if !cur.is_empty() {
                                args.push(std::mem::take(&mut cur));
                            }
                            i += 1;
                        }
                        c => {
                            cur.push(c as char);
                            i += 1;
                        }
                    }
                }
                commands.push(CMakeCommand {
                    name,
                    args,
                    line: cmd_line,
                });
            }
            other => {
                return Err(Diagnostic::error(
                    ErrorCategory::BuildFileSyntax,
                    "CMakeLists.txt",
                    format!(
                        "CMake Error at CMakeLists.txt:{line}: Parse error. \
                         Unexpected character '{}'.",
                        other as char
                    ),
                ));
            }
        }
    }
    Ok(commands)
}

/// An executable target declared by `add_executable`.
#[derive(Debug, Clone, Default)]
struct Target {
    sources: Vec<String>,
    link_kokkos: bool,
    link_m: bool,
    compile_options: Vec<String>,
    include_dirs: Vec<String>,
}

/// The configure result: generated compiler invocations per target.
#[derive(Debug, Clone)]
pub struct ConfiguredBuild {
    pub invocations: Vec<(String, Invocation)>,
    /// Configure-time log lines (mimics cmake output).
    pub log: Vec<String>,
}

/// Commands recognised by our CMake subset.
const KNOWN_COMMANDS: [&str; 12] = [
    "cmake_minimum_required",
    "project",
    "find_package",
    "add_executable",
    "target_link_libraries",
    "target_compile_options",
    "target_include_directories",
    "include_directories",
    "set",
    "enable_language",
    "message",
    "option",
];

/// Run the configure + generate steps.
pub fn configure(text: &str) -> Result<ConfiguredBuild, Diagnostic> {
    let commands = parse(text)?;
    let mut log = vec!["-- Configuring MiniHPC CMake 3.27 (simulated)".to_string()];
    let mut project_declared = false;
    let mut kokkos_found = false;
    let mut variables: BTreeMap<String, String> = BTreeMap::new();
    let mut targets: BTreeMap<String, Target> = BTreeMap::new();
    let mut global_includes: Vec<String> = Vec::new();

    for cmd in &commands {
        if !KNOWN_COMMANDS.contains(&cmd.name.as_str()) {
            return Err(Diagnostic::error(
                ErrorCategory::CMakeConfig,
                "CMakeLists.txt",
                format!(
                    "CMake Error at CMakeLists.txt:{}: Unknown CMake command \"{}\".",
                    cmd.line, cmd.name
                ),
            ));
        }
        match cmd.name.as_str() {
            "cmake_minimum_required" => {}
            "project" => {
                project_declared = true;
                log.push(format!(
                    "-- Project: {}",
                    cmd.args.first().cloned().unwrap_or_default()
                ));
            }
            "enable_language" | "message" | "option" => {}
            "find_package" => {
                if !project_declared {
                    return Err(Diagnostic::error(
                        ErrorCategory::CMakeConfig,
                        "CMakeLists.txt",
                        format!(
                            "CMake Error at CMakeLists.txt:{}: find_package() called before project().",
                            cmd.line
                        ),
                    ));
                }
                let pkg = cmd.args.first().map(String::as_str).unwrap_or("");
                match pkg {
                    "Kokkos" => {
                        kokkos_found = true;
                        log.push("-- Found Kokkos: 4.5.01 (CUDA backend, sm_80)".to_string());
                    }
                    "OpenMP" => {
                        log.push("-- Found OpenMP_CXX: -fopenmp".to_string());
                    }
                    other => {
                        let required = cmd.args.iter().any(|a| a == "REQUIRED");
                        if required {
                            return Err(Diagnostic::error(
                                ErrorCategory::CMakeConfig,
                                "CMakeLists.txt",
                                format!(
                                    "CMake Error at CMakeLists.txt:{}: By not providing \
                                     \"Find{other}.cmake\" this project has asked CMake to find \
                                     a package configuration file provided by \"{other}\", but \
                                     CMake did not find one.",
                                    cmd.line
                                ),
                            ));
                        }
                        log.push(format!("-- Could NOT find {other} (not required)"));
                    }
                }
            }
            "set" => {
                if let Some((name, rest)) = cmd.args.split_first() {
                    variables.insert(name.clone(), rest.join(" "));
                }
            }
            "include_directories" => {
                global_includes.extend(cmd.args.iter().cloned());
            }
            "add_executable" => {
                if !project_declared {
                    return Err(Diagnostic::error(
                        ErrorCategory::CMakeConfig,
                        "CMakeLists.txt",
                        format!(
                            "CMake Error at CMakeLists.txt:{}: add_executable() called before project().",
                            cmd.line
                        ),
                    ));
                }
                let Some((name, srcs)) = cmd.args.split_first() else {
                    return Err(Diagnostic::error(
                        ErrorCategory::CMakeConfig,
                        "CMakeLists.txt",
                        format!(
                            "CMake Error at CMakeLists.txt:{}: add_executable called with \
                             incorrect number of arguments.",
                            cmd.line
                        ),
                    ));
                };
                if srcs.is_empty() {
                    return Err(Diagnostic::error(
                        ErrorCategory::CMakeConfig,
                        "CMakeLists.txt",
                        format!(
                            "CMake Error at CMakeLists.txt:{}: add_executable \"{name}\" has no \
                             source files.",
                            cmd.line
                        ),
                    ));
                }
                targets.insert(
                    name.clone(),
                    Target {
                        sources: srcs.to_vec(),
                        ..Target::default()
                    },
                );
            }
            "target_link_libraries" => {
                let Some((name, libs)) = cmd.args.split_first() else {
                    continue;
                };
                let Some(target) = targets.get_mut(name) else {
                    return Err(Diagnostic::error(
                        ErrorCategory::CMakeConfig,
                        "CMakeLists.txt",
                        format!(
                            "CMake Error at CMakeLists.txt:{}: Cannot specify link libraries for \
                             target \"{name}\" which is not built by this project.",
                            cmd.line
                        ),
                    ));
                };
                for lib in libs {
                    match lib.as_str() {
                        "PRIVATE" | "PUBLIC" | "INTERFACE" => {}
                        "Kokkos::kokkos" => {
                            if !kokkos_found {
                                return Err(Diagnostic::error(
                                    ErrorCategory::CMakeConfig,
                                    "CMakeLists.txt",
                                    format!(
                                        "CMake Error at CMakeLists.txt:{}: Target \"{name}\" \
                                         links to: Kokkos::kokkos but the target was not found. \
                                         Perhaps a find_package() call is missing.",
                                        cmd.line
                                    ),
                                ));
                            }
                            target.link_kokkos = true;
                        }
                        "m" => target.link_m = true,
                        "OpenMP::OpenMP_CXX" => {
                            target.compile_options.push("-fopenmp".to_string());
                        }
                        other => {
                            return Err(Diagnostic::error(
                                ErrorCategory::CMakeConfig,
                                "CMakeLists.txt",
                                format!(
                                    "CMake Error at CMakeLists.txt:{}: Target \"{name}\" links \
                                     to: {other} but the target was not found.",
                                    cmd.line
                                ),
                            ));
                        }
                    }
                }
            }
            "target_compile_options" => {
                let Some((name, opts)) = cmd.args.split_first() else {
                    continue;
                };
                let Some(target) = targets.get_mut(name) else {
                    return Err(Diagnostic::error(
                        ErrorCategory::CMakeConfig,
                        "CMakeLists.txt",
                        format!(
                            "CMake Error at CMakeLists.txt:{}: Cannot specify compile options \
                             for target \"{name}\" which is not built by this project.",
                            cmd.line
                        ),
                    ));
                };
                target.compile_options.extend(
                    opts.iter()
                        .filter(|o| !matches!(o.as_str(), "PRIVATE" | "PUBLIC" | "INTERFACE"))
                        .cloned(),
                );
            }
            "target_include_directories" => {
                let Some((name, dirs)) = cmd.args.split_first() else {
                    continue;
                };
                if let Some(target) = targets.get_mut(name) {
                    target.include_dirs.extend(
                        dirs.iter()
                            .filter(|o| !matches!(o.as_str(), "PRIVATE" | "PUBLIC" | "INTERFACE"))
                            .cloned(),
                    );
                }
            }
            _ => unreachable!("command filtered above"),
        }
    }

    if !project_declared {
        return Err(Diagnostic::error(
            ErrorCategory::CMakeConfig,
            "CMakeLists.txt",
            "CMake Error: project() is missing; no project has been configured.",
        ));
    }
    if targets.is_empty() {
        return Err(Diagnostic::error(
            ErrorCategory::CMakeConfig,
            "CMakeLists.txt",
            "CMake Error: no add_executable() target defined.",
        ));
    }

    // Generate one compile+link invocation per target.
    let compiler = variables
        .get("CMAKE_CXX_COMPILER")
        .cloned()
        .unwrap_or_else(|| "g++".to_string());
    let mut invocations = Vec::new();
    for (name, t) in &targets {
        let mut words: Vec<String> = vec![compiler.clone()];
        if let Some(std) = variables.get("CMAKE_CXX_STANDARD") {
            words.push(format!("-std=c++{std}"));
        }
        if let Some(flags) = variables.get("CMAKE_CXX_FLAGS") {
            words.extend(flags.split_whitespace().map(str::to_string));
        }
        words.extend(t.compile_options.iter().cloned());
        for d in global_includes.iter().chain(t.include_dirs.iter()) {
            words.push(format!("-I{d}"));
        }
        words.extend(t.sources.iter().cloned());
        if t.link_m {
            words.push("-lm".to_string());
        }
        words.push("-o".to_string());
        words.push(name.clone());
        let mut inv = parse_invocation(&words, "CMakeLists.txt")?;
        if t.link_kokkos {
            // find_package(Kokkos) injects include paths, defines, and the
            // library; surfaced here as the `kokkos` feature (plus libm,
            // which kokkoscore pulls in transitively).
            inv.features.kokkos = true;
            inv.features.libm = true;
        }
        log.push(format!("-- Generating rules for target {name}"));
        invocations.push((name.clone(), inv));
    }
    log.push("-- Generating done (simulated)".to_string());
    Ok(ConfiguredBuild { invocations, log })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
cmake_minimum_required(VERSION 3.16)
project(nanoXOR LANGUAGES CXX)
find_package(Kokkos REQUIRED)
set(CMAKE_CXX_STANDARD 17)
add_executable(nanoxor src/main.cpp)
target_link_libraries(nanoxor PRIVATE Kokkos::kokkos)
"#;

    #[test]
    fn good_kokkos_config() {
        let cfg = configure(GOOD).unwrap();
        assert_eq!(cfg.invocations.len(), 1);
        let (name, inv) = &cfg.invocations[0];
        assert_eq!(name, "nanoxor");
        assert!(inv.features.kokkos);
        assert_eq!(inv.inputs, vec!["src/main.cpp"]);
        assert!(cfg.log.iter().any(|l| l.contains("Found Kokkos")));
    }

    #[test]
    fn missing_find_package_is_config_error() {
        let text = r#"
cmake_minimum_required(VERSION 3.16)
project(app LANGUAGES CXX)
add_executable(app src/main.cpp)
target_link_libraries(app PRIVATE Kokkos::kokkos)
"#;
        let err = configure(text).unwrap_err();
        assert_eq!(err.category, ErrorCategory::CMakeConfig);
        assert!(err.message.contains("Kokkos::kokkos"));
    }

    #[test]
    fn unknown_command_is_config_error() {
        let text = "project(app LANGUAGES CXX)\nadd_exec(app main.cpp)\n";
        let err = configure(text).unwrap_err();
        assert_eq!(err.category, ErrorCategory::CMakeConfig);
        assert!(err.message.contains("Unknown CMake command"));
    }

    #[test]
    fn parse_error_is_syntax_category() {
        let text = "project(app LANGUAGES CXX\nadd_executable(app main.cpp)\n";
        let err = configure(text).unwrap_err();
        assert_eq!(err.category, ErrorCategory::BuildFileSyntax);
    }

    #[test]
    fn missing_project_rejected() {
        let text = "add_executable(app main.cpp)\n";
        let err = configure(text).unwrap_err();
        assert_eq!(err.category, ErrorCategory::CMakeConfig);
    }

    #[test]
    fn find_unknown_required_package_fails() {
        let text =
            "project(a LANGUAGES CXX)\nfind_package(RAJA REQUIRED)\nadd_executable(a m.cpp)\n";
        let err = configure(text).unwrap_err();
        assert_eq!(err.category, ErrorCategory::CMakeConfig);
        assert!(err.message.contains("RAJA"));
    }

    #[test]
    fn link_to_unknown_target_fails() {
        let text = r#"
project(a LANGUAGES CXX)
add_executable(a m.cpp)
target_link_libraries(b PRIVATE m)
"#;
        let err = configure(text).unwrap_err();
        assert!(err.message.contains("\"b\""));
    }

    #[test]
    fn openmp_package_adds_flag() {
        let text = r#"
project(a LANGUAGES CXX)
find_package(OpenMP)
add_executable(a m.cpp)
target_link_libraries(a PRIVATE OpenMP::OpenMP_CXX)
"#;
        let cfg = configure(text).unwrap();
        assert!(cfg.invocations[0].1.features.openmp);
    }

    #[test]
    fn compile_options_flow_through() {
        let text = r#"
project(a LANGUAGES CXX)
add_executable(a m.cpp)
target_compile_options(a PRIVATE -O3 -fopenmp)
"#;
        let cfg = configure(text).unwrap();
        let inv = &cfg.invocations[0].1;
        assert_eq!(inv.opt_level, 3);
        assert!(inv.features.openmp);
    }

    #[test]
    fn bad_compile_option_propagates_flag_error() {
        let text = r#"
project(a LANGUAGES CXX)
add_executable(a m.cpp)
target_compile_options(a PRIVATE -fbogus)
"#;
        let err = configure(text).unwrap_err();
        assert_eq!(err.category, ErrorCategory::InvalidCompilerFlag);
    }

    #[test]
    fn no_sources_rejected() {
        let text = "project(a LANGUAGES CXX)\nadd_executable(a)\n";
        let err = configure(text).unwrap_err();
        assert!(err.message.contains("no source files"));
    }

    #[test]
    fn quoted_args_and_comments() {
        let text = "# top comment\nproject(\"my app\" LANGUAGES CXX)\nadd_executable(a m.cpp) # trailing\n";
        let cfg = configure(text).unwrap();
        assert_eq!(cfg.invocations.len(), 1);
    }
}
