//! Error injectors: deterministic text-level mutations that turn a correct
//! translation into one exhibiting a specific failure category from paper
//! Fig. 3 (build errors) or a functional failure (builds, but fails the
//! correctness tests — including the Listing 4 missing-`target` case).
//!
//! Injected text then flows through the *real* compiler/runtime, so every
//! measured outcome comes out of the full pipeline rather than being
//! asserted.

use minihpc_build::ErrorCategory;
use minihpc_lang::model::ExecutionModel;
use minihpc_lang::repo::{FileKind, SourceRepo};

/// A functional (run-time) failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FunctionalError {
    /// Drop the `target` construct (paper Listing 4): compiles, runs on the
    /// host, and fails the GPU-execution requirement.
    DropTargetConstruct,
    /// `map(tofrom:)` → `map(to:)`: results never copied back.
    LoseMapFrom,
    /// Remove the final `deep_copy` back to the host (Kokkos analogue).
    DropDeepCopyBack,
}

/// Inject a *code* build error of the given category into `text`.
/// Returns the mutated text (or the original if no anchor was found — the
/// caller falls back to another category).
pub fn inject_code_error(text: &str, category: ErrorCategory) -> Option<String> {
    match category {
        ErrorCategory::CodeSyntax => {
            // Delete the last semicolon.
            let pos = text.rfind(';')?;
            let mut out = text.to_string();
            out.remove(pos);
            Some(out)
        }
        ErrorCategory::MissingHeader => {
            // Point a local include at a nonexistent file.
            let start = text.find("#include \"")?;
            let rest = &text[start + 10..];
            let end = rest.find('"')?;
            let name = &rest[..end];
            Some(text.replacen(
                &format!("#include \"{name}\""),
                &format!("#include \"portable_{name}\""),
                1,
            ))
        }
        ErrorCategory::UndeclaredIdentifier => {
            // The paper's canonical example: a renamed callee that dependents
            // never learned about.
            let anchor = find_fn_body_start(text)?;
            let mut out = text.to_string();
            out.insert_str(anchor, "\n    computeWithOpenMP(0);\n");
            Some(out)
        }
        ErrorCategory::ArgTypeMismatch => {
            let anchor = find_fn_body_start(text)?;
            let mut out = text.to_string();
            out.insert_str(anchor, "\n    int* __interface_mismatch = 1.5;\n");
            Some(out)
        }
        ErrorCategory::OmpInvalidDirective => {
            if text.contains("teams distribute") {
                Some(text.replacen("teams distribute", "distribute", 1))
            } else if text.contains("#pragma omp parallel for") {
                // collapse deeper than the nest.
                Some(text.replacen(
                    "#pragma omp parallel for",
                    "#pragma omp parallel for collapse(4)",
                    1,
                ))
            } else {
                None
            }
        }
        ErrorCategory::LinkerError => {
            let anchor = find_fn_body_start(text)?;
            let mut out = text.to_string();
            out.insert_str(anchor, "\n    __missing_translation_unit(1);\n");
            let proto = "void __missing_translation_unit(int x);\n";
            Some(format!("{proto}{out}"))
        }
        _ => None,
    }
}

fn find_fn_body_start(text: &str) -> Option<usize> {
    // Position just after the opening brace of the first function body.
    let open = text.find(") {")?;
    Some(open + 3)
}

/// Inject a *build-file* error of the given category.
pub fn inject_buildfile_error(
    text: &str,
    category: ErrorCategory,
    target_model: ExecutionModel,
) -> Option<String> {
    match category {
        ErrorCategory::BuildFileSyntax => {
            if target_model == ExecutionModel::Kokkos {
                // Unbalanced parenthesis in CMake.
                let pos = text.find("project(")?;
                let close = text[pos..].find(')')? + pos;
                let mut out = text.to_string();
                out.remove(close);
                Some(out)
            } else {
                // The immortal tab-vs-spaces mistake.
                if text.contains('\t') {
                    Some(text.replacen('\t', "    ", 1))
                } else {
                    None
                }
            }
        }
        ErrorCategory::MakefileMissingTarget => {
            // Rename the primary target so the expected binary never exists.
            let colon = text.find(':')?;
            let line_start = text[..colon].rfind('\n').map(|i| i + 1).unwrap_or(0);
            let target = text[line_start..colon].trim();
            if target.is_empty() || target.starts_with('.') {
                return None;
            }
            // Rename every occurrence (rule target and `-o` output), so the
            // expected binary is never produced.
            Some(text.replace(target, &format!("{target}_exe")))
        }
        ErrorCategory::CMakeConfig => {
            if let Some(start) = text.find("find_package(") {
                let end = text[start..].find('\n')? + start + 1;
                let mut out = text.to_string();
                out.replace_range(start..end, "");
                Some(out)
            } else {
                None
            }
        }
        ErrorCategory::InvalidCompilerFlag => {
            if text.contains("-fopenmp-targets=nvptx64-nvidia-cuda") {
                Some(text.replacen(
                    "-fopenmp-targets=nvptx64-nvidia-cuda",
                    "-fopenmp-offload=nvptx64",
                    1,
                ))
            } else if text.contains("-arch=sm_80") {
                Some(text.replacen("-arch=sm_80", "-arch=gfx90a", 1))
            } else if text.contains("CXXFLAGS =") {
                Some(text.replacen("CXXFLAGS =", "CXXFLAGS = -ffast-offload", 1))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Inject a functional error into code text.
pub fn inject_functional_error(text: &str, kind: FunctionalError) -> Option<String> {
    match kind {
        FunctionalError::DropTargetConstruct => {
            if text.contains("#pragma omp target teams distribute") {
                // Also strip map clauses — they are invalid without target
                // (as in the paper's Listing 4, which has none).
                let mut out = text.replacen(
                    "#pragma omp target teams distribute",
                    "#pragma omp teams distribute",
                    usize::MAX,
                );
                out = strip_map_clauses(&out);
                Some(out)
            } else {
                None
            }
        }
        FunctionalError::LoseMapFrom => {
            if text.contains("map(tofrom:") {
                Some(text.replace("map(tofrom:", "map(to:"))
            } else if text.contains("map(from:") {
                Some(text.replace("map(from:", "map(to:"))
            } else {
                None
            }
        }
        FunctionalError::DropDeepCopyBack => {
            // Remove the last deep_copy line.
            let pos = text.rfind("Kokkos::deep_copy(")?;
            let line_start = text[..pos].rfind('\n').map(|i| i + 1).unwrap_or(0);
            let line_end = text[pos..]
                .find('\n')
                .map(|i| pos + i + 1)
                .unwrap_or(text.len());
            let mut out = text.to_string();
            out.replace_range(line_start..line_end, "");
            Some(out)
        }
    }
}

/// Inject a *data race* into correct code: drop the `reduction(...)` clause
/// from the first OpenMP pragma carrying one. The result still parses and
/// builds — the accumulator simply becomes a shared scalar updated with a
/// raw `+=` from every iteration, which is exactly the defect the static
/// analyzer (`raw-reduction`) and the runtime's shared-write recorder are
/// built to catch. Returns `None` when the text has no reduction clause to
/// drop (the attempt then stays correct).
pub fn inject_race_error(text: &str) -> Option<String> {
    let mut search = 0;
    while let Some(rel) = text[search..].find("reduction(") {
        let start = search + rel;
        let line_start = text[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
        if text[line_start..start]
            .trim_start()
            .starts_with("#pragma omp")
        {
            let close = text[start..].find(')')? + start + 1;
            // Swallow one separating space so the pragma stays tidy.
            let cut = if text[..start].ends_with(' ') {
                start - 1
            } else {
                start
            };
            let mut out = text.to_string();
            out.replace_range(cut..close, "");
            return Some(out);
        }
        search = start + 1;
    }
    None
}

fn strip_map_clauses(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        if line.trim_start().starts_with("#pragma omp") && line.contains("map(") {
            let mut cleaned = String::new();
            let mut rest = line;
            while let Some(start) = rest.find("map(") {
                cleaned.push_str(&rest[..start]);
                let after = &rest[start..];
                let close = after.find(')').map(|i| i + 1).unwrap_or(after.len());
                rest = &after[close..];
            }
            cleaned.push_str(rest);
            out.push_str(cleaned.trim_end());
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// Pick the code file to mutate: prefer the one carrying the parallel
/// construct, else the main file, else the first source.
pub fn injection_target(repo: &SourceRepo) -> Option<String> {
    let sources: Vec<&str> = repo.paths().filter(|p| FileKind::of(p).is_code()).collect();
    let has = |needle: &str| {
        sources
            .iter()
            .find(|p| repo.get(p).is_some_and(|t| t.contains(needle)))
            .map(|p| p.to_string())
    };
    has("#pragma omp target")
        .or_else(|| has("Kokkos::parallel_for"))
        .or_else(|| has("#pragma omp parallel"))
        .or_else(|| has("int main("))
        .or_else(|| sources.first().map(|p| p.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minihpc_build::{build_repo, BuildRequest};
    use minihpc_lang::model::TranslationPair;
    use pareval_translate::transpile_repo;

    /// Oracle-translated nanoXOR (CUDA→offload) as the mutation substrate.
    fn offload_repo() -> SourceRepo {
        let app = pareval_apps::by_name("nanoXOR").unwrap();
        transpile_repo(
            app.repo(ExecutionModel::Cuda).unwrap(),
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            &app.binary,
        )
    }

    fn build_category_of(repo: &SourceRepo) -> Option<ErrorCategory> {
        let out = build_repo(repo, &BuildRequest::new("nanoxor"));
        assert!(!out.succeeded(), "expected failure:\n{}", out.log.text());
        out.first_error_category()
    }

    #[test]
    fn each_code_injector_produces_its_category() {
        use ErrorCategory::*;
        for category in [
            CodeSyntax,
            MissingHeader,
            UndeclaredIdentifier,
            ArgTypeMismatch,
            OmpInvalidDirective,
            LinkerError,
        ] {
            let mut repo = offload_repo();
            let target = if category == MissingHeader {
                // nanoXOR has no local includes; use microXOR instead.
                let app = pareval_apps::by_name("microXOR").unwrap();
                repo = transpile_repo(
                    app.repo(ExecutionModel::Cuda).unwrap(),
                    TranslationPair::CUDA_TO_OMP_OFFLOAD,
                    &app.binary,
                );
                "src/main.cpp".to_string()
            } else {
                injection_target(&repo).unwrap()
            };
            let mutated = inject_code_error(repo.get(&target).unwrap(), category)
                .unwrap_or_else(|| panic!("injector for {category} found no anchor"));
            repo.add(target, mutated);
            let binary = if category == MissingHeader {
                "microxor"
            } else {
                "nanoxor"
            };
            let out = build_repo(&repo, &BuildRequest::new(binary));
            assert!(!out.succeeded(), "{category} should break the build");
            assert_eq!(
                out.first_error_category(),
                Some(category),
                "injector/category mismatch for {category}"
            );
        }
    }

    #[test]
    fn buildfile_injectors_produce_their_categories() {
        use ErrorCategory::*;
        for category in [BuildFileSyntax, MakefileMissingTarget, InvalidCompilerFlag] {
            let mut repo = offload_repo();
            let mk = repo.get("Makefile").unwrap();
            let mutated = inject_buildfile_error(mk, category, ExecutionModel::OmpOffload).unwrap();
            repo.add("Makefile", mutated);
            assert_eq!(build_category_of(&repo), Some(category), "{category}");
        }
        // CMake config error on a Kokkos translation.
        let app = pareval_apps::by_name("nanoXOR").unwrap();
        let mut repo = transpile_repo(
            app.repo(ExecutionModel::Cuda).unwrap(),
            TranslationPair::CUDA_TO_KOKKOS,
            &app.binary,
        );
        let cm = repo.get("CMakeLists.txt").unwrap();
        let mutated = inject_buildfile_error(cm, CMakeConfig, ExecutionModel::Kokkos).unwrap();
        repo.add("CMakeLists.txt", mutated);
        assert_eq!(build_category_of(&repo), Some(CMakeConfig));
    }

    #[test]
    fn listing4_injection_builds_but_fails_gpu_check() {
        let mut repo = offload_repo();
        let target = injection_target(&repo).unwrap();
        let mutated = inject_functional_error(
            repo.get(&target).unwrap(),
            FunctionalError::DropTargetConstruct,
        )
        .unwrap();
        repo.add(target, mutated);
        let out = build_repo(&repo, &BuildRequest::new("nanoxor"));
        assert!(out.succeeded(), "Listing 4 compiles:\n{}", out.log.text());
        let r = minihpc_runtime::run(
            &out.executable.unwrap(),
            minihpc_runtime::RunConfig::with_args(["16", "1"]),
        );
        assert!(r.error.is_none());
        assert!(
            !r.telemetry.ran_on_device(),
            "must run on the host like paper Listing 4"
        );
    }

    #[test]
    fn race_injection_drops_reduction_but_still_builds() {
        // XSBench OMP→offload keeps its `reduction(+: verification)` clause
        // through the transpiler; dropping it must leave a repo that still
        // builds (the race is semantic, not syntactic).
        let app = pareval_apps::by_name("XSBench").unwrap();
        let mut repo = transpile_repo(
            app.repo(ExecutionModel::OmpThreads).unwrap(),
            TranslationPair::OMP_THREADS_TO_OFFLOAD,
            &app.binary,
        );
        let target = repo
            .paths()
            .find(|p| repo.get(p).is_some_and(|t| t.contains("reduction(")))
            .map(str::to_string)
            .expect("transpiled XSBench carries a reduction clause");
        let mutated = inject_race_error(repo.get(&target).unwrap()).unwrap();
        assert!(!mutated.contains("reduction("));
        assert!(mutated.contains("#pragma omp"));
        repo.add(target, mutated);
        let out = build_repo(&repo, &BuildRequest::new(app.binary));
        assert!(
            out.succeeded(),
            "racy code must still build:\n{}",
            out.log.text()
        );
        // Nothing to drop → no injection.
        assert_eq!(inject_race_error("int main() { return 0; }"), None);
        // A non-pragma mention of `reduction(` is not an anchor.
        assert_eq!(inject_race_error("// reduction(+: x) in a comment\n"), None);
    }

    #[test]
    fn lose_map_from_changes_results() {
        let app = pareval_apps::by_name("nanoXOR").unwrap();
        let case = pareval_apps::TestCase::new(["16", "1"]);
        let expected = app.expected_output(&case);
        let mut repo = offload_repo();
        let target = injection_target(&repo).unwrap();
        let mutated =
            inject_functional_error(repo.get(&target).unwrap(), FunctionalError::LoseMapFrom)
                .unwrap();
        repo.add(target, mutated);
        let out = build_repo(&repo, &BuildRequest::new("nanoxor"));
        assert!(out.succeeded(), "{}", out.log.text());
        let r = minihpc_runtime::run(
            &out.executable.unwrap(),
            minihpc_runtime::RunConfig::with_args(["16", "1"]),
        );
        assert_ne!(r.stdout, expected, "results must be lost");
    }
}
