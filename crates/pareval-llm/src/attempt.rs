//! The pluggable translation-backend layer.
//!
//! A [`TranslationBackend`] is an object-safe *factory of attempts*: the
//! experiment harness threads one through an
//! `ExperimentPlan`, and for every scheduled sample calls
//! [`TranslationBackend::start_attempt`] to obtain a fresh [`Attempt`] —
//! the stateful, single-use object that performs the per-file translations
//! of that sample. `Attempt` is a [`pareval_translate::Backend`] (the
//! techniques drive it file by file) extended with the attempt-level
//! reporting the harness needs: feasibility and token usage.
//!
//! Four backends ship with the crate:
//!
//! | backend | purpose |
//! |---|---|
//! | [`SimulatedBackend`](crate::SimulatedBackend) | paper-calibrated simulation (the default; wraps [`SimulatedModel`](crate::SimulatedModel)) |
//! | [`OracleBackend`](crate::OracleBackend) | always-correct translations — a pass@1 = 1.0 upper bound |
//! | [`RecordingBackend`](crate::RecordingBackend) | transparent proxy that serializes every attempt to a [`ReplayStore`](crate::ReplayStore) |
//! | [`ReplayBackend`](crate::ReplayBackend) | replays a store verbatim for deterministic offline re-evaluation |

use crate::backend::TokenUsage;
use crate::profiles::ModelProfile;
use minihpc_analyze::FixIt;
use minihpc_build::ErrorCategory;
use minihpc_lang::model::TranslationPair;
use minihpc_lang::repo::SourceRepo;
use pareval_translate::techniques::{Backend, BackendError, BackendOutput, FileJob};
use pareval_translate::Technique;
use std::fmt;
use std::sync::Arc;

/// Everything a backend needs to start one translation attempt (one sample
/// of one task with one model under one technique).
///
/// The source repository is shared by `Arc`, never cloned per attempt: the
/// harness clones the app's repo once into the `Arc`, and the spec, the
/// technique's `TranslationJob`, and the attempt all borrow the same
/// allocation.
#[derive(Debug, Clone)]
pub struct AttemptSpec<'a> {
    pub model: &'a ModelProfile,
    pub technique: Technique,
    pub pair: TranslationPair,
    pub app_name: &'a str,
    pub source_repo: Arc<SourceRepo>,
    /// Experiment seed; together with `sample` it fully determines a
    /// deterministic backend's output.
    pub seed: u64,
    /// Index of this generation within its cell (pass@k needs N
    /// independent samples).
    pub sample: u32,
}

/// A structured summary of a failed build, handed back to the attempt for
/// one repair round (paper Fig. 3: build failures are categorized, so the
/// feedback a model receives is structured, not free text).
///
/// The harness (pareval-core's `EvalPipeline`) produces one per round from
/// the build log's categorized diagnostics: the distinct error categories,
/// the files they point at, and the first N rendered diagnostic lines —
/// the same prompt budget a real agentic loop would spend on compiler
/// output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairContext {
    /// 1-based repair round (round 0 is the original translation).
    pub round: u32,
    /// Distinct error categories, in first-occurrence order.
    pub categories: Vec<ErrorCategory>,
    /// Distinct files with errors, in first-occurrence order.
    pub files: Vec<String>,
    /// The first N rendered diagnostic lines of the failed build.
    pub diagnostics: Vec<String>,
    /// Rendered static race/directive findings (`minihpc-analyze`) of a
    /// build that succeeded but was judged racy. Empty unless the harness
    /// runs with the analyzer on, so analyzer-off repair prompts are
    /// byte-identical to the pre-analyzer format.
    pub race_findings: Vec<String>,
    /// Machine-applicable analyzer fix-its (high-confidence errors only),
    /// populated by the harness under `EvalConfig::repair_guided`. A
    /// backend may apply them deterministically via [`apply_fixits`]
    /// instead of regenerating the files. Empty under blind repair, so
    /// blind prompts and outcomes are byte-identical to before.
    pub fixits: Vec<FixIt>,
    /// Current `(path, contents)` text of every file the fix-its target —
    /// what the edits apply against.
    pub fixit_sources: Vec<(String, String)>,
}

impl RepairContext {
    /// The feedback text a backend "reads" this round — the token-accounting
    /// basis for repair input cost.
    pub fn prompt_text(&self) -> String {
        let mut out = String::from("The build failed. Fix the following and re-emit the files.\n");
        for c in &self.categories {
            out.push_str("category: ");
            out.push_str(c.label());
            out.push('\n');
        }
        for f in &self.files {
            out.push_str("file: ");
            out.push_str(f);
            out.push('\n');
        }
        for d in &self.diagnostics {
            out.push_str(d);
            out.push('\n');
        }
        if !self.race_findings.is_empty() {
            out.push_str("Static analysis found data races. Fix the directives.\n");
            for r in &self.race_findings {
                out.push_str(r);
                out.push('\n');
            }
        }
        if !self.fixits.is_empty() {
            out.push_str("Suggested fixes (machine-applicable):\n");
            for fx in &self.fixits {
                out.push_str(&format!("{} at {}:{}\n", fx.title, fx.file, fx.line));
            }
        }
        out
    }
}

/// Apply a repair context's fix-its to its carried file texts, grouped per
/// file. Returns the revised `(path, contents)` files — only files where at
/// least one edit applied — ready to return as
/// [`RepairOutcome::Revised`]. Deterministic: order follows
/// `fixit_sources`, and the edits themselves are line-anchored.
pub fn apply_fixits(ctx: &RepairContext) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for (path, text) in &ctx.fixit_sources {
        let for_file: Vec<FixIt> = ctx
            .fixits
            .iter()
            .filter(|fx| fx.file == *path)
            .cloned()
            .collect();
        if for_file.is_empty() {
            continue;
        }
        if let Some(edited) = minihpc_analyze::fixit::apply_all(text, &for_file) {
            out.push((path.clone(), edited));
        }
    }
    out
}

/// What one repair round produced.
#[derive(Debug, Clone, PartialEq)]
pub enum RepairOutcome {
    /// Revised `(path, contents)` files to overlay on the translated repo;
    /// the harness re-evaluates the result. May re-emit unchanged (still
    /// broken) text — the re-evaluation is then a build-cache hit.
    Revised(Vec<(String, String)>),
    /// The attempt declines this round (nothing it knows how to fix);
    /// the harness stops the loop even if budget remains.
    GaveUp,
}

/// One in-flight translation attempt: the per-file [`Backend`] a technique
/// drives, plus the attempt-level reporting the harness reads afterwards.
pub trait Attempt: Backend {
    /// Was this configuration runnable at all? (Infeasible attempts return
    /// an error from every `translate` call.)
    fn feasible(&self) -> bool;

    /// Token usage accumulated so far over this attempt.
    fn usage(&self) -> TokenUsage;

    /// One bounded repair round: given a structured summary of the failed
    /// build, emit revised files (or decline). Called by the harness after
    /// a failed build while `EvalConfig::repair_budget` rounds remain;
    /// tokens spent here accumulate into [`Attempt::usage`] (Eq. 2: repair
    /// tokens count toward E_kappa).
    ///
    /// The default declines every round — backends without a repair story
    /// behave exactly as before the repair loop existed.
    fn repair(&mut self, ctx: &RepairContext) -> RepairOutcome {
        let _ = ctx;
        RepairOutcome::GaveUp
    }
}

// `translate_with` takes `&mut dyn Backend`; delegating through the box
// lets `&mut Box<dyn Attempt>` coerce to it without dyn upcasting (which
// would raise the workspace MSRV).
impl Backend for Box<dyn Attempt + '_> {
    fn translate(&mut self, job: &FileJob) -> Result<BackendOutput, BackendError> {
        (**self).translate(job)
    }

    fn context_limit(&self) -> u64 {
        (**self).context_limit()
    }

    fn count_tokens(&self, text: &str) -> u64 {
        (**self).count_tokens(text)
    }

    fn verbose_context(&self) -> bool {
        (**self).verbose_context()
    }
}

/// An object-safe family of translation attempts.
///
/// Implementations must be `Send + Sync`: a plan holds its backends behind
/// `Arc` and parallel runners start attempts from many worker threads at
/// once. Backends with mutable state (e.g. the recording store) use
/// interior locking.
pub trait TranslationBackend: Send + Sync {
    /// Short stable identifier, used in `Debug` output and reports.
    fn name(&self) -> &'static str;

    /// Start one translation attempt. Called once per scheduled sample;
    /// every call must return a fresh, independent attempt.
    fn start_attempt(&self, spec: &AttemptSpec<'_>) -> Box<dyn Attempt>;

    /// Plan-time feasibility of a cell under this backend.
    ///
    /// The default is the paper calibration
    /// ([`crate::calibration::cell_feasible`]): configurations the paper
    /// could not run (context windows, compute budget) are infeasible.
    /// Backends with different reach override this — the oracle, for
    /// example, is limited only by what its transpiler can solve.
    fn cell_feasible(
        &self,
        pair: TranslationPair,
        technique: Technique,
        model: &str,
        app: &str,
    ) -> bool {
        crate::calibration::cell_feasible(pair, technique, model, app)
    }
}

impl fmt::Debug for dyn TranslationBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TranslationBackend({})", self.name())
    }
}
