//! # pareval-llm
//!
//! Simulated LLM translation backends for the ParEval-Repo reproduction:
//!
//! - [`profiles`]: the five models of paper Sec. 4 with token-economy
//!   parameters (reasoning multipliers, context limits, pricing).
//! - [`calibration`]: per-cell correctness probabilities transcribed from
//!   paper Fig. 2 — the generative parameters of the simulation.
//! - [`inject`]: deterministic error injectors covering every Fig. 3
//!   category plus the functional failures (Listing 4 et al.).
//! - [`backend`]: [`SimulatedModel`], a [`pareval_translate::Backend`] that
//!   combines the oracle transpiler with calibrated injection and token
//!   accounting.
//! - [`attempt`]: the pluggable backend layer — the object-safe
//!   [`TranslationBackend`] factory trait and the per-sample [`Attempt`]
//!   interface the experiment harness drives, including the bounded
//!   repair-round API ([`RepairContext`] → [`Attempt::repair`] →
//!   [`RepairOutcome`]).
//! - [`oracle`]: [`OracleBackend`], always-correct translations (a
//!   pass@1 = 1.0 upper bound the paper cannot measure).
//! - [`replay`]: [`RecordingBackend`] / [`ReplayBackend`], which serialize
//!   attempts to an in-memory [`ReplayStore`] for deterministic offline
//!   re-evaluation.

pub mod attempt;
pub mod backend;
pub mod calibration;
pub mod inject;
pub mod oracle;
pub mod profiles;
pub mod replay;

pub use attempt::{
    apply_fixits, Attempt, AttemptSpec, RepairContext, RepairOutcome, TranslationBackend,
};
pub use backend::{SimulatedBackend, SimulatedModel, TokenUsage};
pub use calibration::{app_index, cell_feasible, paper_cell, CellScores};
pub use oracle::OracleBackend;
pub use profiles::{
    all_models, base_fix_probability, model_by_name, model_index, ModelKind, ModelProfile,
    MODEL_ORDER,
};
pub use replay::{AttemptKey, RecordingBackend, ReplayBackend, ReplayStore};
