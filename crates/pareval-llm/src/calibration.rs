//! Calibration tables transcribed from paper Fig. 2 (correctness heatmaps).
//!
//! These per-cell scores are the only available ground truth for how each
//! LLM behaves on each task without API access; the simulated backends use
//! them as *generative parameters* (sampling an outcome per attempt), and
//! the benchmark then re-measures the resulting build@1 / pass@1 through the
//! full translate → build → run pipeline. `None` cells are configurations
//! the paper could not run (context windows or compute budget).
//!
//! Model column order everywhere: gemini-1.5-flash, gpt-4o-mini, o4-mini,
//! Llama-3.3-70B, qwq-32b-q8_0. App row order: nanoXOR, microXORh,
//! microXOR, SimpleMOC-kernel, XSBench, llm.c.

use minihpc_lang::model::TranslationPair;
use pareval_translate::Technique;

pub const N_MODELS: usize = 5;
pub const N_APPS: usize = 6;

/// One heatmap cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellScores {
    pub build_code: Option<f64>,
    pub pass_code: Option<f64>,
    pub build_overall: Option<f64>,
    pub pass_overall: Option<f64>,
}

impl CellScores {
    /// Was this configuration run at all in the paper?
    pub fn was_run(&self) -> bool {
        self.build_code.is_some()
    }
}

type Grid = [[Option<f64>; N_MODELS]; N_APPS];

const X: Option<f64> = None;
#[allow(non_snake_case)]
const fn S(v: f64) -> Option<f64> {
    Some(v)
}

// --- Fig. 2(a,b): CUDA → OpenMP offload -------------------------------------

const OFF_NA_BUILD_CODE: Grid = [
    [S(1.0), S(0.98), S(0.92), S(0.92), S(0.9)],
    [S(0.0), S(1.0), S(0.56), S(0.88), S(0.4)],
    [S(0.1), S(0.3), S(0.52), S(0.76), S(0.46)],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [X, S(0.0), S(0.0), S(0.0), S(0.0)],
    [X, X, S(0.0), S(0.0), S(0.0)],
];
const OFF_NA_PASS_CODE: Grid = [
    [S(0.0), S(0.72), S(0.84), S(0.2), S(0.6)],
    [S(0.0), S(0.32), S(0.48), S(0.76), S(0.4)],
    [S(0.06), S(0.26), S(0.48), S(0.36), S(0.38)],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [X, S(0.0), S(0.0), S(0.0), S(0.0)],
    [X, X, S(0.0), S(0.0), S(0.0)],
];
const OFF_NA_BUILD_OVERALL: Grid = [
    [S(0.58), S(0.46), S(0.76), S(0.0), S(0.64)],
    [S(0.0), S(0.08), S(0.32), S(0.0), S(0.32)],
    [S(0.0), S(0.1), S(0.44), S(0.04), S(0.24)],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [X, S(0.0), S(0.0), S(0.0), S(0.0)],
    [X, X, S(0.0), S(0.0), S(0.0)],
];
const OFF_NA_PASS_OVERALL: Grid = [
    [S(0.0), S(0.42), S(0.68), S(0.0), S(0.44)],
    [S(0.0), S(0.08), S(0.24), S(0.0), S(0.32)],
    [S(0.0), S(0.1), S(0.4), S(0.04), S(0.2)],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [X, S(0.0), S(0.0), S(0.0), S(0.0)],
    [X, X, S(0.0), S(0.0), S(0.0)],
];

const OFF_TD_BUILD_CODE: Grid = [
    [S(1.0), S(0.98), S(0.96), S(0.68), S(0.22)],
    [S(0.24), S(0.24), S(0.12), S(0.36), S(0.36)],
    [S(0.0), S(0.08), S(0.2), S(0.3), S(0.0)],
    [S(0.0), S(0.0), S(0.0), S(0.02), S(0.08)],
    [S(0.0), S(0.0), S(0.0), S(0.0), X],
    [S(0.04), S(0.16), S(0.0), S(0.0), X],
];
const OFF_TD_PASS_CODE: Grid = [
    [S(0.0), S(0.68), S(0.88), S(0.2), S(0.2)],
    [S(0.12), S(0.12), S(0.12), S(0.24), S(0.12)],
    [S(0.0), S(0.0), S(0.2), S(0.12), S(0.0)],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), S(0.0), X],
    [S(0.0), S(0.0), S(0.0), S(0.0), X],
];
const OFF_TD_BUILD_OVERALL: Grid = [
    [S(0.0), S(0.02), S(0.8), S(0.02), S(0.04)],
    [S(0.0), S(0.0), S(0.12), S(0.0), S(0.12)],
    [S(0.0), S(0.04), S(0.16), S(0.04), S(0.0)],
    [S(0.0), S(0.0), S(0.0), S(0.02), S(0.08)],
    [S(0.0), S(0.0), S(0.0), S(0.0), X],
    [S(0.04), S(0.16), S(0.0), S(0.0), X],
];
const OFF_TD_PASS_OVERALL: Grid = [
    [S(0.0), S(0.02), S(0.72), S(0.0), S(0.04)],
    [S(0.0), S(0.0), S(0.12), S(0.0), S(0.04)],
    [S(0.0), S(0.0), S(0.16), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), S(0.0), X],
    [S(0.0), S(0.0), S(0.0), S(0.0), X],
];

// --- Fig. 2(c,d): CUDA → Kokkos ----------------------------------------------

const KK_NA_BUILD_CODE: Grid = [
    [S(0.0), S(0.26), S(1.0), S(1.0), S(0.04)],
    [S(0.0), S(0.4), S(0.96), S(0.04), S(0.12)],
    [S(0.0), S(0.24), S(0.72), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [X, X, S(0.0), S(0.0), S(0.0)],
];
const KK_NA_PASS_CODE: Grid = [
    [S(0.0), S(0.0), S(0.6), S(0.0), S(0.0)],
    [S(0.0), S(0.16), S(0.08), S(0.0), S(0.04)],
    [S(0.0), S(0.0), S(0.24), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [X, X, S(0.0), S(0.0), S(0.0)],
];
const KK_NA_BUILD_OVERALL: Grid = [
    [S(0.0), S(0.0), S(1.0), S(0.0), S(0.0)],
    [S(0.0), S(0.2), S(0.92), S(0.04), S(0.08)],
    [S(0.0), S(0.24), S(0.72), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [X, X, S(0.0), S(0.0), S(0.0)],
];
const KK_NA_PASS_OVERALL: Grid = [
    [S(0.0), S(0.0), S(0.6), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.04), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.24), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [X, X, S(0.0), S(0.0), S(0.0)],
];

const KK_TD_BUILD_CODE: Grid = [
    [S(0.0), S(0.32), S(0.96), S(0.44), S(0.08)],
    [S(0.0), S(0.28), S(0.48), S(0.0), S(0.04)],
    [S(0.0), S(0.2), S(0.28), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), X, X],
    [S(0.0), S(0.0), S(0.0), X, X],
];
const KK_TD_PASS_CODE: Grid = [
    [S(0.0), S(0.0), S(0.04), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.04), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.04), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), X, X],
    [S(0.0), S(0.0), S(0.0), X, X],
];
const KK_TD_BUILD_OVERALL: Grid = [
    [S(0.0), S(0.16), S(0.92), S(0.08), S(0.08)],
    [S(0.0), S(0.2), S(0.44), S(0.0), S(0.04)],
    [S(0.0), S(0.2), S(0.28), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), X, X],
    [S(0.0), S(0.0), S(0.0), X, X],
];
const KK_TD_PASS_OVERALL: Grid = [
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.04), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.0), X, X],
    [S(0.0), S(0.0), S(0.0), X, X],
];

/// SWE-agent (CUDA→Kokkos only, GPT-4o-mini, apps nanoXOR..SimpleMOC).
const SWE_BUILD: [Option<f64>; N_APPS] = [S(0.28), S(0.08), S(0.0), S(0.0), X, X];
const SWE_PASS: [Option<f64>; N_APPS] = [S(0.0), S(0.0), S(0.0), S(0.0), X, X];

// --- Fig. 2(e,f): OpenMP threads → offload (4 apps; SimpleMOC/llm.c N/A) -----

const T2O_NA_BUILD_CODE: Grid = [
    [S(1.0), S(1.0), S(0.84), S(1.0), S(0.6)],
    [S(1.0), S(1.0), S(0.92), S(0.36), S(0.16)],
    [S(1.0), S(0.4), S(0.36), S(0.96), S(0.04)],
    [X, X, X, X, X],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [X, X, X, X, X],
];
const T2O_NA_PASS_CODE: Grid = [
    [S(0.0), S(1.0), S(0.68), S(0.0), S(0.6)],
    [S(0.0), S(0.6), S(0.76), S(0.0), S(0.08)],
    [S(0.0), S(0.4), S(0.32), S(0.68), S(0.04)],
    [X, X, X, X, X],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [X, X, X, X, X],
];
const T2O_NA_BUILD_OVERALL: Grid = [
    [S(0.0), S(0.08), S(0.84), S(0.0), S(0.24)],
    [S(0.0), S(0.0), S(0.84), S(0.0), S(0.08)],
    [S(0.0), S(0.0), S(0.32), S(0.0), S(0.04)],
    [X, X, X, X, X],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [X, X, X, X, X],
];
const T2O_NA_PASS_OVERALL: Grid = [
    [S(0.0), S(0.08), S(0.68), S(0.0), S(0.24)],
    [S(0.0), S(0.0), S(0.68), S(0.0), S(0.04)],
    [S(0.0), S(0.0), S(0.28), S(0.0), S(0.04)],
    [X, X, X, X, X],
    [S(0.0), S(0.0), S(0.0), S(0.0), S(0.0)],
    [X, X, X, X, X],
];

const T2O_TD_BUILD_CODE: Grid = [
    [S(1.0), S(0.96), S(0.96), S(0.44), S(0.2)],
    [S(1.0), S(0.72), S(0.72), S(0.24), S(0.08)],
    [S(0.88), S(0.12), S(0.36), S(0.16), S(0.12)],
    [X, X, X, X, X],
    [S(0.0), S(0.0), S(0.0), S(0.0), X],
    [X, X, X, X, X],
];
const T2O_TD_PASS_CODE: Grid = [
    [S(0.0), S(0.92), S(0.96), S(0.28), S(0.16)],
    [S(0.08), S(0.2), S(0.6), S(0.0), S(0.0)],
    [S(0.08), S(0.08), S(0.32), S(0.08), S(0.08)],
    [X, X, X, X, X],
    [S(0.0), S(0.0), S(0.0), S(0.0), X],
    [X, X, X, X, X],
];
const T2O_TD_BUILD_OVERALL: Grid = [
    [S(0.0), S(0.0), S(0.84), S(0.32), S(0.16)],
    [S(0.0), S(0.0), S(0.4), S(0.12), S(0.04)],
    [S(0.0), S(0.0), S(0.32), S(0.08), S(0.12)],
    [X, X, X, X, X],
    [S(0.0), S(0.0), S(0.0), S(0.0), X],
    [X, X, X, X, X],
];
const T2O_TD_PASS_OVERALL: Grid = [
    [S(0.0), S(0.0), S(0.84), S(0.24), S(0.16)],
    [S(0.0), S(0.0), S(0.32), S(0.0), S(0.0)],
    [S(0.0), S(0.0), S(0.28), S(0.04), S(0.08)],
    [X, X, X, X, X],
    [S(0.0), S(0.0), S(0.0), S(0.0), X],
    [X, X, X, X, X],
];

/// App index in Table 1 order (0 = nanoXOR ... 5 = llm.c).
pub fn app_index(app_name: &str) -> Option<usize> {
    Some(match app_name {
        "nanoXOR" => 0,
        "microXORh" => 1,
        "microXOR" => 2,
        "SimpleMOC-kernel" => 3,
        "XSBench" => 4,
        "llm.c" => 5,
        _ => return None,
    })
}

/// Look up the paper's scores for one heatmap cell.
pub fn paper_cell(
    pair: TranslationPair,
    technique: Technique,
    model_idx: usize,
    app_idx: usize,
) -> CellScores {
    let missing = CellScores {
        build_code: None,
        pass_code: None,
        build_overall: None,
        pass_overall: None,
    };
    if model_idx >= N_MODELS || app_idx >= N_APPS {
        return missing;
    }
    if technique == Technique::SweAgent {
        // Only CUDA→Kokkos with GPT-4o-mini (model index 1).
        if pair != TranslationPair::CUDA_TO_KOKKOS || model_idx != 1 {
            return missing;
        }
        return CellScores {
            build_code: SWE_BUILD[app_idx],
            pass_code: SWE_PASS[app_idx],
            build_overall: SWE_BUILD[app_idx],
            pass_overall: SWE_PASS[app_idx],
        };
    }
    let grids: Option<(&Grid, &Grid, &Grid, &Grid)> = match (pair, technique) {
        (TranslationPair::CUDA_TO_OMP_OFFLOAD, Technique::NonAgentic) => Some((
            &OFF_NA_BUILD_CODE,
            &OFF_NA_PASS_CODE,
            &OFF_NA_BUILD_OVERALL,
            &OFF_NA_PASS_OVERALL,
        )),
        (TranslationPair::CUDA_TO_OMP_OFFLOAD, Technique::TopDownAgentic) => Some((
            &OFF_TD_BUILD_CODE,
            &OFF_TD_PASS_CODE,
            &OFF_TD_BUILD_OVERALL,
            &OFF_TD_PASS_OVERALL,
        )),
        (TranslationPair::CUDA_TO_KOKKOS, Technique::NonAgentic) => Some((
            &KK_NA_BUILD_CODE,
            &KK_NA_PASS_CODE,
            &KK_NA_BUILD_OVERALL,
            &KK_NA_PASS_OVERALL,
        )),
        (TranslationPair::CUDA_TO_KOKKOS, Technique::TopDownAgentic) => Some((
            &KK_TD_BUILD_CODE,
            &KK_TD_PASS_CODE,
            &KK_TD_BUILD_OVERALL,
            &KK_TD_PASS_OVERALL,
        )),
        (TranslationPair::OMP_THREADS_TO_OFFLOAD, Technique::NonAgentic) => Some((
            &T2O_NA_BUILD_CODE,
            &T2O_NA_PASS_CODE,
            &T2O_NA_BUILD_OVERALL,
            &T2O_NA_PASS_OVERALL,
        )),
        (TranslationPair::OMP_THREADS_TO_OFFLOAD, Technique::TopDownAgentic) => Some((
            &T2O_TD_BUILD_CODE,
            &T2O_TD_PASS_CODE,
            &T2O_TD_BUILD_OVERALL,
            &T2O_TD_PASS_OVERALL,
        )),
        _ => None,
    };
    match grids {
        Some((bc, pc, bo, po)) => CellScores {
            build_code: bc[app_idx][model_idx],
            pass_code: pc[app_idx][model_idx],
            build_overall: bo[app_idx][model_idx],
            pass_overall: po[app_idx][model_idx],
        },
        None => missing,
    }
}

/// Plan-time feasibility of one experiment cell, by model/app *name*.
///
/// This is the exact criterion [`crate::SimulatedModel`] samples its attempt
/// plan with (including the index fallback for unknown names), exposed so a
/// harness can mark cells infeasible when enumerating a plan instead of
/// discovering it one failed sample at a time.
pub fn cell_feasible(
    pair: TranslationPair,
    technique: Technique,
    model_name: &str,
    app_name: &str,
) -> bool {
    let midx = crate::profiles::model_index(model_name).unwrap_or(0);
    let aidx = app_index(app_name).unwrap_or(0);
    paper_cell(pair, technique, midx, aidx).was_run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_never_exceeds_build() {
        for pair in TranslationPair::ALL {
            for tech in [Technique::NonAgentic, Technique::TopDownAgentic] {
                for m in 0..N_MODELS {
                    for a in 0..N_APPS {
                        let c = paper_cell(pair, tech, m, a);
                        if let (Some(b), Some(p)) = (c.build_code, c.pass_code) {
                            assert!(
                                p <= b + 1e-9,
                                "{pair} {tech} m{m} a{a}: pass {p} > build {b}"
                            );
                        }
                        if let (Some(b), Some(p)) = (c.build_overall, c.pass_overall) {
                            assert!(p <= b + 1e-9, "{pair} {tech} m{m} a{a} overall");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn key_findings_hold_in_the_tables() {
        // No pass@1 > 0 for apps larger than microXOR anywhere.
        for pair in TranslationPair::ALL {
            for tech in [Technique::NonAgentic, Technique::TopDownAgentic] {
                for m in 0..N_MODELS {
                    for a in 3..N_APPS {
                        let c = paper_cell(pair, tech, m, a);
                        assert_eq!(
                            c.pass_overall.unwrap_or(0.0),
                            0.0,
                            "{pair} {tech} m{m} a{a}"
                        );
                    }
                }
            }
        }
        // The Llama nanoXOR anomaly (Sec. 8.2): worse on nanoXOR than
        // microXORh for non-agentic CUDA→offload code-only pass.
        let nano = paper_cell(
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            Technique::NonAgentic,
            3,
            0,
        );
        let microh = paper_cell(
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            Technique::NonAgentic,
            3,
            1,
        );
        assert!(nano.pass_code.unwrap() < microh.pass_code.unwrap());
    }

    #[test]
    fn missing_cells_match_paper() {
        // Gemini XSBench CUDA→offload non-agentic was not runnable.
        let c = paper_cell(
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            Technique::NonAgentic,
            0,
            4,
        );
        assert!(!c.was_run());
        // QwQ XSBench top-down (all pairs) exceeded the node-hour budget.
        let c = paper_cell(
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            Technique::TopDownAgentic,
            4,
            4,
        );
        assert!(!c.was_run());
        // SWE-agent exists only for CUDA→Kokkos with GPT-4o-mini.
        let c = paper_cell(TranslationPair::CUDA_TO_KOKKOS, Technique::SweAgent, 1, 0);
        assert!(c.was_run());
        let c = paper_cell(
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            Technique::SweAgent,
            1,
            0,
        );
        assert!(!c.was_run());
    }

    #[test]
    fn kokkos_is_hardest_pair() {
        // Mean non-agentic code-only pass across run cells per pair.
        let mean = |pair| {
            let mut sum = 0.0;
            let mut n = 0.0;
            for m in 0..N_MODELS {
                for a in 0..N_APPS {
                    if let Some(p) = paper_cell(pair, Technique::NonAgentic, m, a).pass_code {
                        sum += p;
                        n += 1.0;
                    }
                }
            }
            sum / n
        };
        let kk = mean(TranslationPair::CUDA_TO_KOKKOS);
        assert!(kk < mean(TranslationPair::CUDA_TO_OMP_OFFLOAD));
        assert!(kk < mean(TranslationPair::OMP_THREADS_TO_OFFLOAD));
    }
}
