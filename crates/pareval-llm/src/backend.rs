//! The simulated LLM backend: oracle translation + calibrated error
//! injection + token accounting.
//!
//! One [`SimulatedModel`] instance represents a single *translation attempt*
//! (one sample of one task with one model under one technique). At
//! construction it samples an outcome plan from the paper-calibrated cell
//! probabilities; during translation it produces oracle output, applies the
//! planned mutation to the designated file, and accounts tokens.

use crate::attempt::{Attempt, AttemptSpec, RepairContext, RepairOutcome, TranslationBackend};
use crate::calibration::{app_index, paper_cell, CellScores};
use crate::inject;
use crate::profiles::{model_index, ModelKind, ModelProfile};
use minihpc_build::ErrorCategory;
use minihpc_lang::model::TranslationPair;
use minihpc_lang::repo::{FileKind, SourceRepo};
use pareval_translate::techniques::{Backend, BackendError, BackendOutput, FileJob};
use pareval_translate::{transpile, Technique};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Token usage accumulated over one translation attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TokenUsage {
    pub input: u64,
    pub output: u64,
}

impl TokenUsage {
    pub fn total(&self) -> u64 {
        self.input + self.output
    }
}

/// The sampled plan for this attempt.
#[derive(Debug, Clone, PartialEq)]
enum CodePlan {
    /// Translation is functionally correct.
    Correct,
    /// Builds (with a correct build system) but fails tests.
    WrongResult(inject::FunctionalError),
    /// Fails to compile with this category.
    BuildError(ErrorCategory),
}

#[derive(Debug, Clone, PartialEq)]
enum AttemptPlan {
    /// The paper could not run this configuration.
    Infeasible,
    Run {
        code: CodePlan,
        /// `None` = build file translated correctly; `Some(c)` = broken
        /// with category `c`.
        buildfile_error: Option<ErrorCategory>,
    },
}

/// One injected-and-still-unfixed build error this attempt knows about:
/// what category it planted, where, and both the broken text it emitted and
/// the clean text a successful repair round restores.
#[derive(Debug, Clone)]
struct PendingRepair {
    category: ErrorCategory,
    path: String,
    broken: String,
    clean: String,
    /// Code injection (vs build-file): a successful repair of code re-rolls
    /// functional correctness — compiling is not passing.
    is_code: bool,
}

/// A single simulated translation attempt.
pub struct SimulatedModel {
    profile: ModelProfile,
    technique: Technique,
    pair: TranslationPair,
    source_repo: Arc<SourceRepo>,
    plan: AttemptPlan,
    /// Correct translation, but drop a `reduction` clause (a data race the
    /// build cannot see). Always `false` at the default `race_rate` of 0.
    race_plan: bool,
    /// Which translated file receives the code mutation (resolved lazily).
    mutation_done: bool,
    /// Build errors this attempt injected and has not yet repaired.
    pending: Vec<PendingRepair>,
    /// Per-path text emitted before an injection lands on that path —
    /// chunked files mutate mid-stream, and a repair must re-emit the
    /// whole reassembled file, not just the chunks from the injection on.
    prior_chunks: Vec<(String, String)>,
    /// P(tests pass | code builds) for this cell — what a successfully
    /// repaired code file re-rolls against (fixing the compile error does
    /// not grant correctness beyond the model's calibrated skill).
    p_pass_given_build: f64,
    usage: TokenUsage,
    rng: StdRng,
}

impl SimulatedModel {
    /// Create the attempt. `sample` distinguishes repeated generations of
    /// the same task (pass@k needs N independent samples). The source repo
    /// is shared, not cloned — every attempt on the same task borrows the
    /// same allocation.
    pub fn new(
        profile: ModelProfile,
        technique: Technique,
        pair: TranslationPair,
        app_name: &str,
        source_repo: Arc<SourceRepo>,
        seed: u64,
        sample: u32,
    ) -> Self {
        let midx = model_index(profile.name).unwrap_or(0);
        let aidx = app_index(app_name).unwrap_or(0);
        let cell = paper_cell(pair, technique, midx, aidx);
        let mut rng = StdRng::seed_from_u64(
            seed ^ (sample as u64).wrapping_mul(0x9E3779B97F4A7C15)
                ^ (midx as u64) << 32
                ^ (aidx as u64) << 40,
        );
        let mut plan = Self::sample_plan(&profile, pair, &cell, &mut rng);
        // Short-circuit: profiles with the default race_rate of 0.0 draw
        // nothing here, so default-seed RNG streams (and therefore default
        // grids, journals, and golden reports) are byte-identical to a
        // build without the analyzer.
        let race_plan = profile.race_rate > 0.0 && rng.gen::<f64>() < profile.race_rate;
        if race_plan {
            // Race experiments isolate the dropped clause as the sole
            // defect: the attempt is otherwise correct (and its build file
            // intact), whatever the calibration would have sampled —
            // analyzer runs study the analyzer, not the failure rates.
            if let AttemptPlan::Run {
                code,
                buildfile_error,
            } = &mut plan
            {
                *code = CodePlan::Correct;
                *buildfile_error = None;
            }
        }
        let p_pass_given_build = match cell.build_code {
            Some(b) if b > 0.0 => (cell.pass_code.unwrap_or(0.0) / b).clamp(0.0, 1.0),
            // build@1 = 0 cells give no evidence the model's code can pass.
            _ => 0.0,
        };
        SimulatedModel {
            profile,
            technique,
            pair,
            source_repo,
            plan,
            race_plan,
            mutation_done: false,
            pending: Vec::new(),
            prior_chunks: Vec::new(),
            p_pass_given_build,
            usage: TokenUsage::default(),
            rng,
        }
    }

    pub fn usage(&self) -> TokenUsage {
        self.usage
    }

    /// Was this configuration runnable at all?
    pub fn feasible(&self) -> bool {
        self.plan != AttemptPlan::Infeasible
    }

    fn sample_plan(
        profile: &ModelProfile,
        pair: TranslationPair,
        cell: &CellScores,
        rng: &mut StdRng,
    ) -> AttemptPlan {
        let Some(build_code) = cell.build_code else {
            return AttemptPlan::Infeasible;
        };
        let pass_code = cell.pass_code.unwrap_or(0.0);
        let build_overall = cell.build_overall.unwrap_or(0.0);
        // P(build file ok) estimated from the overall/code-only ratio.
        let p_buildfile = if build_code > 0.0 {
            (build_overall / build_code).clamp(0.0, 1.0)
        } else {
            // Both zero: the ratio is unconstrained; use a moderate prior
            // (the paper notes build systems fail more often than code).
            0.3
        };
        let u: f64 = rng.gen();
        let code = if u < pass_code {
            CodePlan::Correct
        } else if u < build_code {
            CodePlan::WrongResult(Self::pick_functional(pair, rng))
        } else {
            CodePlan::BuildError(Self::pick_weighted(&profile.code_error_weights, rng))
        };
        let buildfile_error = if rng.gen::<f64>() < p_buildfile {
            None
        } else {
            Some(Self::pick_weighted(&profile.buildfile_error_weights, rng))
        };
        AttemptPlan::Run {
            code,
            buildfile_error,
        }
    }

    fn pick_functional(pair: TranslationPair, rng: &mut StdRng) -> inject::FunctionalError {
        use minihpc_lang::model::ExecutionModel;
        match pair.to {
            ExecutionModel::Kokkos => inject::FunctionalError::DropDeepCopyBack,
            _ => {
                if rng.gen::<f64>() < 0.6 {
                    inject::FunctionalError::DropTargetConstruct
                } else {
                    inject::FunctionalError::LoseMapFrom
                }
            }
        }
    }

    fn pick_weighted(weights: &[(ErrorCategory, f64)], rng: &mut StdRng) -> ErrorCategory {
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen::<f64>() * total;
        for (c, w) in weights {
            x -= w;
            if x <= 0.0 {
                return *c;
            }
        }
        weights
            .last()
            .map(|(c, _)| *c)
            .unwrap_or(ErrorCategory::CodeSyntax)
    }

    /// Charge `emitted` characters of generated text to the output budget:
    /// the model's tokenizer rate times its verbosity/reasoning multiplier,
    /// with seeded ±10% noise (Eq. 2 accounting, shared by translation and
    /// repair so the two cannot drift).
    fn charge_output(&mut self, emitted: usize) {
        let base_out = ((emitted as f64) * self.profile.tokens_per_char).ceil() as u64;
        let noise = 0.9 + self.rng.gen::<f64>() * 0.2;
        self.usage.output +=
            ((base_out as f64) * self.profile.output_multiplier * noise).round() as u64;
    }

    /// Remove and return the text this attempt emitted for `path` before
    /// an injection landed on it (empty for unchunked files).
    fn take_prior_chunks(&mut self, path: &str) -> String {
        match self.prior_chunks.iter().position(|(p, _)| p == path) {
            Some(i) => self.prior_chunks.swap_remove(i).1,
            None => String::new(),
        }
    }

    /// Is this translated file the one that should receive the code
    /// mutation? (The file carrying the parallel construct, approximated by
    /// content inspection of the oracle output.)
    fn is_mutation_target(&self, translated: &str) -> bool {
        translated.contains("#pragma omp target")
            || translated.contains("Kokkos::parallel_for")
            || translated.contains("#pragma omp parallel")
    }

    fn infeasibility_error(&self) -> BackendError {
        match (self.technique, self.profile.kind) {
            // Non-agentic runs die on context/output windows (Sec. 8.2).
            (Technique::NonAgentic, _) => BackendError::ContextExceeded {
                needed: self.profile.context_limit * 2,
                limit: self.profile.context_limit,
            },
            // Top-down local runs die on the 8-node-hour budget.
            (_, ModelKind::LocalOpen) => BackendError::BudgetExhausted,
            (_, ModelKind::CommercialApi) => BackendError::BudgetExhausted,
        }
    }
}

impl Attempt for SimulatedModel {
    fn feasible(&self) -> bool {
        SimulatedModel::feasible(self)
    }

    fn usage(&self) -> TokenUsage {
        SimulatedModel::usage(self)
    }

    /// Calibrated repair: for every injected error whose category shows up
    /// in the round's diagnostics, roll the model's per-category fix
    /// probability. A successful roll re-emits the clean text; a failed
    /// roll burns the tokens of an unhelpful patch but emits nothing, so
    /// the repo is untouched and the re-evaluation is a build-cache hit.
    /// (Re-emitting the remembered broken text instead would clobber any
    /// damage a technique applied *after* this backend ran — SWE-agent's
    /// tab corruption — curing it by accident.) Errors the attempt did not
    /// inject cannot be fixed; with nothing addressable the model gives
    /// up.
    fn repair(&mut self, ctx: &RepairContext) -> RepairOutcome {
        // The model reads the structured feedback whether or not it helps.
        self.usage.input += self.profile.count_tokens(&ctx.prompt_text());
        // Guided repair: machine-applicable analyzer fix-its are applied
        // deterministically — no probability roll, no regeneration. The
        // injected directive race those edits cure is retired from the
        // pending list so a later blind round cannot "fix" it again.
        if !ctx.fixits.is_empty() {
            let revised = crate::attempt::apply_fixits(ctx);
            if !revised.is_empty() {
                let emitted: usize = revised.iter().map(|(_, t)| t.len()).sum();
                self.pending.retain(|p| {
                    !(p.category == ErrorCategory::OmpInvalidDirective
                        && revised.iter().any(|(path, _)| *path == p.path))
                });
                self.charge_output(emitted);
                return RepairOutcome::Revised(revised);
            }
        }
        let addressable = self
            .pending
            .iter()
            .any(|p| ctx.categories.contains(&p.category));
        if !addressable {
            return RepairOutcome::GaveUp;
        }
        let mut files = Vec::new();
        let mut emitted = 0usize;
        let mut i = 0;
        while i < self.pending.len() {
            if !ctx.categories.contains(&self.pending[i].category) {
                // Not visible in this round's log (e.g. a code error hiding
                // behind a build-file failure): leave it for a later round.
                i += 1;
                continue;
            }
            let p_fix = self
                .profile
                .repair_fix_probability(self.pending[i].category);
            if self.rng.gen::<f64>() < p_fix {
                let fixed = self.pending.remove(i);
                // A repaired code file compiles, but correctness re-rolls
                // the cell's P(pass | build): fixing the compile error does
                // not grant skill the calibration says the model lacks.
                let mut text = if fixed.is_code && self.rng.gen::<f64>() >= self.p_pass_given_build
                {
                    let kind = Self::pick_functional(self.pair, &mut self.rng);
                    inject::inject_functional_error(&fixed.clean, kind).unwrap_or(fixed.clean)
                } else {
                    fixed.clean
                };
                // Repair writes go through the same editor as the original
                // translation: SWE-agent normalizes tabs on *every* write
                // (paper Sec. 3.3), so a simulated repair can never hand
                // back a tab-intact Makefile that editor would not produce.
                // (The oracle's perfect repair deliberately bypasses this —
                // it is the idealized upper bound.)
                if self.technique == Technique::SweAgent
                    && FileKind::of(&fixed.path) == FileKind::Makefile
                {
                    text = text.replace('\t', "    ");
                }
                emitted += text.len();
                files.push((fixed.path, text));
            } else {
                // Failed attempt: the patch was generated (and is paid
                // for) but discarded, leaving the repo untouched.
                emitted += self.pending[i].broken.len();
                i += 1;
            }
        }
        self.charge_output(emitted);
        RepairOutcome::Revised(files)
    }
}

/// The default [`TranslationBackend`]: paper-calibrated simulation. Each
/// attempt is a fresh [`SimulatedModel`], so grids run through this backend
/// are byte-identical to the pre-trait harness for the same seeds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimulatedBackend;

impl TranslationBackend for SimulatedBackend {
    fn name(&self) -> &'static str {
        "simulated"
    }

    fn start_attempt(&self, spec: &AttemptSpec<'_>) -> Box<dyn Attempt> {
        Box::new(SimulatedModel::new(
            spec.model.clone(),
            spec.technique,
            spec.pair,
            spec.app_name,
            Arc::clone(&spec.source_repo),
            spec.seed,
            spec.sample,
        ))
    }
}

impl Backend for SimulatedModel {
    fn translate(&mut self, job: &FileJob) -> Result<BackendOutput, BackendError> {
        let AttemptPlan::Run {
            code,
            buildfile_error,
        } = self.plan.clone()
        else {
            return Err(self.infeasibility_error());
        };

        // Token accounting: the full prompt in, the emitted text out
        // (scaled by the model's verbosity/reasoning multiplier).
        self.usage.input += self.profile.count_tokens(&job.prompt);

        let output = if job.kind.is_build_file() {
            let sources: Vec<String> = self
                .source_repo
                .iter()
                .filter(|(p, _)| FileKind::of(p) == FileKind::Source)
                .map(|(p, _)| transpile::rename_for_target(p, self.pair.to))
                .collect();
            let (path, mut text) =
                transpile::transpile_build_file(self.pair, &job.binary, &sources);
            if let Some(category) = buildfile_error {
                let clean = text.clone();
                let applied = if let Some(mutated) =
                    inject::inject_buildfile_error(&text, category, self.pair.to)
                {
                    text = mutated;
                    Some(category)
                } else if let Some(mutated) = inject::inject_buildfile_error(
                    &text,
                    ErrorCategory::MakefileMissingTarget,
                    self.pair.to,
                ) {
                    // Fallback anchor when the sampled category does not
                    // apply to this build system.
                    text = mutated;
                    Some(ErrorCategory::MakefileMissingTarget)
                } else {
                    None
                };
                if let Some(category) = applied {
                    self.pending.push(PendingRepair {
                        category,
                        path: path.clone(),
                        broken: text.clone(),
                        clean,
                        is_code: false,
                    });
                }
            }
            BackendOutput {
                files: vec![(path, text)],
                summary: "translated the build system".to_string(),
            }
        } else {
            let r =
                transpile::transpile_file(&self.source_repo, &job.path, &job.contents, self.pair);
            let mut text = r.text;
            let apply_here = self.is_mutation_target(&text);
            let mut injected_now = false;
            match &code {
                // A racy "correct" translation: drop the reduction clause
                // from the file carrying it. Repairable like any injected
                // error — the analyzer's findings arrive under the
                // OmpInvalidDirective category — but `is_code` is false:
                // the surrounding code was already correct, so a successful
                // repair restores the clause verbatim with no correctness
                // re-roll.
                CodePlan::Correct if self.race_plan && !self.mutation_done => {
                    let clean = text.clone();
                    if let Some(m) = inject::inject_race_error(&text) {
                        text = m;
                        self.mutation_done = true;
                        injected_now = true;
                        let prior = self.take_prior_chunks(&r.path);
                        self.pending.push(PendingRepair {
                            category: ErrorCategory::OmpInvalidDirective,
                            path: r.path.clone(),
                            broken: format!("{prior}{text}"),
                            clean: format!("{prior}{clean}"),
                            is_code: false,
                        });
                    }
                }
                CodePlan::Correct => {}
                // Functional errors hit *every* file carrying the parallel
                // construct: a model that drops `target` does so throughout
                // its translation, and apps like llm.c spread kernels across
                // several files.
                CodePlan::WrongResult(kind) if apply_here => {
                    if let Some(m) = inject::inject_functional_error(&text, *kind) {
                        text = m;
                        self.mutation_done = true;
                    }
                }
                // Build-breaking errors hit one file (the first eligible).
                CodePlan::BuildError(category) if apply_here && !self.mutation_done => {
                    let clean = text.clone();
                    let applied = if let Some(m) = inject::inject_code_error(&text, *category) {
                        text = m;
                        Some(*category)
                    } else if let Some(m) =
                        inject::inject_code_error(&text, ErrorCategory::CodeSyntax)
                    {
                        text = m;
                        Some(ErrorCategory::CodeSyntax)
                    } else {
                        None
                    };
                    if let Some(category) = applied {
                        self.mutation_done = true;
                        injected_now = true;
                        // Chunks of this file emitted before the injection
                        // landed are part of the merged file too.
                        let prior = self.take_prior_chunks(&r.path);
                        self.pending.push(PendingRepair {
                            category,
                            path: r.path.clone(),
                            broken: format!("{prior}{text}"),
                            clean: format!("{prior}{clean}"),
                            is_code: true,
                        });
                    }
                }
                _ => {}
            }
            // A pending repair must hold the *whole* file as the technique
            // will reassemble it, so chunks around the injected one are
            // tracked as well: earlier chunks accumulate in `prior_chunks`
            // until an injection lands on the file, later chunks extend the
            // pending entry directly.
            if !injected_now {
                if let Some(p) = self.pending.iter_mut().find(|p| p.path == r.path) {
                    p.broken.push_str(&text);
                    p.clean.push_str(&text);
                } else if (matches!(code, CodePlan::BuildError(_))
                    || (self.race_plan && matches!(code, CodePlan::Correct)))
                    && !self.mutation_done
                {
                    if let Some((_, prior)) =
                        self.prior_chunks.iter_mut().find(|(p, _)| *p == r.path)
                    {
                        prior.push_str(&text);
                    } else {
                        self.prior_chunks.push((r.path.clone(), text.clone()));
                    }
                }
            }
            let summary = format!(
                "translated {} to {} ({} lines)",
                job.path,
                self.pair.to,
                text.lines().count()
            );
            BackendOutput {
                files: vec![(r.path, text)],
                summary,
            }
        };

        let emitted: usize = output.files.iter().map(|(_, c)| c.len()).sum();
        self.charge_output(emitted);
        Ok(output)
    }

    fn context_limit(&self) -> u64 {
        self.profile.context_limit
    }

    fn count_tokens(&self, text: &str) -> u64 {
        self.profile.count_tokens(text)
    }

    fn verbose_context(&self) -> bool {
        self.profile.verbose_context
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::model_by_name;
    use minihpc_build::{build_repo, BuildRequest};
    use pareval_translate::techniques::{translate_with, TranslationJob};

    fn attempt(
        model: &str,
        technique: Technique,
        app_name: &str,
        pair: TranslationPair,
        sample: u32,
    ) -> (pareval_translate::TranslationRun, TokenUsage) {
        let app = pareval_apps::by_name(app_name).unwrap();
        let repo = app.repo_arc(pair.from).unwrap();
        let mut backend = SimulatedModel::new(
            model_by_name(model).unwrap(),
            technique,
            pair,
            app_name,
            Arc::clone(&repo),
            20240612,
            sample,
        );
        let job = TranslationJob {
            app_name: &app.name,
            binary: &app.binary,
            source_repo: &repo,
            pair,
            cli_spec: &app.cli_spec,
            build_spec: &app.build_spec,
        };
        let run = translate_with(technique, &job, &mut backend);
        (run, backend.usage())
    }

    #[test]
    fn o4_mini_often_translates_nanoxor_correctly() {
        // o4-mini non-agentic nanoXOR offload: pass@1 code-only is 0.84 in
        // the paper, so most samples should build.
        let mut built = 0;
        for sample in 0..10 {
            let (run, usage) = attempt(
                "o4-mini",
                Technique::NonAgentic,
                "nanoXOR",
                TranslationPair::CUDA_TO_OMP_OFFLOAD,
                sample,
            );
            assert!(usage.input > 0 && usage.output > 0);
            let repo = run.repo.expect("feasible configuration completes");
            let out = build_repo(&repo, &BuildRequest::new("nanoxor"));
            if out.succeeded() {
                built += 1;
            }
        }
        assert!(built >= 5, "only {built}/10 built");
    }

    #[test]
    fn gemini_never_passes_nanoxor_offload() {
        // pass@1 = 0 for gemini on this cell: every sample must fail tests
        // or fail to build.
        let app = pareval_apps::by_name("nanoXOR").unwrap();
        let case = &app.tests[0];
        let expected = app.expected_output(case);
        for sample in 0..8 {
            let (run, _) = attempt(
                "gemini-1.5-flash",
                Technique::NonAgentic,
                "nanoXOR",
                TranslationPair::CUDA_TO_OMP_OFFLOAD,
                sample,
            );
            let repo = run.repo.unwrap();
            let out = build_repo(&repo, &BuildRequest::new("nanoxor"));
            let Some(exe) = out.executable else { continue };
            let r = minihpc_runtime::run(
                &exe,
                minihpc_runtime::RunConfig::with_args(case.args.iter().cloned()),
            );
            let passed = r.error.is_none() && r.stdout == expected && r.telemetry.ran_on_device();
            assert!(!passed, "sample {sample} unexpectedly passed");
        }
    }

    #[test]
    fn infeasible_cells_fail_to_complete() {
        // Gemini XSBench CUDA→offload non-agentic: not runnable (paper).
        let (run, _) = attempt(
            "gemini-1.5-flash",
            Technique::NonAgentic,
            "XSBench",
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            0,
        );
        assert!(!run.completed());
        assert!(run.failure.unwrap().contains("context window"));

        // QwQ XSBench top-down: node-hour budget.
        let (run, _) = attempt(
            "qwq-32b-q8_0",
            Technique::TopDownAgentic,
            "XSBench",
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            0,
        );
        assert!(!run.completed());
        assert!(run.failure.unwrap().contains("budget"));
    }

    #[test]
    fn qwq_burns_far_more_tokens_than_gemini() {
        let (_, qwq) = attempt(
            "qwq-32b-q8_0",
            Technique::NonAgentic,
            "nanoXOR",
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            0,
        );
        let (_, gem) = attempt(
            "gemini-1.5-flash",
            Technique::NonAgentic,
            "nanoXOR",
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            0,
        );
        assert!(
            qwq.output > gem.output * 10,
            "qwq {} vs gemini {}",
            qwq.output,
            gem.output
        );
    }

    #[test]
    fn repair_rounds_eventually_fix_injected_build_errors() {
        use crate::attempt::{RepairContext, RepairOutcome};
        use minihpc_build::ErrorCategory;

        // gemini nanoXOR offload: build_code = 1.0 but build_overall =
        // 0.58, so broken build files are common. Find a sample whose
        // translation fails to build, then drive repair rounds by hand.
        let app = pareval_apps::by_name("nanoXOR").unwrap();
        let repo = Arc::new(
            app.repo(TranslationPair::CUDA_TO_OMP_OFFLOAD.from)
                .unwrap()
                .clone(),
        );
        let mut fixed_any = false;
        for sample in 0..12 {
            let mut backend = SimulatedModel::new(
                model_by_name("gemini-1.5-flash").unwrap(),
                Technique::NonAgentic,
                TranslationPair::CUDA_TO_OMP_OFFLOAD,
                "nanoXOR",
                Arc::clone(&repo),
                20240612,
                sample,
            );
            let job = TranslationJob {
                app_name: &app.name,
                binary: &app.binary,
                source_repo: &repo,
                pair: TranslationPair::CUDA_TO_OMP_OFFLOAD,
                cli_spec: &app.cli_spec,
                build_spec: &app.build_spec,
            };
            let run = translate_with(Technique::NonAgentic, &job, &mut backend);
            let mut translated = run.repo.unwrap();
            let mut out = build_repo(&translated, &BuildRequest::new("nanoxor"));
            if out.succeeded() {
                continue;
            }
            let before = backend.usage();
            for round in 1..=6u32 {
                let categories: Vec<ErrorCategory> = out.log.errors().map(|d| d.category).collect();
                let files: Vec<String> = out.log.errors().map(|d| d.file.clone()).collect();
                let ctx = RepairContext {
                    round,
                    categories,
                    files,
                    diagnostics: out.log.errors().map(|d| d.to_string()).collect(),
                    race_findings: Vec::new(),
                    fixits: Vec::new(),
                    fixit_sources: Vec::new(),
                };
                match backend.repair(&ctx) {
                    RepairOutcome::GaveUp => break,
                    RepairOutcome::Revised(revised) => {
                        for (p, c) in revised {
                            translated.add(p, c);
                        }
                    }
                }
                out = build_repo(&translated, &BuildRequest::new("nanoxor"));
                if out.succeeded() {
                    fixed_any = true;
                    break;
                }
            }
            // Repair rounds must cost tokens whether or not they succeed.
            assert!(backend.usage().input > before.input);
        }
        assert!(fixed_any, "no failing sample was repaired in 6 rounds");
    }

    #[test]
    fn race_rate_one_yields_building_translations_without_reductions() {
        use crate::attempt::{RepairContext, RepairOutcome};
        // XSBench omp-threads→offload is the cell whose oracle output
        // carries a reduction clause; with race_rate = 1.0 every sample
        // must emit a building repo whose clause is gone.
        let app = pareval_apps::by_name("XSBench").unwrap();
        let pair = TranslationPair::OMP_THREADS_TO_OFFLOAD;
        let repo = app.repo_arc(pair.from).unwrap();
        let mut repaired_any = false;
        for sample in 0..6 {
            let mut backend = SimulatedModel::new(
                model_by_name("o4-mini").unwrap().with_race_rate(1.0),
                Technique::NonAgentic,
                pair,
                "XSBench",
                Arc::clone(&repo),
                20240612,
                sample,
            );
            let job = TranslationJob {
                app_name: &app.name,
                binary: &app.binary,
                source_repo: &repo,
                pair,
                cli_spec: &app.cli_spec,
                build_spec: &app.build_spec,
            };
            let run = translate_with(Technique::NonAgentic, &job, &mut backend);
            let translated = run.repo.expect("race plan forces a runnable attempt");
            assert!(
                !translated.iter().any(|(_, t)| t.contains("reduction(")),
                "sample {sample} kept its reduction clause"
            );
            let out = build_repo(&translated, &BuildRequest::new(&*app.binary));
            assert!(out.succeeded(), "racy sample {sample} must still build");
            // The analyzer's findings arrive under OmpInvalidDirective; a
            // successful repair restores the clause verbatim.
            let ctx = RepairContext {
                round: 1,
                categories: vec![ErrorCategory::OmpInvalidDirective],
                files: Vec::new(),
                diagnostics: Vec::new(),
                race_findings: vec!["[raw-reduction] verification".to_string()],
                fixits: Vec::new(),
                fixit_sources: Vec::new(),
            };
            if let RepairOutcome::Revised(files) = backend.repair(&ctx) {
                if files.iter().any(|(_, t)| t.contains("reduction(")) {
                    repaired_any = true;
                }
            }
        }
        assert!(repaired_any, "no sample repaired its race in one round");
    }

    #[test]
    fn deterministic_given_seed_and_sample() {
        let (a, ua) = attempt(
            "gpt-4o-mini",
            Technique::NonAgentic,
            "microXOR",
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            3,
        );
        let (b, ub) = attempt(
            "gpt-4o-mini",
            Technique::NonAgentic,
            "microXOR",
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            3,
        );
        assert_eq!(a.repo, b.repo);
        assert_eq!(ua, ub);
    }
}
