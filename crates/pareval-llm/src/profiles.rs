//! Model profiles for the five LLMs the paper evaluates (Sec. 4), with
//! token-economy parameters and per-category error tendencies (Fig. 3).

use minihpc_build::ErrorCategory;

/// Hosting kind — determines how cost is accounted (dollars vs node-hours)
/// and which resource limit produces "could not run" cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Commercial API (per-token pricing; context/output window limits).
    CommercialApi,
    /// Locally hosted on Delta A100 nodes via vLLM (node-hour budget).
    LocalOpen,
}

/// A simulated LLM.
#[derive(Debug, Clone)]
pub struct ModelProfile {
    pub name: &'static str,
    pub kind: ModelKind,
    /// Reasoning models emit large thinking traces before the answer.
    pub reasoning: bool,
    /// Context window (tokens).
    pub context_limit: u64,
    /// Approximate tokens per character of text.
    pub tokens_per_char: f64,
    /// Output volume multiplier over the emitted code (reasoning traces,
    /// verbosity). Calibrated to the Fig. 4 orderings.
    pub output_multiplier: f64,
    /// Includes full dependency text in top-down context (paper Sec. 8.4:
    /// local models are far less conservative).
    pub verbose_context: bool,
    /// API price, $ per 1M input tokens (commercial models only).
    pub price_in_per_mtok: f64,
    /// API price, $ per 1M output tokens.
    pub price_out_per_mtok: f64,
    /// Observed generation throughput for local hosting (tokens/second on a
    /// single Delta node; paper Table 2 uses 187 tok/s).
    pub local_tokens_per_second: f64,
    /// Probability that an otherwise *correct* translation silently drops a
    /// `reduction` clause, leaving code that builds (and may even pass the
    /// small test cases) but carries a data race. 0.0 for every shipped
    /// profile — the default simulation draws no extra randomness, so
    /// default-seed grids stay byte-identical — and turned on per-run via
    /// [`ModelProfile::with_race_rate`] for analyzer experiments.
    pub race_rate: f64,
    /// Relative weights for *code* build-error categories (Fig. 3 shape).
    pub code_error_weights: [(ErrorCategory, f64); 6],
    /// Relative weights for *build-file* error categories.
    pub buildfile_error_weights: [(ErrorCategory, f64); 4],
}

/// Base probability that one repair round fixes a build error of this
/// category, given the categorized diagnostics as feedback. Calibrated to
/// the paper's taxonomy discussion (Sec. 6.3): most build failures are
/// "structured and largely mechanical" — a missing header or a stray
/// syntax error names its own fix — while configuration-level failures
/// (CMake config, compiler flags) give little actionable signal.
pub fn base_fix_probability(category: ErrorCategory) -> f64 {
    use ErrorCategory::*;
    match category {
        MissingHeader => 0.90,
        CodeSyntax => 0.85,
        UndeclaredIdentifier => 0.70,
        ArgTypeMismatch => 0.60,
        OmpInvalidDirective => 0.55,
        LinkerError => 0.50,
        BuildFileSyntax => 0.60,
        MakefileMissingTarget => 0.50,
        InvalidCompilerFlag => 0.40,
        CMakeConfig => 0.15,
        MissingFile | Other => 0.25,
    }
}

impl ModelProfile {
    pub fn count_tokens(&self, text: &str) -> u64 {
        ((text.len() as f64) * self.tokens_per_char).ceil() as u64
    }

    /// Per-category probability that one repair round by this model fixes a
    /// build error: the [`base_fix_probability`] with a modest boost for
    /// reasoning models (they read diagnostics more carefully, at the token
    /// prices their output multipliers already charge).
    pub fn repair_fix_probability(&self, category: ErrorCategory) -> f64 {
        let base = base_fix_probability(category);
        if self.reasoning {
            (base * 1.15).min(0.98)
        } else {
            base
        }
    }

    /// Builder for analyzer experiments: the same calibrated profile, but
    /// dropping `reduction` clauses from correct translations with
    /// probability `rate`.
    pub fn with_race_rate(mut self, rate: f64) -> Self {
        self.race_rate = rate.clamp(0.0, 1.0);
        self
    }
}

/// Model index order used throughout (matches the paper's figure columns).
pub const MODEL_ORDER: [&str; 5] = [
    "gemini-1.5-flash",
    "gpt-4o-mini",
    "o4-mini",
    "Llama-3.3-70B",
    "qwq-32b-q8_0",
];

/// All five profiles, in figure-column order.
pub fn all_models() -> Vec<ModelProfile> {
    use ErrorCategory::*;
    vec![
        ModelProfile {
            name: "gemini-1.5-flash",
            kind: ModelKind::CommercialApi,
            reasoning: false,
            context_limit: 1_000_000,
            tokens_per_char: 0.25,
            output_multiplier: 1.0,
            verbose_context: false,
            price_in_per_mtok: 0.0, // free tier (paper Sec. 7.1)
            price_out_per_mtok: 0.0,
            local_tokens_per_second: 0.0,
            race_rate: 0.0,
            // Fig. 3: Gemini struggles with Makefile syntax and compiler
            // flags (SimpleMOC especially), some undeclared identifiers.
            code_error_weights: [
                (MissingHeader, 1.5),
                (CodeSyntax, 0.3),
                (UndeclaredIdentifier, 2.0),
                (ArgTypeMismatch, 0.3),
                (OmpInvalidDirective, 0.5),
                (LinkerError, 0.3),
            ],
            buildfile_error_weights: [
                (BuildFileSyntax, 3.0),
                (MakefileMissingTarget, 1.0),
                (CMakeConfig, 2.0),
                (InvalidCompilerFlag, 3.0),
            ],
        },
        ModelProfile {
            name: "gpt-4o-mini",
            kind: ModelKind::CommercialApi,
            reasoning: false,
            context_limit: 128_000,
            tokens_per_char: 0.25,
            output_multiplier: 0.95,
            verbose_context: false,
            price_in_per_mtok: 0.15,
            price_out_per_mtok: 0.60,
            local_tokens_per_second: 0.0,
            race_rate: 0.0,
            // Fig. 3: argument/type mismatches and linker errors (microXOR).
            code_error_weights: [
                (MissingHeader, 0.8),
                (CodeSyntax, 0.4),
                (UndeclaredIdentifier, 2.0),
                (ArgTypeMismatch, 2.5),
                (OmpInvalidDirective, 0.5),
                (LinkerError, 2.0),
            ],
            buildfile_error_weights: [
                (BuildFileSyntax, 0.8),
                (MakefileMissingTarget, 1.2),
                (CMakeConfig, 2.0),
                (InvalidCompilerFlag, 0.6),
            ],
        },
        ModelProfile {
            name: "o4-mini",
            kind: ModelKind::CommercialApi,
            reasoning: true,
            context_limit: 200_000,
            tokens_per_char: 0.25,
            output_multiplier: 1.6, // reasoning, but economical (Sec. 8.4)
            verbose_context: false,
            price_in_per_mtok: 1.10,
            price_out_per_mtok: 4.40,
            local_tokens_per_second: 0.0,
            race_rate: 0.0,
            // Fig. 3: undeclared identifiers and type mismatches dominate.
            code_error_weights: [
                (MissingHeader, 0.8),
                (CodeSyntax, 0.3),
                (UndeclaredIdentifier, 3.0),
                (ArgTypeMismatch, 2.5),
                (OmpInvalidDirective, 1.0),
                (LinkerError, 1.5),
            ],
            buildfile_error_weights: [
                (BuildFileSyntax, 0.5),
                (MakefileMissingTarget, 0.8),
                (CMakeConfig, 2.0),
                (InvalidCompilerFlag, 0.8),
            ],
        },
        ModelProfile {
            name: "Llama-3.3-70B",
            kind: ModelKind::LocalOpen,
            reasoning: false,
            context_limit: 128_000,
            tokens_per_char: 0.25,
            output_multiplier: 4.0, // verbose local generations (Fig. 4)
            verbose_context: true,
            price_in_per_mtok: 0.0,
            price_out_per_mtok: 0.0,
            local_tokens_per_second: 187.0, // paper Table 2
            race_rate: 0.0,
            // Fig. 3: source-code syntax mistakes are Llama's signature.
            code_error_weights: [
                (MissingHeader, 1.2),
                (CodeSyntax, 3.0),
                (UndeclaredIdentifier, 2.0),
                (ArgTypeMismatch, 1.0),
                (OmpInvalidDirective, 1.0),
                (LinkerError, 0.5),
            ],
            buildfile_error_weights: [
                (BuildFileSyntax, 1.5),
                (MakefileMissingTarget, 1.5),
                (CMakeConfig, 1.5),
                (InvalidCompilerFlag, 1.5),
            ],
        },
        ModelProfile {
            name: "qwq-32b-q8_0",
            kind: ModelKind::LocalOpen,
            reasoning: true,
            context_limit: 32_000,
            tokens_per_char: 0.25,
            output_multiplier: 28.0, // enormous reasoning traces (Fig. 4)
            verbose_context: true,
            price_in_per_mtok: 0.0,
            price_out_per_mtok: 0.0,
            local_tokens_per_second: 187.0,
            race_rate: 0.0,
            code_error_weights: [
                (MissingHeader, 1.5),
                (CodeSyntax, 1.0),
                (UndeclaredIdentifier, 1.5),
                (ArgTypeMismatch, 1.0),
                (OmpInvalidDirective, 1.5),
                (LinkerError, 0.8),
            ],
            buildfile_error_weights: [
                (BuildFileSyntax, 1.0),
                (MakefileMissingTarget, 2.0),
                (CMakeConfig, 1.2),
                (InvalidCompilerFlag, 1.0),
            ],
        },
    ]
}

/// Look up a model by name.
pub fn model_by_name(name: &str) -> Option<ModelProfile> {
    all_models().into_iter().find(|m| m.name == name)
}

/// Index of a model in the figure-column order.
pub fn model_index(name: &str) -> Option<usize> {
    MODEL_ORDER.iter().position(|m| *m == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_models_in_paper_order() {
        let models = all_models();
        assert_eq!(models.len(), 5);
        for (i, m) in models.iter().enumerate() {
            assert_eq!(model_index(m.name), Some(i));
        }
    }

    #[test]
    fn reasoning_models_emit_more_tokens() {
        let models = all_models();
        let by = |n: &str| models.iter().find(|m| m.name == n).unwrap();
        assert!(by("qwq-32b-q8_0").output_multiplier > by("o4-mini").output_multiplier);
        assert!(by("o4-mini").output_multiplier > by("gpt-4o-mini").output_multiplier);
    }

    #[test]
    fn local_models_are_verbose_in_context() {
        for m in all_models() {
            assert_eq!(m.verbose_context, m.kind == ModelKind::LocalOpen);
        }
    }

    #[test]
    fn fix_probabilities_follow_the_taxonomy() {
        use ErrorCategory::*;
        // Mechanical failures are very repairable, configuration-level
        // failures barely (the ISSUE's canonical pair).
        assert!(base_fix_probability(MissingHeader) > 0.8);
        assert!(base_fix_probability(CMakeConfig) < 0.2);
        for c in ErrorCategory::FIGURE3 {
            let p = base_fix_probability(c);
            assert!((0.0..=1.0).contains(&p), "{c}: {p}");
        }
        // Reasoning models repair better, but never with certainty.
        let o4 = model_by_name("o4-mini").unwrap();
        let gpt = model_by_name("gpt-4o-mini").unwrap();
        for c in ErrorCategory::FIGURE3 {
            assert!(o4.repair_fix_probability(c) > gpt.repair_fix_probability(c));
            assert!(o4.repair_fix_probability(c) <= 0.98);
        }
    }

    #[test]
    fn token_counting_is_monotone() {
        let m = model_by_name("o4-mini").unwrap();
        assert!(m.count_tokens("hello world") < m.count_tokens(&"hello world".repeat(10)));
        assert_eq!(m.count_tokens(""), 0);
    }
}
