//! The always-correct backend: the reference transpiler with zero injected
//! errors — an upper-bound workload the paper itself cannot measure.
//!
//! Where [`SimulatedBackend`](crate::SimulatedBackend) reproduces the
//! paper's observed pass rates, [`OracleBackend`] answers "what would a
//! perfect translator score on this harness?": pass@1 = 1.0 under the
//! Code-only scoring on every cell it can run. (Overall can still fall
//! short — the SWE-agent technique corrupts Makefile recipes regardless of
//! translation quality, which is exactly the headroom the oracle makes
//! visible.)

use crate::attempt::{Attempt, AttemptSpec, RepairContext, RepairOutcome, TranslationBackend};
use crate::backend::TokenUsage;
use crate::profiles::ModelProfile;
use minihpc_lang::model::TranslationPair;
use minihpc_lang::repo::SourceRepo;
use pareval_translate::techniques::{Backend, BackendError, BackendOutput, FileJob};
use pareval_translate::{transpile, Technique};
use std::sync::Arc;

/// Large enough that the chunk agent never splits a file, small enough that
/// `chunk_file`'s character-budget arithmetic cannot overflow or truncate,
/// even on 32-bit targets.
const ORACLE_CONTEXT: u64 = u32::MAX as u64;

/// Can the reference transpiler itself solve this task? Two tasks cannot be
/// translated by anyone — the paper records them as unsolved across every
/// model and technique, and `pareval-translate/tests/oracle.rs` asserts the
/// transpiler fails them the same way (cuRAND state through Kokkos views;
/// pointer arithmetic on device helpers).
fn oracle_solvable(pair: TranslationPair, app: &str) -> bool {
    !(pair == TranslationPair::CUDA_TO_KOKKOS && matches!(app, "XSBench" | "SimpleMOC-kernel"))
}

/// A [`TranslationBackend`] that always emits the reference translation.
///
/// Feasibility ignores the paper's context/budget limits: the oracle runs
/// every cell its transpiler can solve, including configurations no real
/// model could attempt. Token accounting is deterministic (no verbosity
/// noise), so oracle grids are fully reproducible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleBackend;

impl TranslationBackend for OracleBackend {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn start_attempt(&self, spec: &AttemptSpec<'_>) -> Box<dyn Attempt> {
        Box::new(OracleAttempt {
            model: spec.model.clone(),
            pair: spec.pair,
            source_repo: Arc::clone(&spec.source_repo),
            solvable: oracle_solvable(spec.pair, spec.app_name),
            translated: None,
            usage: TokenUsage::default(),
        })
    }

    fn cell_feasible(
        &self,
        pair: TranslationPair,
        _technique: Technique,
        _model: &str,
        app: &str,
    ) -> bool {
        oracle_solvable(pair, app)
    }
}

/// One oracle attempt: the transpiler, the model's tokenizer, no errors.
struct OracleAttempt {
    model: ModelProfile,
    pair: TranslationPair,
    source_repo: Arc<SourceRepo>,
    solvable: bool,
    /// The whole-repo reference translation, computed on first use and
    /// served file by file. Going through [`transpile::transpile_repo`]
    /// (rather than per-file transpile calls) keeps repo-level passes —
    /// e.g. injecting the portable-RNG helpers into exactly one file —
    /// intact, so oracle output is exactly the artifact the transpiler's
    /// own integration tests verify.
    translated: Option<SourceRepo>,
    usage: TokenUsage,
}

impl OracleAttempt {
    fn translated(&mut self, binary: &str) -> &SourceRepo {
        self.translated
            .get_or_insert_with(|| transpile::transpile_repo(&self.source_repo, self.pair, binary))
    }
}

impl Backend for OracleAttempt {
    fn translate(&mut self, job: &FileJob) -> Result<BackendOutput, BackendError> {
        if !self.solvable {
            // Unsolvable tasks are excluded at plan time; a direct caller
            // bypassing the plan still gets a clean failure.
            return Err(BackendError::BudgetExhausted);
        }
        self.usage.input += self.model.count_tokens(&job.prompt);
        let pair = self.pair;
        let reference = self.translated(&job.binary);
        let output = if job.kind.is_build_file() {
            let (path, text) = reference
                .build_file()
                .map(|(p, t)| (p.to_string(), t.to_string()))
                .expect("reference translation has a build file");
            BackendOutput {
                files: vec![(path, text)],
                summary: "translated the build system".to_string(),
            }
        } else {
            let path = transpile::rename_for_target(&job.path, pair.to);
            let text = reference
                .get(&path)
                .unwrap_or_else(|| panic!("reference translation lacks {path}"))
                .to_string();
            let summary = format!("translated {} to {}", job.path, pair.to);
            BackendOutput {
                files: vec![(path, text)],
                summary,
            }
        };
        let emitted: usize = output.files.iter().map(|(_, c)| c.len()).sum();
        self.usage.output += ((emitted as f64) * self.model.tokens_per_char).ceil() as u64;
        Ok(output)
    }

    fn context_limit(&self) -> u64 {
        ORACLE_CONTEXT
    }

    fn count_tokens(&self, text: &str) -> u64 {
        self.model.count_tokens(text)
    }
}

impl Attempt for OracleAttempt {
    fn feasible(&self) -> bool {
        self.solvable
    }

    fn usage(&self) -> TokenUsage {
        self.usage
    }

    /// Perfect repair: re-emit the reference translation of every file the
    /// diagnostics point at. The oracle's own output always builds, so this
    /// only ever fires on damage applied *after* the backend ran — e.g. the
    /// SWE-agent technique's tab-normalized Makefiles — which one round
    /// undoes completely.
    fn repair(&mut self, ctx: &RepairContext) -> RepairOutcome {
        self.usage.input += self.model.count_tokens(&ctx.prompt_text());
        // Guided repair: when the harness hands over analyzer fix-its,
        // apply them deterministically. The oracle faithfully transpiles
        // whatever source it is given — a racy generated app stays racy
        // through any number of blind re-emits — so the fix-it path is the
        // only way it ever cures a source-level directive race.
        if !ctx.fixits.is_empty() {
            let revised = crate::attempt::apply_fixits(ctx);
            if !revised.is_empty() {
                let emitted: usize = revised.iter().map(|(_, c)| c.len()).sum();
                self.usage.output += ((emitted as f64) * self.model.tokens_per_char).ceil() as u64;
                return RepairOutcome::Revised(revised);
            }
        }
        let Some(reference) = self.translated.as_ref() else {
            return RepairOutcome::GaveUp;
        };
        let files: Vec<(String, String)> = ctx
            .files
            .iter()
            .filter_map(|p| reference.get(p).map(|t| (p.clone(), t.to_string())))
            .collect();
        if files.is_empty() {
            return RepairOutcome::GaveUp;
        }
        let emitted: usize = files.iter().map(|(_, c)| c.len()).sum();
        self.usage.output += ((emitted as f64) * self.model.tokens_per_char).ceil() as u64;
        RepairOutcome::Revised(files)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::model_by_name;
    use minihpc_build::{build_repo, BuildRequest};
    use pareval_translate::techniques::{translate_with, TranslationJob};

    fn oracle_run(
        app_name: &str,
        pair: TranslationPair,
        technique: Technique,
    ) -> (pareval_translate::TranslationRun, TokenUsage) {
        let app = pareval_apps::by_name(app_name).unwrap();
        let repo = app.repo_arc(pair.from).unwrap();
        let model = model_by_name("gpt-4o-mini").unwrap();
        let spec = AttemptSpec {
            model: &model,
            technique,
            pair,
            app_name: &app.name,
            source_repo: Arc::clone(&repo),
            seed: 1,
            sample: 0,
        };
        let mut attempt = OracleBackend.start_attempt(&spec);
        let job = TranslationJob {
            app_name: &app.name,
            binary: &app.binary,
            source_repo: &repo,
            pair,
            cli_spec: &app.cli_spec,
            build_spec: &app.build_spec,
        };
        let run = translate_with(technique, &job, &mut attempt);
        (run, attempt.usage())
    }

    #[test]
    fn oracle_output_always_builds() {
        for technique in [Technique::NonAgentic, Technique::TopDownAgentic] {
            let (run, usage) =
                oracle_run("nanoXOR", TranslationPair::CUDA_TO_OMP_OFFLOAD, technique);
            let repo = run.repo.expect("oracle completes");
            let out = build_repo(&repo, &BuildRequest::new("nanoxor"));
            assert!(out.succeeded(), "{technique}: {}", out.log.text());
            assert!(usage.input > 0 && usage.output > 0);
        }
    }

    #[test]
    fn oracle_runs_cells_the_paper_could_not() {
        // Gemini XSBench CUDA→offload non-agentic is infeasible for the
        // simulation (context window), feasible for the oracle.
        let pair = TranslationPair::CUDA_TO_OMP_OFFLOAD;
        assert!(!crate::calibration::cell_feasible(
            pair,
            Technique::NonAgentic,
            "gemini-1.5-flash",
            "XSBench"
        ));
        assert!(OracleBackend.cell_feasible(
            pair,
            Technique::NonAgentic,
            "gemini-1.5-flash",
            "XSBench"
        ));
    }

    #[test]
    fn oracle_declines_the_unsolvable_kokkos_tasks() {
        for app in ["XSBench", "SimpleMOC-kernel"] {
            assert!(!OracleBackend.cell_feasible(
                TranslationPair::CUDA_TO_KOKKOS,
                Technique::TopDownAgentic,
                "o4-mini",
                app
            ));
        }
        // ...but solves them under CUDA→offload.
        assert!(OracleBackend.cell_feasible(
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            Technique::TopDownAgentic,
            "o4-mini",
            "XSBench"
        ));
    }

    #[test]
    fn oracle_is_deterministic() {
        let (a, ua) = oracle_run(
            "microXOR",
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            Technique::NonAgentic,
        );
        let (b, ub) = oracle_run(
            "microXOR",
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            Technique::NonAgentic,
        );
        assert_eq!(a.repo, b.repo);
        assert_eq!(ua, ub);
    }
}
