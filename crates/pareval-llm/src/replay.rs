//! Record / replay backends: serialize translation attempts to an
//! in-memory store and play them back verbatim.
//!
//! [`RecordingBackend`] is a transparent proxy over any inner
//! [`TranslationBackend`]: results are identical to the inner backend's,
//! and every attempt's per-file outputs (and errors, usage, and the two
//! knobs a technique branches on — context limit and context verbosity)
//! are committed to a shared [`ReplayStore`] when the attempt finishes.
//! [`ReplayBackend`] then reproduces those attempts without the inner
//! backend at all — deterministic offline re-evaluation of a recorded
//! grid, e.g. to re-score with different eval knobs or to debug error
//! clusters against frozen translations.
//!
//! The store is keyed by [`AttemptKey`] (cell identity plus seed and
//! sample), so a replayed plan must request the same cells, seed, and
//! sample counts as the recorded one; replaying an attempt that was never
//! recorded panics with the missing key.

use crate::attempt::{Attempt, AttemptSpec, RepairContext, RepairOutcome, TranslationBackend};
use crate::backend::TokenUsage;
use minihpc_lang::model::TranslationPair;
use pareval_translate::techniques::{Backend, BackendError, BackendOutput, FileJob};
use pareval_translate::Technique;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identity of one recorded attempt: the cell plus the sampling parameters.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AttemptKey {
    pub pair: TranslationPair,
    pub technique: Technique,
    pub model: String,
    pub app: String,
    pub seed: u64,
    pub sample: u32,
}

impl AttemptKey {
    fn of(spec: &AttemptSpec<'_>) -> Self {
        AttemptKey {
            pair: spec.pair,
            technique: spec.technique,
            model: spec.model.name.to_string(),
            app: spec.app_name.to_string(),
            seed: spec.seed,
            sample: spec.sample,
        }
    }
}

/// Everything needed to replay one attempt byte-for-byte.
#[derive(Debug, Clone)]
struct RecordedAttempt {
    feasible: bool,
    /// Techniques branch on these two backend properties (chunking and
    /// top-down context assembly), so replay must report the recorded
    /// values for the per-file call sequence to line up.
    context_limit: u64,
    verbose_context: bool,
    /// Per-file results in call order.
    steps: Vec<Result<BackendOutput, BackendError>>,
    /// Usage as of the end of the translate phase (before any repair).
    usage_after_translate: TokenUsage,
    /// Repair rounds in call order, each with the cumulative usage after
    /// the round — the harness reads usage between rounds, so replay must
    /// report the same intermediate values, not just the final total.
    repairs: Vec<(RepairOutcome, TokenUsage)>,
}

/// Shared in-memory store of recorded attempts. Cloning the handle shares
/// the underlying store (it is an `Arc` internally).
#[derive(Debug, Clone, Default)]
pub struct ReplayStore {
    inner: Arc<Mutex<BTreeMap<AttemptKey, RecordedAttempt>>>,
}

impl ReplayStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded attempts.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Has any feasible attempt of this cell been recorded?
    pub fn cell_recorded(
        &self,
        pair: TranslationPair,
        technique: Technique,
        model: &str,
        app: &str,
    ) -> bool {
        self.inner.lock().iter().any(|(k, a)| {
            a.feasible
                && k.pair == pair
                && k.technique == technique
                && k.model == model
                && k.app == app
        })
    }

    fn commit(&self, key: AttemptKey, attempt: RecordedAttempt) {
        self.inner.lock().insert(key, attempt);
    }

    fn get(&self, key: &AttemptKey) -> Option<RecordedAttempt> {
        self.inner.lock().get(key).cloned()
    }
}

/// A transparent proxy that records every attempt of an inner backend.
pub struct RecordingBackend {
    inner: Arc<dyn TranslationBackend>,
    store: ReplayStore,
}

impl RecordingBackend {
    pub fn new(inner: impl TranslationBackend + 'static) -> Self {
        RecordingBackend {
            inner: Arc::new(inner),
            store: ReplayStore::new(),
        }
    }

    /// A handle to the shared store (keep one before moving the backend
    /// into a plan; every recorded attempt shows up in it).
    pub fn store(&self) -> ReplayStore {
        self.store.clone()
    }

    /// A replay backend over everything recorded so far (and later —
    /// the store is shared, not snapshotted).
    pub fn replay(&self) -> ReplayBackend {
        ReplayBackend::new(self.store())
    }
}

impl TranslationBackend for RecordingBackend {
    fn name(&self) -> &'static str {
        "recording"
    }

    fn start_attempt(&self, spec: &AttemptSpec<'_>) -> Box<dyn Attempt> {
        Box::new(RecordingAttempt {
            key: Some(AttemptKey::of(spec)),
            inner: self.inner.start_attempt(spec),
            store: self.store.clone(),
            steps: Vec::new(),
            pre_repair_usage: None,
            repairs: Vec::new(),
        })
    }

    fn cell_feasible(
        &self,
        pair: TranslationPair,
        technique: Technique,
        model: &str,
        app: &str,
    ) -> bool {
        self.inner.cell_feasible(pair, technique, model, app)
    }
}

/// Wraps an inner attempt; commits the transcript to the store on drop
/// (i.e. when the harness finishes the sample).
struct RecordingAttempt {
    key: Option<AttemptKey>,
    inner: Box<dyn Attempt>,
    store: ReplayStore,
    steps: Vec<Result<BackendOutput, BackendError>>,
    /// Usage snapshot taken at the first `repair` call — the translate
    /// phase's final usage, which replay reports until its own first round.
    pre_repair_usage: Option<TokenUsage>,
    repairs: Vec<(RepairOutcome, TokenUsage)>,
}

impl Backend for RecordingAttempt {
    fn translate(&mut self, job: &FileJob) -> Result<BackendOutput, BackendError> {
        let result = self.inner.translate(job);
        self.steps.push(result.clone());
        result
    }

    fn context_limit(&self) -> u64 {
        self.inner.context_limit()
    }

    fn count_tokens(&self, text: &str) -> u64 {
        self.inner.count_tokens(text)
    }

    fn verbose_context(&self) -> bool {
        self.inner.verbose_context()
    }
}

impl Attempt for RecordingAttempt {
    fn feasible(&self) -> bool {
        self.inner.feasible()
    }

    fn usage(&self) -> TokenUsage {
        self.inner.usage()
    }

    fn repair(&mut self, ctx: &RepairContext) -> RepairOutcome {
        if self.pre_repair_usage.is_none() {
            self.pre_repair_usage = Some(self.inner.usage());
        }
        let outcome = self.inner.repair(ctx);
        self.repairs.push((outcome.clone(), self.inner.usage()));
        outcome
    }
}

impl Drop for RecordingAttempt {
    fn drop(&mut self) {
        let key = self.key.take().expect("recording attempt dropped twice");
        self.store.commit(
            key,
            RecordedAttempt {
                feasible: self.inner.feasible(),
                context_limit: self.inner.context_limit(),
                verbose_context: self.inner.verbose_context(),
                steps: std::mem::take(&mut self.steps),
                usage_after_translate: self.pre_repair_usage.unwrap_or_else(|| self.inner.usage()),
                repairs: std::mem::take(&mut self.repairs),
            },
        );
    }
}

/// Replays a [`ReplayStore`] verbatim: per-file outputs, errors, and token
/// usage all come from the recording, never from a live model.
pub struct ReplayBackend {
    store: ReplayStore,
}

impl ReplayBackend {
    pub fn new(store: ReplayStore) -> Self {
        ReplayBackend { store }
    }
}

impl TranslationBackend for ReplayBackend {
    fn name(&self) -> &'static str {
        "replay"
    }

    /// # Panics
    ///
    /// Panics when no attempt was recorded for this spec — a replayed plan
    /// must match the recorded one in cells, seed, and sample counts.
    fn start_attempt(&self, spec: &AttemptSpec<'_>) -> Box<dyn Attempt> {
        let key = AttemptKey::of(spec);
        let record = self
            .store
            .get(&key)
            .unwrap_or_else(|| panic!("replay: no recorded attempt for {key:?}"));
        Box::new(ReplayAttempt {
            record,
            cursor: 0,
            repair_cursor: 0,
        })
    }

    /// A cell is feasible iff a feasible attempt of it was recorded.
    fn cell_feasible(
        &self,
        pair: TranslationPair,
        technique: Technique,
        model: &str,
        app: &str,
    ) -> bool {
        self.store.cell_recorded(pair, technique, model, app)
    }
}

struct ReplayAttempt {
    record: RecordedAttempt,
    cursor: usize,
    repair_cursor: usize,
}

impl Backend for ReplayAttempt {
    fn translate(&mut self, job: &FileJob) -> Result<BackendOutput, BackendError> {
        let step = self.record.steps.get(self.cursor).unwrap_or_else(|| {
            panic!(
                "replay: attempt exhausted after {} recorded steps (next request: {})",
                self.record.steps.len(),
                job.path
            )
        });
        self.cursor += 1;
        step.clone()
    }

    fn context_limit(&self) -> u64 {
        self.record.context_limit
    }

    fn count_tokens(&self, text: &str) -> u64 {
        // Not recorded: techniques never branch on token counts, only on
        // the context limit and verbosity above.
        (text.len() as u64).div_ceil(4)
    }

    fn verbose_context(&self) -> bool {
        self.record.verbose_context
    }
}

impl Attempt for ReplayAttempt {
    fn feasible(&self) -> bool {
        self.record.feasible
    }

    /// Usage as of the last replayed call — the harness samples usage after
    /// the translate phase and after every repair round, and each sample
    /// must match what the recording reported at the same point.
    fn usage(&self) -> TokenUsage {
        if self.repair_cursor == 0 {
            self.record.usage_after_translate
        } else {
            self.record.repairs[self.repair_cursor - 1].1
        }
    }

    /// # Panics
    ///
    /// Panics when the recording holds no further repair rounds — a
    /// replayed plan must use the same `repair_budget` as the recorded one.
    fn repair(&mut self, _ctx: &RepairContext) -> RepairOutcome {
        let (outcome, _) = self
            .record
            .repairs
            .get(self.repair_cursor)
            .unwrap_or_else(|| {
                panic!(
                    "replay: attempt exhausted after {} recorded repair rounds",
                    self.record.repairs.len()
                )
            });
        self.repair_cursor += 1;
        outcome.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimulatedBackend;
    use crate::profiles::model_by_name;
    use pareval_translate::techniques::{translate_with, TranslationJob};

    fn spec_for<'a>(
        model: &'a crate::ModelProfile,
        repo: &Arc<minihpc_lang::repo::SourceRepo>,
        app_name: &'a str,
        sample: u32,
    ) -> AttemptSpec<'a> {
        AttemptSpec {
            model,
            technique: Technique::NonAgentic,
            pair: TranslationPair::CUDA_TO_OMP_OFFLOAD,
            app_name,
            source_repo: Arc::clone(repo),
            seed: 7,
            sample,
        }
    }

    fn translate(
        backend: &dyn TranslationBackend,
        spec: &AttemptSpec<'_>,
    ) -> (pareval_translate::TranslationRun, TokenUsage) {
        let app = pareval_apps::by_name(spec.app_name).unwrap();
        let job = TranslationJob {
            app_name: &app.name,
            binary: &app.binary,
            source_repo: &spec.source_repo,
            pair: spec.pair,
            cli_spec: &app.cli_spec,
            build_spec: &app.build_spec,
        };
        let mut attempt = backend.start_attempt(spec);
        let run = translate_with(spec.technique, &job, &mut attempt);
        (run, attempt.usage())
    }

    #[test]
    fn replay_reproduces_the_recording_byte_for_byte() {
        let app = pareval_apps::by_name("nanoXOR").unwrap();
        let repo = Arc::new(
            app.repo(TranslationPair::CUDA_TO_OMP_OFFLOAD.from)
                .unwrap()
                .clone(),
        );
        let model = model_by_name("gpt-4o-mini").unwrap();
        let recording = RecordingBackend::new(SimulatedBackend);
        let replay = recording.replay();

        for sample in 0..4 {
            let spec = spec_for(&model, &repo, "nanoXOR", sample);
            let (recorded, recorded_usage) = translate(&recording, &spec);
            let (replayed, replayed_usage) = translate(&replay, &spec);
            assert_eq!(recorded.repo, replayed.repo, "sample {sample}");
            assert_eq!(recorded.failure, replayed.failure);
            assert_eq!(recorded_usage, replayed_usage);
        }
        assert_eq!(replay.store.len(), 4);
    }

    #[test]
    fn recording_is_transparent() {
        let app = pareval_apps::by_name("microXOR").unwrap();
        let repo = Arc::new(
            app.repo(TranslationPair::CUDA_TO_OMP_OFFLOAD.from)
                .unwrap()
                .clone(),
        );
        let model = model_by_name("o4-mini").unwrap();
        let recording = RecordingBackend::new(SimulatedBackend);
        let spec = spec_for(&model, &repo, "microXOR", 2);
        let (via_recording, usage_rec) = translate(&recording, &spec);
        let (direct, usage_direct) = translate(&SimulatedBackend, &spec);
        assert_eq!(via_recording.repo, direct.repo);
        assert_eq!(usage_rec, usage_direct);
    }

    #[test]
    fn replay_marks_unrecorded_cells_infeasible() {
        let replay = ReplayBackend::new(ReplayStore::new());
        assert!(!replay.cell_feasible(
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            Technique::NonAgentic,
            "o4-mini",
            "nanoXOR"
        ));
    }

    #[test]
    #[should_panic(expected = "no recorded attempt")]
    fn replaying_an_unrecorded_attempt_panics() {
        let model = model_by_name("o4-mini").unwrap();
        let repo = Arc::new(minihpc_lang::repo::SourceRepo::new());
        let spec = spec_for(&model, &repo, "nanoXOR", 0);
        ReplayBackend::new(ReplayStore::new()).start_attempt(&spec);
    }
}
