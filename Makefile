# Development entry points mirroring the tier-1 verify
# (`cargo build --release && cargo test -q`).

.PHONY: all build test doc fmt fmt-fix clippy bench verify clean

all: verify

build:
	cargo build --release

test:
	cargo test -q

doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

fmt:
	cargo fmt --all --check

fmt-fix:
	cargo fmt --all

clippy:
	cargo clippy --workspace --all-targets

bench:
	cargo bench

verify: build test

clean:
	cargo clean
