# Development entry points. `make verify` is the documented tier-1 gate:
# release build, tests, clippy with warnings denied, a format check, docs
# with warnings denied, and every example executed end to end.

.PHONY: all build test doc fmt fmt-fix clippy bench bench-smoke examples verify clean

all: verify

build:
	cargo build --release

test:
	cargo test -q

doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

fmt:
	cargo fmt --all --check

fmt-fix:
	cargo fmt --all

clippy:
	cargo clippy --all-targets -- -D warnings

bench:
	cargo bench

# Quick-mode figure benches for CI-style smoke runs: small sample counts,
# and the repair bench drops BENCH_repair.json at the repo root — the
# machine-readable budget-0-vs-3 wall-time + pass@1 trajectory future PRs
# compare against.
bench-smoke:
	PAREVAL_SAMPLES=2 cargo bench --bench fig2_correctness
	PAREVAL_SAMPLES=2 PAREVAL_BENCH_JSON=$(CURDIR)/BENCH_repair.json \
		cargo bench --bench repair_loop

# Every example must run to completion (exit 0); output is discarded.
examples: build
	cargo run --release --example quickstart > /dev/null
	cargo run --release --example suite_stats > /dev/null
	cargo run --release --example translate_xsbench > /dev/null
	cargo run --release --example error_clustering > /dev/null
	cargo run --release --example experiment_stream > /dev/null
	cargo run --release --example oracle_upper_bound > /dev/null
	cargo run --release --example repair_loop > /dev/null

verify: build test clippy fmt doc examples

clean:
	cargo clean
