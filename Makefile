# Development entry points. `make verify` is the documented tier-1 gate:
# release build, tests, clippy with warnings denied, and a format check.

.PHONY: all build test doc fmt fmt-fix clippy bench verify clean

all: verify

build:
	cargo build --release

test:
	cargo test -q

doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

fmt:
	cargo fmt --all --check

fmt-fix:
	cargo fmt --all

clippy:
	cargo clippy --all-targets -- -D warnings

bench:
	cargo bench

verify: build test clippy fmt

clean:
	cargo clean
