# Development entry points. `make verify` is the documented tier-1 gate:
# release build, tests, clippy with warnings denied, a format check, docs
# with warnings denied, and every example executed end to end.

.PHONY: all build test doc fmt fmt-fix clippy bench bench-smoke sched-smoke incr-smoke resume-smoke analyze-smoke gen-smoke fuzz-smoke examples verify clean

all: verify

build:
	cargo build --release

test:
	cargo test -q

doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

fmt:
	cargo fmt --all --check

fmt-fix:
	cargo fmt --all

clippy:
	cargo clippy --all-targets -- -D warnings

bench:
	cargo bench

# Quick-mode figure benches for CI-style smoke runs: small sample counts,
# and the repair/scheduler benches drop BENCH_repair.json / BENCH_sched.json
# at the repo root — the machine-readable trajectories future PRs compare
# against.
bench-smoke: sched-smoke
	PAREVAL_SAMPLES=2 cargo bench --bench fig2_correctness
	PAREVAL_SAMPLES=2 PAREVAL_BENCH_JSON=$(CURDIR)/BENCH_repair.json \
		cargo bench --bench repair_loop
	@for key in '"bench": "repair_loop"' '"samples_per_cell"' \
		'"wall_time_s"' '"build_at_1_overall"' '"pass_at_1_overall"' \
		'"mean_tokens_per_sample"' '"max_repair_round"'; do \
		grep -q "$$key" BENCH_repair.json \
			|| { echo "bench-smoke: BENCH_repair.json missing key $$key"; exit 1; }; \
	done
	@echo "bench-smoke: BENCH_repair.json keys present"

# The scheduler gate: regenerate BENCH_sched.json (round-robin vs
# work-stealing sleep-replay makespans at 1/2/4/8 workers), then fail if
# required keys are missing or work stealing fell below round-robin at 4
# workers. The checked-in JSON should show >= 1.2x there.
sched-smoke:
	PAREVAL_BENCH_JSON=$(CURDIR)/BENCH_sched.json cargo bench --bench scheduler
	@for key in '"bench": "scheduler"' '"workers"' '"round_robin_wall_s"' \
		'"work_stealing_wall_s"' '"speedup_at_4"' '"steals_at_4"' \
		'"repair_budget"' '"real_grid_wall_s"'; do \
		grep -q "$$key" BENCH_sched.json \
			|| { echo "sched-smoke: BENCH_sched.json missing key $$key"; exit 1; }; \
	done
	@awk -F'[:,]' '/"speedup_at_4"/ { \
		if ($$2 + 0.0 < 1.0) { \
			printf "sched-smoke: work stealing regressed below round-robin at 4 workers (%.2fx)\n", $$2; \
			exit 1; \
		} else { \
			printf "sched-smoke: work stealing %.2fx round-robin at 4 workers\n", $$2; \
		} \
	}' BENCH_sched.json

# The incremental gate: regenerate BENCH_incr.json (whole-repo vs
# file-granular caching, serial best-of-3 over the repair-heavy budget-3
# grid), then fail if required keys are missing or the file-granular path
# regressed below the whole-repo baseline. The checked-in JSON should show
# >= 1.0x with a large unit hit count.
incr-smoke:
	PAREVAL_BENCH_JSON=$(CURDIR)/BENCH_incr.json cargo bench --bench incremental
	@for key in '"bench": "incremental"' '"samples_per_cell"' \
		'"repair_budget"' '"whole_repo_wall_s"' '"file_granular_wall_s"' \
		'"speedup"' '"file_hits"' '"file_misses"'; do \
		grep -q "$$key" BENCH_incr.json \
			|| { echo "incr-smoke: BENCH_incr.json missing key $$key"; exit 1; }; \
	done
	@awk -F'[:,]' '/"speedup"/ { \
		if ($$2 + 0.0 < 1.0) { \
			printf "incr-smoke: file-granular caching regressed below whole-repo (%.2fx)\n", $$2; \
			exit 1; \
		} else { \
			printf "incr-smoke: file-granular caching %.2fx whole-repo\n", $$2; \
		} \
	}' BENCH_incr.json
	@awk -F'[:,]' '/"file_hits"/ { \
		if ($$2 + 0 == 0) { \
			print "incr-smoke: the unit tier never hit; the A/B is vacuous"; \
			exit 1; \
		} \
	}' BENCH_incr.json

# The durability gate: run a journaled grid with an injected mid-run
# crash, resume from the journal, and require the resumed report bytes to
# match an uninterrupted serial run (the example asserts the diff and
# prints the line this target greps for).
resume-smoke: build
	@cargo run --release --example resume_run | tee /tmp/resume_smoke.out
	@grep -q 'resume-smoke: report bytes identical' /tmp/resume_smoke.out \
		|| { echo "resume-smoke: crash/resume byte-identity line missing"; exit 1; }

# The analyzer gate: run the static race analyzer over the oracle grid
# (must be race-clean) and an injected-race grid (every injected site must
# be flagged), drop BENCH_analyze.json, and fail if the example's
# assertion line or a required key is missing. Then run the guided-repair
# benchmark (analyzer fix-its vs blind regeneration on injected-race and
# generated-racy grids), drop BENCH_analyze_v2.json, and fail if guided
# repair regressed below blind in rounds-to-race-free.
analyze-smoke: build
	@PAREVAL_BENCH_JSON=$(CURDIR)/BENCH_analyze.json \
		cargo run --release --example analyze_grid | tee /tmp/analyze_smoke.out
	@grep -q 'analyze-smoke: oracle grid race-clean' /tmp/analyze_smoke.out \
		|| { echo "analyze-smoke: gate line missing"; exit 1; }
	@for key in '"bench": "analyze"' '"oracle_built"' '"oracle_error_findings"' \
		'"injected_samples"' '"injected_flagged"' '"raw_reduction_findings"' \
		'"race_free_at_1_injected"'; do \
		grep -q "$$key" BENCH_analyze.json \
			|| { echo "analyze-smoke: BENCH_analyze.json missing key $$key"; exit 1; }; \
	done
	@PAREVAL_BENCH_JSON=$(CURDIR)/BENCH_analyze_v2.json \
		cargo run --release --example guided_repair | tee /tmp/guided_smoke.out
	@grep -q 'guided-repair-smoke: guided race-free' /tmp/guided_smoke.out \
		|| { echo "analyze-smoke: guided-repair gate line missing"; exit 1; }
	@for key in '"bench": "analyze_v2"' '"sim_blind_race_free"' \
		'"sim_guided_race_free"' '"sim_blind_mean_rounds"' \
		'"sim_guided_mean_rounds"' '"oracle_blind_race_free"' \
		'"oracle_guided_race_free"' '"oracle_guided_mean_rounds"'; do \
		grep -q "$$key" BENCH_analyze_v2.json \
			|| { echo "analyze-smoke: BENCH_analyze_v2.json missing key $$key"; exit 1; }; \
	done
	@awk -F': ' '/"sim_blind_mean_rounds": null/ { blind_null = 1 } \
		/"sim_blind_mean_rounds"/ { blind = $$2 + 0.0 } \
		/"sim_guided_mean_rounds"/ { guided = $$2 + 0.0 } \
		END { \
			if (blind_null) { \
				printf "analyze-smoke: guided %.2f rounds, blind never race-free\n", guided; \
			} else if (guided > blind) { \
				printf "analyze-smoke: guided repair regressed below blind (%.2f > %.2f rounds)\n", guided, blind; \
				exit 1; \
			} else { \
				printf "analyze-smoke: guided %.2f rounds <= blind %.2f\n", guided, blind; \
			} \
		}' BENCH_analyze_v2.json

# The generated-grid gate: run the ≥1000-cell synthetic-app stress grid
# (streaming aggregation, journal, disk cache) at 1/4/8 workers — the
# example asserts byte-identical results and bounded in-flight records —
# then fail if the gate line or a BENCH_gen.json key is missing.
gen-smoke: build
	@PAREVAL_BENCH_JSON=$(CURDIR)/BENCH_gen.json \
		cargo run --release --example stress_grid | tee /tmp/gen_smoke.out
	@grep -q 'gen-smoke: .* cells byte-identical across workers' /tmp/gen_smoke.out \
		|| { echo "gen-smoke: gate line missing"; exit 1; }
	@for key in '"bench": "gen"' '"cells"' '"samples"' '"cells_per_sec"' \
		'"peak_retained_records"' '"cache_hit_rate"'; do \
		grep -q "$$key" BENCH_gen.json \
			|| { echo "gen-smoke: BENCH_gen.json missing key $$key"; exit 1; }; \
	done

# The pipeline-fuzzing gate: generated repos across the generator's whole
# knob space (all pragma models, both build systems, every injected-error
# profile) through parse/sema/build/run + the analyzer, twice each — the
# example asserts determinism and per-profile expectations and prints the
# line this target greps for.
fuzz-smoke: build
	@cargo run --release --example fuzz_pipeline | tee /tmp/fuzz_smoke.out
	@grep -q 'fuzz-smoke: .* 0 divergences' /tmp/fuzz_smoke.out \
		|| { echo "fuzz-smoke: gate line missing"; exit 1; }

# Every example must run to completion (exit 0); output is discarded.
examples: build
	cargo run --release --example quickstart > /dev/null
	cargo run --release --example suite_stats > /dev/null
	cargo run --release --example translate_xsbench > /dev/null
	cargo run --release --example error_clustering > /dev/null
	cargo run --release --example experiment_stream > /dev/null
	cargo run --release --example oracle_upper_bound > /dev/null
	cargo run --release --example repair_loop > /dev/null
	cargo run --release --example resume_run > /dev/null
	cargo run --release --example analyze_grid > /dev/null
	cargo run --release --example analyze_repo > /dev/null
	cargo run --release --example guided_repair > /dev/null
	cargo run --release --example stress_grid > /dev/null
	cargo run --release --example fuzz_pipeline > /dev/null

verify: build test clippy fmt doc examples sched-smoke incr-smoke resume-smoke analyze-smoke gen-smoke fuzz-smoke

clean:
	cargo clean
