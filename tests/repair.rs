//! Integration tests for the repair-loop subsystem: bounded repair rounds
//! strictly improve build rates, repaired grids stay deterministic, record →
//! replay round-trips include repair rounds, and the oracle undoes
//! technique-level damage in one round.

use minihpc_lang::model::TranslationPair;
use pareval_core::{
    report, EvalConfig, EvalPipeline, ExperimentPlan, ExperimentPlanBuilder, Metric, NullSink,
    Runner, ScheduledRunner, Scoring, SerialRunner,
};
use pareval_llm::{all_models, OracleBackend, RecordingBackend, ReplayBackend, SimulatedBackend};
use pareval_repo as _;
use pareval_translate::Technique;
use std::sync::Arc;

fn eval_with_budget(budget: u32) -> EvalConfig {
    EvalConfig {
        max_cases: 1,
        repair_budget: budget,
        ..EvalConfig::default()
    }
}

/// The repair slice: one pair, two techniques, the three XOR apps — cells
/// with plenty of build failures to repair.
fn slice(budget: u32) -> ExperimentPlanBuilder {
    ExperimentPlan::builder()
        .samples(6)
        .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
        .techniques([Technique::NonAgentic, Technique::TopDownAgentic])
        .apps(["nanoXOR", "microXORh", "microXOR"])
        .eval(eval_with_budget(budget))
}

#[test]
fn repair_budget_monotonically_improves_build_rates() {
    let baseline = ScheduledRunner::new(4).run(&slice(0).build());
    let repaired = ScheduledRunner::new(4).run(&slice(3).build());

    let mut improved = 0;
    for (key, cell) in &repaired.cells {
        if cell.samples() == 0 {
            continue;
        }
        let before = baseline
            .cell(key.pair, key.technique, key.model, key.app)
            .unwrap();
        for scoring in Scoring::ALL {
            let b0 = before.rate(Metric::Build, scoring, 1);
            let b3 = cell.rate(Metric::Build, scoring, 1);
            assert!(
                b3 >= b0 - 1e-12,
                "repair must never hurt build@1 on {key:?} ({scoring:?}): {b0} -> {b3}"
            );
            // Round 0 of the repaired run is the unrepaired harness.
            assert!(
                (cell.rate_at_round(Metric::Build, scoring, 1, 0) - b0).abs() < 1e-12,
                "round 0 must match the budget-0 run on {key:?}"
            );
            if b3 > b0 + 1e-12 {
                improved += 1;
            }
        }
        // Rates by round are monotone: a repaired sample never un-builds.
        for round in 0..cell.max_repair_round() {
            assert!(
                cell.successes_at_round(Metric::Build, Scoring::Overall, round + 1)
                    >= cell.successes_at_round(Metric::Build, Scoring::Overall, round),
                "build successes regressed between rounds on {key:?}"
            );
        }
    }
    assert!(
        improved > 0,
        "at least one cell's build@1 must strictly improve with repair"
    );
    assert!(repaired.max_repair_round() >= 1, "repairs must have run");
}

#[test]
fn repair_tokens_count_toward_the_sample_cost() {
    // Eq. 2 semantics: a repaired cell's mean tokens must include the
    // repair rounds — strictly more than the same cell translated with no
    // budget, whenever any of its samples entered the loop.
    let baseline = SerialRunner.run(&slice(0).build());
    let repaired = SerialRunner.run(&slice(2).build());
    let mut checked = 0;
    for (key, cell) in &repaired.cells {
        if cell.max_repair_round() == 0 {
            continue;
        }
        let before = baseline
            .cell(key.pair, key.technique, key.model, key.app)
            .unwrap();
        let t0 = before.tokens().mean().unwrap();
        let t_final = cell.tokens().mean().unwrap();
        assert!(
            t_final > t0,
            "repair rounds must cost tokens on {key:?}: {t0} vs {t_final}"
        );
        // Per-round token means are monotone in the round.
        for round in 0..cell.max_repair_round() {
            let a = cell.tokens_at_round(round).mean().unwrap();
            let b = cell.tokens_at_round(round + 1).mean().unwrap();
            assert!(b >= a, "cumulative tokens shrank between rounds");
        }
        checked += 1;
    }
    assert!(checked > 0, "no cell entered the repair loop");
}

#[test]
fn repaired_cached_parallel_matches_uncached_serial() {
    // The determinism contract survives the repair loop: cache + sharding
    // must be invisible at any budget.
    let cached = ScheduledRunner::new(4).run(&slice(2).build());
    let uncached_eval = EvalConfig {
        build_cache: false,
        ..eval_with_budget(2)
    };
    let uncached_pipeline = EvalPipeline::new(uncached_eval.clone());
    let uncached = SerialRunner.run_with(
        &slice(2).eval(uncached_eval).build(),
        &uncached_pipeline,
        &NullSink,
    );
    assert_eq!(uncached_pipeline.cache_stats().misses, 0);
    assert_eq!(cached, uncached);
    assert_eq!(format!("{cached:?}"), format!("{uncached:?}"));
}

#[test]
fn record_replay_round_trip_includes_repair_rounds() {
    let recording = RecordingBackend::new(SimulatedBackend);
    let store = recording.store();

    let record_plan = slice(2).backend(Arc::new(recording)).build();
    let recorded = ScheduledRunner::new(3).run(&record_plan);
    assert!(
        recorded.max_repair_round() >= 1,
        "the recorded grid must exercise repair"
    );

    let replay_plan = slice(2)
        .backend(Arc::new(ReplayBackend::new(store)))
        .build();
    let replayed = SerialRunner.run(&replay_plan);
    assert_eq!(recorded, replayed);
    assert_eq!(format!("{recorded:?}"), format!("{replayed:?}"));

    // The recording proxy itself must be transparent under repair.
    let direct = SerialRunner.run(&slice(2).build());
    assert_eq!(direct, replayed);
}

#[test]
fn oracle_repairs_swe_agent_corruption_in_one_round() {
    // The SWE-agent technique tab-normalizes Makefiles *after* the backend
    // runs, sinking the oracle's Overall build to zero. One repair round
    // re-emits the reference Makefile and restores Overall pass@1 = 1.0 —
    // headroom only an iterative workflow can reclaim.
    let base = |budget: u32| {
        ExperimentPlan::builder()
            .samples(2)
            .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
            .techniques([Technique::SweAgent])
            .models(all_models().into_iter().filter(|m| m.name == "o4-mini"))
            .apps(["nanoXOR", "microXOR"])
            .backend(Arc::new(OracleBackend))
            .eval(eval_with_budget(budget))
            .build()
    };
    let broken = SerialRunner.run(&base(0));
    let repaired = SerialRunner.run(&base(1));
    let mut cells = 0;
    for (key, cell) in &repaired.cells {
        if cell.samples() == 0 {
            continue;
        }
        let before = broken
            .cell(key.pair, key.technique, key.model, key.app)
            .unwrap();
        assert_eq!(
            before.successes(Metric::Build, Scoring::Overall),
            0,
            "budget 0 must leave the corrupted Makefile broken: {key:?}"
        );
        assert_eq!(
            cell.rate(Metric::Pass, Scoring::Overall, 1),
            1.0,
            "one oracle repair round must restore Overall pass@1: {key:?}"
        );
        assert_eq!(cell.max_repair_round(), 1, "{key:?}");
        cells += 1;
    }
    assert!(cells > 0);
}

#[test]
fn repair_report_prints_per_round_rates() {
    let results = ScheduledRunner::new(4).run(&slice(3).build());
    let text = report::repair_report(&results);
    let rounds = results.max_repair_round();
    assert!(rounds >= 1);
    for r in 0..=rounds {
        assert!(
            text.contains(&format!("r{r}")),
            "missing round column:\n{text}"
        );
    }
    assert!(text.contains("build@1"));
    assert!(text.contains("pass@1"));
    assert!(text.contains("E_kappa"));
}
