//! Shared helpers for the durability test suites (`tests/resume.rs`,
//! `tests/disk_cache.rs`).
//!
//! Each integration-test binary compiles its own copy and uses a different
//! subset, so unused-item lints are off for the whole module.
#![allow(dead_code)]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory under the system temp dir, removed on drop.
/// (The workspace vendors its few dependencies, so no `tempfile` crate —
/// process id + a global counter keep concurrent test binaries apart.)
pub struct TestDir {
    path: PathBuf,
}

impl TestDir {
    pub fn new(tag: &str) -> TestDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "pareval-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create test dir");
        TestDir { path }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Run `f` with the default panic hook silenced, restoring it afterwards —
/// the fault-injection tests unwind on purpose dozens of times and the
/// backtrace spam would drown real failures. Serialized by a lock so
/// parallel tests don't race on the global hook.
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    use std::sync::Mutex;
    static HOOK_LOCK: Mutex<()> = Mutex::new(());
    let guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    std::panic::set_hook(hook);
    drop(guard);
    result
}
