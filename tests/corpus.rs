//! Replay harness for `tests/corpus/`: checked-in synthetic repos (in a
//! framed text format) that every toolchain layer must keep handling the
//! same way. Entries are snapshots of `minihpc-gen` output covering each
//! injected-error profile, frozen so later generator changes can't
//! silently retire a regression input.
//!
//! Format, one repo per `.txt` file:
//!
//! ```text
//! # minihpc corpus: binary=<name> expect=<clean|build-fail|racy>
//! ==> path/in/repo <==
//! <file contents...>
//! ==> next/path <==
//! ...
//! ```
//!
//! Expectations: `clean` must build and run deterministically, `build-fail`
//! must be rejected by parse/sema/build, `racy` must build and run but be
//! flagged by `minihpc-analyze`. Nothing may panic.
//!
//! Regenerate the corpus from the generator (after an intentional format
//! change) with `PAREVAL_BLESS_CORPUS=1 cargo test --test corpus`.

use minihpc_build::{build_repo, BuildRequest};
use minihpc_lang::repo::SourceRepo;
use minihpc_runtime::{run, RunConfig};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

struct CorpusEntry {
    name: String,
    binary: String,
    expect: String,
    repo: SourceRepo,
}

fn parse_entry(name: &str, text: &str) -> CorpusEntry {
    let mut lines = text.lines();
    let header = lines.next().unwrap_or_default();
    assert!(
        header.starts_with("# minihpc corpus:"),
        "{name}: missing corpus header, got {header:?}"
    );
    let field = |key: &str| -> String {
        header
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("{name}: header missing {key}="))
            .to_string()
    };
    let binary = field("binary");
    let expect = field("expect");
    assert!(
        ["clean", "build-fail", "racy"].contains(&expect.as_str()),
        "{name}: unknown expectation {expect:?}"
    );

    let mut repo = SourceRepo::new();
    let mut path: Option<String> = None;
    let mut body = String::new();
    let mut flush = |path: &mut Option<String>, body: &mut String| {
        if let Some(p) = path.take() {
            repo.add(p, std::mem::take(body));
        }
    };
    for line in lines {
        if let Some(p) = line
            .strip_prefix("==> ")
            .and_then(|rest| rest.strip_suffix(" <=="))
        {
            flush(&mut path, &mut body);
            path = Some(p.to_string());
        } else if path.is_some() {
            body.push_str(line);
            body.push('\n');
        }
    }
    flush(&mut path, &mut body);
    assert!(!repo.is_empty(), "{name}: no framed files");
    CorpusEntry {
        name: name.to_string(),
        binary,
        expect,
        repo,
    }
}

fn load_corpus() -> Vec<CorpusEntry> {
    let dir = corpus_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "txt"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "empty corpus at {}", dir.display());
    entries
        .into_iter()
        .map(|path| {
            let name = path.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            parse_entry(&name, &text)
        })
        .collect()
}

/// Regenerate `tests/corpus/` from `minihpc-gen` when
/// `PAREVAL_BLESS_CORPUS=1`, then fail so a blessed run is never mistaken
/// for a green one. Each profile (and both build systems and all three
/// pragma models) gets at least one entry.
fn bless_corpus() {
    use minihpc_gen::{generate, ErrorProfile, GenSpec, PragmaModel};
    use minihpc_lang::model::BuildSystemKind;

    let specs: Vec<(&str, GenSpec)> = vec![
        ("clean-threads-make", GenSpec::new(0xC0_01).with_files(2)),
        (
            "clean-serial-make",
            GenSpec::new(0xC0_02)
                .with_files(1)
                .with_pragma_model(PragmaModel::Serial),
        ),
        (
            "clean-offload-make",
            GenSpec::new(0xC0_03)
                .with_files(2)
                .with_pragma_model(PragmaModel::Offload),
        ),
        (
            "clean-threads-cmake",
            GenSpec::new(0xC0_04)
                .with_files(3)
                .with_build_system(BuildSystemKind::CMake),
        ),
        (
            "parse-error",
            GenSpec::new(0xC0_05).with_errors(ErrorProfile::ParseError),
        ),
        (
            "sema-error",
            GenSpec::new(0xC0_06).with_errors(ErrorProfile::SemaError),
        ),
        (
            "directive-race",
            GenSpec::new(0xC0_07)
                .with_files(2)
                .with_errors(ErrorProfile::DirectiveRace),
        ),
    ];
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for (name, spec) in specs {
        let expect = match spec.errors {
            ErrorProfile::Clean => "clean",
            ErrorProfile::ParseError | ErrorProfile::SemaError => "build-fail",
            ErrorProfile::DirectiveRace => "racy",
        };
        let app = generate(&spec);
        let mut out = format!("# minihpc corpus: binary={} expect={expect}\n", app.binary);
        for (path, contents) in app.repo.iter() {
            out.push_str(&format!("==> {path} <==\n"));
            out.push_str(contents);
            if !contents.ends_with('\n') {
                out.push('\n');
            }
        }
        std::fs::write(dir.join(format!("{name}.txt")), out).expect("write corpus entry");
    }
    panic!("corpus blessed — rerun without PAREVAL_BLESS_CORPUS to verify");
}

#[test]
fn corpus_replays_deterministically() {
    if std::env::var("PAREVAL_BLESS_CORPUS").is_ok_and(|v| v == "1") {
        bless_corpus();
    }

    let corpus = load_corpus();
    let mut racy_entries = 0;
    for entry in &corpus {
        let request = BuildRequest::new(entry.binary.as_str());
        let first = build_repo(&entry.repo, &request);
        let second = build_repo(&entry.repo, &request);
        assert_eq!(
            first.succeeded(),
            second.succeeded(),
            "{}: build outcome diverged",
            entry.name
        );
        assert_eq!(
            first.log.text(),
            second.log.text(),
            "{}: build log diverged",
            entry.name
        );

        match entry.expect.as_str() {
            "build-fail" => {
                assert!(
                    !first.succeeded(),
                    "{}: expected build failure, log:\n{}",
                    entry.name,
                    first.log.text()
                );
                continue;
            }
            _ => assert!(
                first.succeeded(),
                "{}: expected successful build, log:\n{}",
                entry.name,
                first.log.text()
            ),
        }

        let exe = first.executable.as_ref().expect("built without executable");
        let a = run(exe, RunConfig::with_args(["32", "2"]));
        let b = run(exe, RunConfig::with_args(["32", "2"]));
        assert!(
            a.error.is_none() && a.exit_code == 0,
            "{}: run failed: {:?}\n{}",
            entry.name,
            a.error,
            a.stdout
        );
        assert_eq!(a.stdout, b.stdout, "{}: stdout diverged", entry.name);
        assert!(
            a.stdout.contains("checksum "),
            "{}: {}",
            entry.name,
            a.stdout
        );

        let findings = minihpc_analyze::analyze_repo(&entry.repo);
        let racy = findings
            .iter()
            .any(|f| f.rule == minihpc_analyze::Rule::RawReduction);
        match entry.expect.as_str() {
            "racy" => {
                assert!(racy, "{}: expected a RawReduction finding", entry.name);
                racy_entries += 1;
            }
            _ => assert!(
                !racy,
                "{}: clean entry flagged racy: {findings:?}",
                entry.name
            ),
        }
    }
    assert!(racy_entries > 0, "corpus has no racy entry");
}

#[test]
fn corpus_covers_every_expectation() {
    let corpus = load_corpus();
    for expect in ["clean", "build-fail", "racy"] {
        assert!(
            corpus.iter().any(|e| e.expect == expect),
            "corpus lost its last {expect:?} entry"
        );
    }
}
