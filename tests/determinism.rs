//! Determinism guarantees of the layered experiment API: parallel execution
//! is byte-identical to serial, and a plan's seed fully determines its
//! results.

use pareval_core::{
    CountingSink, ExperimentPlan, ParallelRunner, ProgressSink, Runner, SampleRecord, SerialRunner,
};
use pareval_repo as _;
use std::sync::Mutex;

/// A sink that records completion order, to prove the *stream* may be
/// reordered even though the *results* are not.
#[derive(Default)]
struct OrderSink {
    seen: Mutex<Vec<(String, u32)>>,
}

impl ProgressSink for OrderSink {
    fn on_sample(&self, record: &SampleRecord) {
        self.seen
            .lock()
            .unwrap()
            .push((format!("{:?}", record.key), record.sample_index));
    }
}

#[test]
fn parallel_runners_match_serial_byte_for_byte() {
    let plan = ExperimentPlan::quick();
    let serial = SerialRunner.run(&plan);
    for workers in [2, 4] {
        let parallel = ParallelRunner::new(workers).run(&plan);
        // Structural equality over every retained record...
        assert_eq!(serial, parallel, "{workers} workers diverged from serial");
        // ...and byte identity of the full debug rendering, which covers
        // every build log, token count, and error category verbatim.
        assert_eq!(
            format!("{serial:?}"),
            format!("{parallel:?}"),
            "{workers} workers: debug rendering differs"
        );
    }
}

#[test]
fn same_seed_same_results() {
    let run = |seed: u64| {
        SerialRunner.run(
            &ExperimentPlan::builder()
                .samples(2)
                .seed(seed)
                .pairs([minihpc_lang::model::TranslationPair::CUDA_TO_OMP_OFFLOAD])
                .apps(["nanoXOR", "microXOR"])
                .build(),
        )
    };
    assert_eq!(run(99), run(99));
    assert_ne!(
        format!("{:?}", run(99)),
        format!("{:?}", run(100)),
        "different seeds should perturb at least one sample"
    );
}

#[test]
fn every_scheduled_sample_is_observed_exactly_once() {
    let plan = ExperimentPlan::quick();
    let counting = CountingSink::new();
    ParallelRunner::new(4).run_with_sink(&plan, &counting);
    assert_eq!(counting.completed() as usize, plan.total_samples());

    let order = OrderSink::default();
    ParallelRunner::new(4).run_with_sink(&plan, &order);
    let mut seen = order.seen.into_inner().unwrap();
    assert_eq!(seen.len(), plan.total_samples());
    seen.sort();
    seen.dedup();
    assert_eq!(
        seen.len(),
        plan.total_samples(),
        "a (cell, sample) unit was observed more than once"
    );
}
