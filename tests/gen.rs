//! Property tests for the `minihpc-gen` contract the harness leans on:
//! a `GenSpec` is a *value* — the same spec always expands to the same
//! bytes and the same plan fingerprint, and distinct seeds never collide.

use minihpc_gen::{generate, ErrorProfile, GenSpec, KernelKind, PragmaModel};
use minihpc_lang::model::{BuildSystemKind, TranslationPair};
use pareval_core::{ExperimentPlan, ExperimentPlanBuilder};
use pareval_translate::Technique;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = GenSpec> {
    (
        any::<u64>(),
        1usize..5,
        0usize..4,
        0usize..3,
        any::<bool>(),
        0usize..4,
    )
        .prop_map(|(seed, files, kernels, pragma, cmake, errors)| {
            let spec = GenSpec::new(seed)
                .with_files(files)
                .with_kernels(KernelKind::ALL.into_iter().take(kernels))
                .with_pragma_model(PragmaModel::ALL[pragma])
                .with_errors(ErrorProfile::ALL[errors]);
            if cmake {
                spec.with_build_system(BuildSystemKind::CMake)
            } else {
                spec
            }
        })
}

/// A one-pair plan whose only task is the generated app for `spec`.
fn plan_for(spec: &GenSpec) -> ExperimentPlan {
    ExperimentPlanBuilder::default()
        .samples(1)
        .pairs([TranslationPair::OMP_THREADS_TO_OFFLOAD])
        .techniques([Technique::NonAgentic])
        .apps(["XSBench"])
        .extend_apps([pareval_apps::generated_app(spec)])
        .build()
}

fn repo_bytes(spec: &GenSpec) -> Vec<(String, String)> {
    generate(spec)
        .repo
        .iter()
        .map(|(p, c)| (p.to_string(), c.to_string()))
        .collect()
}

proptest! {
    /// Same spec → byte-identical repo, same digest, same fingerprint.
    #[test]
    fn generation_is_a_pure_function_of_the_spec(spec in arb_spec()) {
        let a = generate(&spec);
        let b = generate(&spec);
        prop_assert_eq!(
            a.repo.iter().collect::<Vec<_>>(),
            b.repo.iter().collect::<Vec<_>>()
        );
        prop_assert_eq!(a.digest, b.digest);
        prop_assert_eq!(&a.name, &b.name);
        prop_assert_eq!(plan_for(&spec).fingerprint(), plan_for(&spec).fingerprint());
    }

    /// Distinct seeds → distinct repos, digests, and plan fingerprints
    /// (the drift detection `Runner::resume` relies on).
    #[test]
    fn distinct_seeds_never_collide(spec in arb_spec(), other_seed in any::<u64>()) {
        let mut other = spec.clone();
        other.seed = if other_seed == spec.seed {
            other_seed.wrapping_add(1)
        } else {
            other_seed
        };
        prop_assert_ne!(repo_bytes(&spec), repo_bytes(&other));
        prop_assert_ne!(spec.digest(), other.digest());
        prop_assert_ne!(
            plan_for(&spec).fingerprint(),
            plan_for(&other).fingerprint()
        );
    }

    /// Every knob change lands in the digest, so a resumed run notices a
    /// regenerated grid even when the app *name* is unchanged.
    #[test]
    fn digest_separates_knob_changes(spec in arb_spec()) {
        let mut variants = vec![
            spec.clone().with_files(spec.files + 1),
            spec.clone().with_pragma_model(
                PragmaModel::ALL[(PragmaModel::ALL
                    .iter()
                    .position(|m| *m == spec.pragma_model)
                    .unwrap()
                    + 1)
                    % PragmaModel::ALL.len()],
            ),
            spec.clone().with_errors(
                ErrorProfile::ALL[(ErrorProfile::ALL
                    .iter()
                    .position(|e| *e == spec.errors)
                    .unwrap()
                    + 1)
                    % ErrorProfile::ALL.len()],
            ),
        ];
        variants.push(spec.clone().with_build_system(
            if spec.build_system == BuildSystemKind::Make {
                BuildSystemKind::CMake
            } else {
                BuildSystemKind::Make
            },
        ));
        for variant in variants {
            prop_assert_ne!(spec.digest(), variant.digest());
        }
    }
}
