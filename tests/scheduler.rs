//! Scheduler-specific behaviour of the runner layer: worker-panic context,
//! degenerate worker/sample shapes on both parallel runners, exactly-once
//! progress delivery under stealing, and scheduling counters.
//!
//! (Byte-identity of scheduled results against serial lives in
//! `tests/determinism.rs`; this file covers everything else the
//! work-stealing rewrite promised.)

use minihpc_lang::model::TranslationPair;
use pareval_core::{
    CountingSink, ExperimentPlan, NullSink, ProgressSink, RoundRobinRunner, Runner, SampleRecord,
    ScheduledRunner, SerialRunner,
};
use pareval_llm::{all_models, Attempt, AttemptSpec, TranslationBackend};
use pareval_repo as _;
use pareval_translate::Technique;
use std::sync::{Arc, Mutex};

/// A backend whose every attempt panics — the stand-in for "a bug anywhere
/// inside one sample's evaluation".
struct PanickingBackend;

impl TranslationBackend for PanickingBackend {
    fn name(&self) -> &'static str {
        "panicking"
    }

    fn start_attempt(&self, _spec: &AttemptSpec<'_>) -> Box<dyn Attempt> {
        panic!("boom");
    }
}

/// One feasible cell (o4-mini × nanoXOR × non-agentic) on the panicking
/// backend, `samples` generations.
fn panicking_plan(samples: u32) -> ExperimentPlan {
    ExperimentPlan::builder()
        .samples(samples)
        .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
        .techniques([Technique::NonAgentic])
        .models(all_models().into_iter().filter(|m| m.name == "o4-mini"))
        .apps(["nanoXOR"])
        .backend(Arc::new(PanickingBackend))
        .build()
}

// The panic-context contract: a panicking sample still aborts the run, but
// the propagated message names the offending (cell, sample) instead of a
// bare "worker panicked". The two tests pin the two halves of the message
// shape — "sample <i> of cell <CellKey debug>" and the preserved payload.

#[test]
#[should_panic(expected = "sample 0 of cell CellKey")]
fn serial_panic_names_the_offending_sample() {
    SerialRunner.run(&panicking_plan(1));
}

#[test]
#[should_panic(expected = "model: \"o4-mini\", app: \"nanoXOR\" } panicked: boom")]
fn scheduled_panic_preserves_cell_and_payload() {
    ScheduledRunner::new(2).run(&panicking_plan(1));
}

#[test]
#[should_panic(expected = "panicked: boom")]
fn round_robin_panic_preserves_payload() {
    RoundRobinRunner::new(2).run(&panicking_plan(1));
}

/// A 2-cell × 1-sample plan: the smallest grid that still exercises
/// cross-cell scheduling.
fn two_sample_plan() -> ExperimentPlan {
    ExperimentPlan::builder()
        .samples(1)
        .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
        .techniques([Technique::NonAgentic])
        .models(all_models().into_iter().filter(|m| m.name == "o4-mini"))
        .apps(["nanoXOR", "microXOR"])
        .build()
}

#[test]
fn zero_workers_clamp_to_one_on_every_runner() {
    assert_eq!(ScheduledRunner::new(0).workers(), 1);
    assert_eq!(RoundRobinRunner::new(0).workers(), 1);
    #[allow(deprecated)]
    {
        assert_eq!(pareval_core::ParallelRunner::new(0).workers(), 1);
    }
    // And a 0-worker request still runs the whole plan.
    let plan = two_sample_plan();
    let serial = SerialRunner.run(&plan);
    assert_eq!(serial, ScheduledRunner::new(0).run(&plan));
    assert_eq!(serial, RoundRobinRunner::new(0).run(&plan));
}

#[test]
fn more_workers_than_samples_is_harmless() {
    let plan = two_sample_plan();
    assert_eq!(plan.total_samples(), 2);
    let serial = SerialRunner.run(&plan);
    for workers in [3, 16] {
        assert_eq!(serial, ScheduledRunner::new(workers).run(&plan));
        assert_eq!(serial, RoundRobinRunner::new(workers).run(&plan));
    }
}

#[test]
fn single_sample_plan_runs_on_both_parallel_runners() {
    let plan = ExperimentPlan::builder()
        .samples(1)
        .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
        .techniques([Technique::NonAgentic])
        .models(all_models().into_iter().filter(|m| m.name == "o4-mini"))
        .apps(["nanoXOR"])
        .build();
    assert_eq!(plan.total_samples(), 1);
    let serial = SerialRunner.run(&plan);
    for workers in [1, 4] {
        let sink = CountingSink::new();
        assert_eq!(
            serial,
            ScheduledRunner::new(workers).run_with_sink(&plan, &sink)
        );
        assert_eq!(sink.completed(), 1);
        assert_eq!(serial, RoundRobinRunner::new(workers).run(&plan));
    }
}

#[test]
fn empty_plan_yields_empty_results_without_spawning_trouble() {
    // Every cell infeasible: SWE-agent never ran CUDA→offload in the
    // paper, so this plan schedules zero samples.
    let plan = ExperimentPlan::builder()
        .samples(3)
        .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
        .techniques([Technique::SweAgent])
        .apps(["nanoXOR"])
        .build();
    assert_eq!(plan.total_samples(), 0);
    let serial = SerialRunner.run(&plan);
    assert_eq!(serial, ScheduledRunner::new(4).run(&plan));
    assert_eq!(serial, RoundRobinRunner::new(4).run(&plan));
}

/// Records every `(CellKey, sample_index)` the sink observes.
#[derive(Default)]
struct DeliverySink {
    seen: Mutex<Vec<(pareval_core::CellKey, u32)>>,
}

impl ProgressSink for DeliverySink {
    fn on_sample(&self, record: &SampleRecord) {
        self.seen
            .lock()
            .unwrap()
            .push((record.key, record.sample_index));
    }
}

#[test]
fn stealing_delivers_every_sample_exactly_once() {
    // Count + set equality against the plan's own spec list: nothing
    // dropped, nothing duplicated, whatever got stolen by whom.
    let plan = ExperimentPlan::quick();
    let mut expected: Vec<_> = plan
        .sample_specs()
        .iter()
        .map(|spec| (plan.cells()[spec.cell].key, spec.sample_index))
        .collect();
    expected.sort();
    for workers in [2, 5, 8] {
        let sink = DeliverySink::default();
        ScheduledRunner::new(workers).run_with_sink(&plan, &sink);
        let mut seen = sink.seen.into_inner().unwrap();
        assert_eq!(
            seen.len(),
            plan.total_samples(),
            "{workers} workers: wrong delivery count"
        );
        seen.sort();
        assert_eq!(seen, expected, "{workers} workers: delivery set diverged");
    }
}

#[test]
fn run_with_stats_reports_bounded_scheduling_traffic() {
    let plan = ExperimentPlan::quick();
    let pipeline = pareval_core::EvalPipeline::new(plan.eval().clone());
    let runner = ScheduledRunner::new(4);
    let (results, stats) = runner.run_with_stats(&plan, &pipeline, &NullSink);
    assert_eq!(results, SerialRunner.run(&plan));
    // Each sample is handed out exactly once, so the two acquisition paths
    // together can never exceed the sample count.
    let total = plan.total_samples() as u64;
    assert!(
        stats.steals + stats.injector_refills <= total,
        "{stats:?} exceeds {total} samples"
    );
    assert!(stats.injector_refills > 0, "injector never served a batch");
}
