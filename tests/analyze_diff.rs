//! Fuzz-driven differential validation of the static analyzer against the
//! runtime's dynamic shared-write recorder, over hundreds of seeded
//! `GenSpec` repositories:
//!
//! - **Clean profiles produce zero findings** — not merely zero errors:
//!   the generator's clean repos are the analyzer's false-positive corpus.
//! - **Injected directive races have zero static false negatives** —
//!   every `DirectiveRace` repo carries an error-severity finding, and
//!   every variable the dynamic recorder observes conflicting is among
//!   the variables the analyzer flagged (`race_vars ⊆ static error vars`).
//! - **The interprocedural pass is pinned by a golden snapshot** — the
//!   one-call-deep false negative of the v1 analyzer, now caught via
//!   call-graph summaries, is frozen in
//!   `tests/golden/interproc_findings.txt` (regenerate with
//!   `UPDATE_GOLDEN=1`).

use minihpc_analyze::{analyze_repo, analyze_repo_with, AnalyzeOptions};
use minihpc_build::{build_repo, BuildRequest};
use minihpc_gen::{generate, ErrorProfile, GenSpec, KernelKind, PragmaModel};
use minihpc_runtime::{run, RunConfig};
use pareval_repo as _;
use std::collections::BTreeSet;

/// 120 clean + 120 racy seeded repos = a 240-repo differential corpus.
const CLEAN_REPOS: u64 = 120;
const RACY_REPOS: u64 = 120;

/// Clean specs sweep the generator's registrable knob space: file counts,
/// kernel mixes, and all three pragma models (serial repos keep the
/// analyzer honest about non-parallel code).
fn clean_spec(i: u64) -> GenSpec {
    let spec = GenSpec::new(0xD1FF_0000 + i).with_files(1 + (i as usize % 4));
    let spec = match i % 3 {
        0 => spec,
        1 => spec.with_pragma_model(PragmaModel::Offload),
        _ => spec.with_pragma_model(PragmaModel::Serial),
    };
    match i % 4 {
        0 => spec,
        1 => spec.with_kernels([KernelKind::Reduction]),
        2 => spec.with_kernels([KernelKind::Stencil, KernelKind::Reduction]),
        _ => spec.with_kernels([KernelKind::GemmLike, KernelKind::MemcpyBound]),
    }
}

/// Racy specs rotate the two pragma models that emit directives; the
/// generator guarantees at least one `Reduction` kernel to strip.
fn racy_spec(i: u64) -> GenSpec {
    let spec = GenSpec::new(0xD1FF_8000 + i)
        .with_files(1 + (i as usize % 3))
        .with_errors(ErrorProfile::DirectiveRace);
    if i % 2 == 0 {
        spec
    } else {
        spec.with_pragma_model(PragmaModel::Offload)
    }
}

#[test]
fn clean_profiles_produce_zero_findings() {
    for i in 0..CLEAN_REPOS {
        let spec = clean_spec(i);
        let app = generate(&spec);
        let findings = analyze_repo(&app.repo);
        assert!(
            findings.is_empty(),
            "clean repo {} (spec {spec:?}) produced findings:\n{}",
            app.name,
            minihpc_analyze::render_findings_with_fixits(&findings)
        );
    }
}

#[test]
fn injected_races_have_zero_static_false_negatives() {
    let mut dynamic_confirmations = 0u64;
    for i in 0..RACY_REPOS {
        let spec = racy_spec(i);
        let app = generate(&spec);
        let findings = analyze_repo(&app.repo);
        let static_vars: BTreeSet<&str> = findings
            .iter()
            .filter(|f| f.is_error())
            .map(|f| f.variable.as_str())
            .collect();
        assert!(
            !static_vars.is_empty(),
            "racy repo {} (spec {spec:?}) has no error finding — a static false negative",
            app.name
        );

        // Differential half: execute the racy repo on a real thread pool
        // with the shared-write recorder on. Every variable the recorder
        // sees conflicting must be one the analyzer flagged.
        let outcome = build_repo(&app.repo, &BuildRequest::new(&app.binary));
        let exe = outcome.executable.unwrap_or_else(|| {
            panic!(
                "racy repo {} must still build, log:\n{}",
                app.name,
                outcome.log.text()
            )
        });
        let args = app.tests.first().cloned().unwrap_or_default();
        let mut cfg = RunConfig::with_args(args);
        cfg.parallel = true;
        cfg.workers = 4;
        cfg.record_shared_writes = true;
        let r = run(&exe, cfg);
        assert!(
            r.error.is_none(),
            "racy repo {} failed to run: {:?}",
            app.name,
            r.error
        );
        for var in &r.race_vars {
            assert!(
                static_vars.contains(var.as_str()),
                "repo {}: recorder saw '{var}' conflict but the analyzer flagged only {static_vars:?}",
                app.name
            );
        }
        dynamic_confirmations += u64::from(!r.race_vars.is_empty());
    }
    // The recorder must actually exercise the differential: if it never
    // observes a conflict the subset check above is vacuous.
    assert!(
        dynamic_confirmations >= RACY_REPOS / 2,
        "recorder confirmed only {dynamic_confirmations}/{RACY_REPOS} injected races"
    );
}

/// The v1 analyzer's one-call-deep false negative, frozen: a raw reduction
/// hidden behind a helper call is invisible without the call-graph summary
/// pass and caught (with an applicable fix-it) with it. The rendered v2
/// verdict is pinned as a golden snapshot.
#[test]
fn interprocedural_findings_match_golden() {
    let src = r#"
void accumulate(double* acc, double x) {
    *acc += x;
}

double tally(int n) {
    double sum = 0.0;
    #pragma omp parallel for
    for (int i = 0; i < n; i++) {
        accumulate(&sum, i * 0.5);
    }
    return sum;
}
"#;
    let repo = minihpc_lang::repo::SourceRepo::new().with_file("src/tally.cpp", src);

    let v1 = analyze_repo_with(
        &repo,
        &AnalyzeOptions {
            interprocedural: false,
        },
    );
    assert!(
        v1.is_empty(),
        "v1 (intraprocedural) unexpectedly sees through the call: {v1:?}"
    );

    let v2 = analyze_repo(&repo);
    assert!(
        v2.iter().any(|f| f.is_error()),
        "summary pass missed the interprocedural raw reduction"
    );
    let text = minihpc_analyze::render_findings_with_fixits(&v2);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/interproc_findings.txt"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &text).unwrap();
    }
    assert_eq!(
        text,
        std::fs::read_to_string(path).expect("golden missing; rerun with UPDATE_GOLDEN=1"),
        "interprocedural verdict diverged from tests/golden/interproc_findings.txt"
    );
}
