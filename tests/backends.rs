//! Integration tests for the pluggable backend layer: the oracle upper
//! bound, recording → replay round-trips, and the build-cache = cold-build
//! property.

use minihpc_lang::model::TranslationPair;
use pareval_core::{
    all_tasks, EvalConfig, EvalPipeline, ExperimentPlan, ExperimentPlanBuilder, Metric, NullSink,
    Runner, ScheduledRunner, Scoring, SerialRunner, Task,
};
use pareval_llm::{all_models, OracleBackend, RecordingBackend, ReplayBackend, SimulatedBackend};
use pareval_repo as _;
use pareval_translate::Technique;
use proptest::prelude::*;
use std::sync::Arc;

// -- OracleBackend ------------------------------------------------------------

#[test]
fn oracle_passes_code_only_on_every_feasible_cell() {
    // All three techniques, both heatmap pairs, small and large apps, two
    // models: every cell the oracle schedules must score code-only
    // pass@1 = 1.0 — including SWE-agent cells, whose *Overall* score the
    // tab-corrupted Makefiles may still sink, and cells the paper itself
    // could not run.
    let plan = ExperimentPlan::builder()
        .samples(2)
        .pairs([
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            TranslationPair::CUDA_TO_KOKKOS,
        ])
        .models(
            all_models()
                .into_iter()
                .filter(|m| m.name == "o4-mini" || m.name == "gemini-1.5-flash"),
        )
        .apps(["nanoXOR", "microXOR", "SimpleMOC-kernel", "XSBench"])
        .backend(Arc::new(OracleBackend))
        .build();
    // Serial so the cache counters are deterministic (racing parallel
    // workers may both miss the same cold key); parallel-vs-serial equality
    // is covered by tests/determinism.rs.
    let pipeline = EvalPipeline::new(plan.eval().clone());
    let results = SerialRunner.run_with(&plan, &pipeline, &NullSink);

    let mut feasible_cells = 0;
    for (key, cell) in &results.cells {
        if cell.samples() == 0 {
            // Only the two tasks the oracle transpiler cannot solve may be
            // excluded (paper: unsolved by every model and technique).
            assert_eq!(key.pair, TranslationPair::CUDA_TO_KOKKOS, "{key:?}");
            assert!(
                key.app == "XSBench" || key.app == "SimpleMOC-kernel",
                "{key:?}"
            );
            continue;
        }
        feasible_cells += 1;
        assert_eq!(
            cell.pass_at_k(Scoring::CodeOnly, 1),
            1.0,
            "oracle must pass code-only on {key:?}"
        );
        assert_eq!(
            cell.successes(Metric::Pass, Scoring::CodeOnly),
            cell.samples(),
            "{key:?}"
        );
    }
    assert!(
        feasible_cells > 30,
        "expected a broad grid: {feasible_cells}"
    );
    // The oracle repos repeat across samples and models, so the shared
    // cache must have served a majority of evaluations.
    assert!(pipeline.cache_stats().hit_rate() > 0.5);
}

#[test]
fn oracle_overall_shortfall_is_confined_to_swe_agent() {
    // Under Overall scoring the only thing that can sink the oracle is the
    // SWE-agent technique's Makefile corruption — and on Makefile-based
    // targets it must sink it to zero builds.
    let plan = ExperimentPlan::builder()
        .samples(2)
        .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
        .models(all_models().into_iter().filter(|m| m.name == "o4-mini"))
        .apps(["nanoXOR", "microXOR"])
        .backend(Arc::new(OracleBackend))
        .build();
    let results = SerialRunner.run(&plan);
    for (key, cell) in &results.cells {
        if cell.samples() == 0 {
            continue;
        }
        let overall = cell.pass_at_k(Scoring::Overall, 1);
        match key.technique {
            Technique::SweAgent => assert_eq!(
                cell.successes(Metric::Build, Scoring::Overall),
                0,
                "tab-normalized Makefile must not build: {key:?}"
            ),
            _ => assert_eq!(overall, 1.0, "{key:?}"),
        }
    }
}

// -- RecordingBackend → ReplayBackend -----------------------------------------

fn recorded_slice() -> ExperimentPlanBuilder {
    ExperimentPlan::builder()
        .samples(3)
        .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
        .techniques([Technique::NonAgentic, Technique::TopDownAgentic])
        .models(
            all_models()
                .into_iter()
                .filter(|m| m.name == "o4-mini" || m.name == "qwq-32b-q8_0"),
        )
        .apps(["nanoXOR", "microXOR"])
}

#[test]
fn record_replay_round_trip_is_byte_identical() {
    let recording = RecordingBackend::new(SimulatedBackend);
    let store = recording.store();

    // Record a parallel run...
    let record_plan = recorded_slice().backend(Arc::new(recording)).build();
    let recorded = ScheduledRunner::new(3).run(&record_plan);

    // ...then replay it offline (different runner, different worker count)
    // and against the plain simulated run for transparency.
    let replay_plan = recorded_slice()
        .backend(Arc::new(ReplayBackend::new(store)))
        .build();
    let replayed = SerialRunner.run(&replay_plan);
    assert_eq!(recorded, replayed);
    assert_eq!(format!("{recorded:?}"), format!("{replayed:?}"));

    let direct = SerialRunner.run(&recorded_slice().build());
    assert_eq!(direct, replayed, "recording proxy must be transparent");
}

#[test]
fn replay_marks_unrecorded_cells_infeasible_at_plan_time() {
    // An empty store: every cell is infeasible, nothing is scheduled.
    let plan = recorded_slice()
        .backend(Arc::new(ReplayBackend::new(
            RecordingBackend::new(SimulatedBackend).store(),
        )))
        .build();
    assert!(plan.cells().iter().all(|c| !c.feasible && c.samples == 0));
    assert_eq!(plan.total_samples(), 0);
}

// -- BuildCache ---------------------------------------------------------------

fn cache_task(app: &str) -> Task {
    all_tasks()
        .into_iter()
        .find(|t| t.app.name == app && t.pair == TranslationPair::CUDA_TO_OMP_OFFLOAD)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A cache hit equals a cold evaluation, across the whole outcome —
    /// build flag, pass flag, error category, and the raw build log — for
    /// arbitrary samples of arbitrary models (whose injected errors cover
    /// correct, wrong-result, and broken-build repos).
    #[test]
    fn cache_hit_equals_cold_build_outcome(
        model_idx in 0usize..5,
        app_idx in 0usize..3,
        seed in 0u64..512,
        sample in 0u32..4,
    ) {
        let apps = ["nanoXOR", "microXORh", "microXOR"];
        let task = cache_task(apps[app_idx]);
        let model = all_models().swap_remove(model_idx);
        let eval = EvalConfig { max_cases: 1, ..EvalConfig::default() };
        let cold_pipeline = EvalPipeline::new(EvalConfig { build_cache: false, ..eval.clone() });
        let cached_pipeline = EvalPipeline::new(eval);

        let cold =
            cold_pipeline.run_sample(&task, Technique::NonAgentic, &model, &SimulatedBackend, seed, sample);
        let warm =
            cached_pipeline.run_sample(&task, Technique::NonAgentic, &model, &SimulatedBackend, seed, sample);
        let hot =
            cached_pipeline.run_sample(&task, Technique::NonAgentic, &model, &SimulatedBackend, seed, sample);
        prop_assert_eq!(&cold, &warm, "cold fill must match the uncached path");
        prop_assert_eq!(&cold, &hot, "cache hit must match the uncached path");
        if cold.feasible {
            // The repeated sample re-evaluates identical repos: pure hits.
            prop_assert!(cached_pipeline.cache_stats().hits >= 2);
        }
    }
}

#[test]
fn oracle_upper_bounds_the_simulation_everywhere() {
    // On every cell both backends can run, the oracle's code-only pass@1
    // dominates the simulation's — it is an upper bound, not just a
    // different workload.
    let base = || {
        ExperimentPlan::builder()
            .samples(3)
            .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
            .techniques([Technique::NonAgentic])
            .apps(["nanoXOR", "microXORh", "microXOR"])
    };
    let sim = ScheduledRunner::new(2).run(&base().build());
    let oracle = ScheduledRunner::new(2).run(&base().backend(Arc::new(OracleBackend)).build());
    let mut compared = 0;
    for (key, sim_cell) in &sim.cells {
        if sim_cell.samples() == 0 {
            continue;
        }
        let oracle_cell = oracle
            .cell(key.pair, key.technique, key.model, key.app)
            .unwrap();
        assert!(
            oracle_cell.pass_at_k(Scoring::CodeOnly, 1) >= sim_cell.pass_at_k(Scoring::CodeOnly, 1),
            "{key:?}"
        );
        compared += 1;
    }
    assert!(compared > 0);
}
