//! The static race/directive analyzer as a first-class eval metric:
//! injected-race grids are flagged, oracle grids are clean, the verdict is
//! deterministic and journal-stable, and the runtime's shared-write
//! recorder confirms the static verdict has no false negatives on the
//! checked-in grid.

mod common;

use common::TestDir;
use minihpc_build::{build_repo, BuildRequest};
use minihpc_lang::model::TranslationPair;
use minihpc_runtime::{run, RunConfig};
use pareval_core::{
    journal, report, EvalConfig, EvalPipeline, ExperimentPlan, NullSink, Runner, ScheduledRunner,
    SerialRunner,
};
use pareval_llm::{
    all_models, model_by_name, AttemptSpec, OracleBackend, SimulatedBackend, TranslationBackend,
};
use pareval_repo as _;
use pareval_translate::{translate_with, Technique, TranslationJob};
use proptest::prelude::*;
use std::sync::Arc;

/// The injected-race grid: o4-mini with `race_rate` 1.0 on the one cell
/// whose translations carry a `reduction` clause end to end (XSBench,
/// OpenMP threads → offload). Every sample builds with the clause dropped.
fn injected_plan(samples: u32) -> ExperimentPlan {
    ExperimentPlan::builder()
        .samples(samples)
        .pairs([TranslationPair::OMP_THREADS_TO_OFFLOAD])
        .techniques([Technique::NonAgentic])
        .models(
            all_models()
                .into_iter()
                .filter(|m| m.name == "o4-mini")
                .map(|m| m.with_race_rate(1.0)),
        )
        .apps(["XSBench"])
        .eval(EvalConfig {
            max_cases: 1,
            analyze: true,
            ..EvalConfig::default()
        })
        .build()
}

#[test]
fn injected_races_are_flagged_statically() {
    let results = SerialRunner.run(&injected_plan(4));
    let mut racy_samples = 0;
    for cell in results.cells.values() {
        for record in cell.records() {
            let r = &record.result;
            let overall = r.overall.as_ref().expect("feasible sample");
            assert!(overall.built, "race injection must not break the build");
            assert!(
                r.analysis.iter().any(|f| f.is_error()),
                "sample {} built racy but analysis is clean: {:?}",
                record.sample_index,
                r.analysis
            );
            assert!(!r.race_free(), "racy sample counted as race-free");
            racy_samples += 1;
        }
        assert_eq!(cell.race_free_samples(), 0);
        assert_eq!(cell.race_free_at_k(1), 0.0);
    }
    assert!(racy_samples > 0, "grid produced no samples");
    assert!(
        results
            .race_finding_counts()
            .keys()
            .any(|(m, _)| m == "o4-mini"),
        "no findings attributed to the injected model"
    );
}

#[test]
fn oracle_grid_is_race_clean() {
    // The ground-truth translations must not trip the analyzer: its
    // error rules encode real directive bugs, not style.
    let plan = ExperimentPlan::builder()
        .samples(1)
        .backend(Arc::new(OracleBackend))
        .eval(EvalConfig {
            max_cases: 1,
            analyze: true,
            ..EvalConfig::default()
        })
        .build();
    let results = SerialRunner.run(&plan);
    let mut built = 0;
    for (key, cell) in &results.cells {
        for record in cell.records() {
            let r = &record.result;
            if r.overall.as_ref().is_some_and(|o| o.built) {
                built += 1;
                assert!(
                    !r.analysis.iter().any(|f| f.is_error()),
                    "{key:?}: oracle translation flagged racy: {:?}",
                    r.analysis
                );
            }
        }
    }
    assert!(built > 0, "oracle grid built nothing");
}

/// Mirrors the front half of `EvalPipeline::run_sample` for one simulated
/// sample: attempt → technique → translated repo.
fn translated_repo(seed: u64, sample: u32) -> minihpc_lang::repo::SourceRepo {
    let task = pareval_core::all_tasks()
        .into_iter()
        .find(|t| t.app.name == "XSBench" && t.pair == TranslationPair::OMP_THREADS_TO_OFFLOAD)
        .unwrap();
    let model = model_by_name("o4-mini").unwrap().with_race_rate(1.0);
    let source_repo = Arc::new(task.app.repo(task.pair.from).unwrap().clone());
    let spec = AttemptSpec {
        model: &model,
        technique: Technique::NonAgentic,
        pair: task.pair,
        app_name: &task.app.name,
        source_repo: Arc::clone(&source_repo),
        seed,
        sample,
    };
    let mut attempt = SimulatedBackend.start_attempt(&spec);
    let job = TranslationJob {
        app_name: &task.app.name,
        binary: &task.app.binary,
        source_repo: &source_repo,
        pair: task.pair,
        cli_spec: &task.app.cli_spec,
        build_spec: &task.app.build_spec,
    };
    translate_with(Technique::NonAgentic, &job, &mut attempt)
        .repo
        .expect("injected-race sample still translates")
}

#[test]
fn dynamic_recorder_confirms_no_static_false_negatives() {
    // Cross-validation: build each injected-race translation and execute
    // it on a real thread pool with the shared-write recorder on. Every
    // sample where the recorder observes a cross-thread conflict must
    // carry an error-severity static finding — the static verdict has no
    // false negatives on this grid.
    let task = pareval_core::all_tasks()
        .into_iter()
        .find(|t| t.app.name == "XSBench" && t.pair == TranslationPair::OMP_THREADS_TO_OFFLOAD)
        .unwrap();
    let case = &task.app.tests[0];
    let mut dynamic_races = 0;
    for sample in 0..4 {
        let repo = translated_repo(20250908, sample);
        let findings = minihpc_analyze::analyze_repo(&repo);
        let outcome = build_repo(&repo, &BuildRequest::new(&*task.app.binary));
        let exe = outcome.executable.expect("racy translation still builds");
        let mut cfg = RunConfig::with_args(case.args.iter().cloned());
        cfg.parallel = true;
        cfg.workers = 4;
        cfg.record_shared_writes = true;
        let r = run(&exe, cfg);
        if !r.races.is_empty() {
            dynamic_races += 1;
            assert!(
                findings.iter().any(|f| f.is_error()),
                "sample {sample}: dynamic race {:?} missed statically",
                r.races
            );
        }
    }
    assert!(
        dynamic_races > 0,
        "recorder never observed a conflict; cross-validation is vacuous"
    );
}

/// The injected-race grid with the repair loop on, blind or guided.
fn repair_plan(samples: u32, guided: bool) -> ExperimentPlan {
    ExperimentPlan::builder()
        .samples(samples)
        .pairs([TranslationPair::OMP_THREADS_TO_OFFLOAD])
        .techniques([Technique::NonAgentic])
        .models(
            all_models()
                .into_iter()
                .filter(|m| m.name == "o4-mini")
                .map(|m| m.with_race_rate(1.0)),
        )
        .apps(["XSBench"])
        .eval(EvalConfig {
            max_cases: 1,
            analyze: true,
            repair_budget: 3,
            repair_guided: guided,
            ..EvalConfig::default()
        })
        .build()
}

#[test]
fn guided_repair_applies_fixits_and_ends_race_free() {
    // Every injected sample drops a reduction clause; the analyzer's
    // high-confidence fix-it restores it, so guided repair must end every
    // sample race-free in exactly one round — no probability roll.
    let results = SerialRunner.run(&repair_plan(4, true));
    let mut samples = 0;
    for cell in results.cells.values() {
        for record in cell.records() {
            let r = &record.result;
            samples += 1;
            assert!(
                r.race_free(),
                "guided repair left sample racy: {:?}",
                r.analysis
            );
            let last = r
                .rounds
                .last()
                .expect("racy sample entered the repair loop");
            assert_eq!(last.round, 1, "guided repair took more than one round");
            assert!(!last.gave_up);
        }
        assert_eq!(cell.race_free_at_k(1), 1.0);
        assert_eq!(
            cell.fixit_count(),
            0,
            "post-repair analysis still carries fix-its"
        );
    }
    assert!(samples > 0, "grid produced no samples");

    // Blind repair on the same grid is the control: it may or may not fix
    // each sample (per-category probability), but it can never beat the
    // guided run's deterministic single round.
    let blind = SerialRunner.run(&repair_plan(4, false));
    let blind_race_free: u64 = blind.cells.values().map(|c| c.race_free_samples()).sum();
    assert!(
        blind_race_free <= samples,
        "blind repair fixed more samples than exist"
    );
}

#[test]
fn guided_repair_is_deterministic_and_journal_stable() {
    // Same plan, twice: guided repair's fix-it application is pure, so the
    // runs are byte-identical; and a guided run's journal resumes to the
    // same results, fix-its riding the finding codec.
    let plan = repair_plan(2, true);
    let first = SerialRunner.run(&plan);
    let second = ScheduledRunner::new(4).run(&plan);
    assert_eq!(first, second);
    assert_eq!(format!("{first:?}"), format!("{second:?}"));

    let dir = TestDir::new("guided-journal");
    let journal_path = dir.file("run.journal");
    let sink = journal::JournalSink::create(&journal_path, &plan).unwrap();
    let journaled = SerialRunner.run_with(&plan, &EvalPipeline::new(plan.eval().clone()), &sink);
    drop(sink);
    let resumed = SerialRunner
        .resume(
            &plan,
            &journal_path,
            &EvalPipeline::new(plan.eval().clone()),
            &NullSink,
        )
        .unwrap();
    assert_eq!(journaled, resumed);
    assert_eq!(format!("{journaled:?}"), format!("{resumed:?}"));
}

#[test]
fn journaled_fixits_roundtrip() {
    // A blind analyzer-on run keeps its findings (and their fix-its) in
    // the final result; the journal codec must carry both verbatim.
    let dir = TestDir::new("fixit-journal");
    let journal_path = dir.file("run.journal");
    let plan = injected_plan(2);
    let sink = journal::JournalSink::create(&journal_path, &plan).unwrap();
    let live = SerialRunner.run_with(&plan, &EvalPipeline::new(plan.eval().clone()), &sink);
    drop(sink);
    let resumed = SerialRunner
        .resume(
            &plan,
            &journal_path,
            &EvalPipeline::new(plan.eval().clone()),
            &NullSink,
        )
        .unwrap();
    assert_eq!(live, resumed);
    let mut fixits = 0;
    for cell in resumed.cells.values() {
        assert_eq!(cell.fixit_count() as usize, {
            cell.records()
                .iter()
                .flat_map(|r| &r.result.analysis)
                .filter(|f| f.fixit.is_some())
                .count()
        });
        for record in cell.records() {
            for f in &record.result.analysis {
                if let Some(fx) = &f.fixit {
                    fixits += 1;
                    assert!(!fx.title.is_empty());
                    assert_eq!(fx.file, f.file, "fix-it drifted to another file");
                }
            }
        }
    }
    assert!(fixits > 0, "journal round-trip dropped every fix-it");
}

#[test]
fn race_report_matches_golden() {
    // Golden capture of the analyzer report on the injected-race grid.
    // Regenerate with UPDATE_GOLDEN=1 after an intentional change.
    let results = ScheduledRunner::new(4).run(&injected_plan(3));
    let text = report::race_report(&results);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/analyze_report.txt"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &text).unwrap();
    }
    assert_eq!(
        text,
        std::fs::read_to_string(path).expect("golden missing; rerun with UPDATE_GOLDEN=1"),
        "analyzer report diverged from tests/golden/analyze_report.txt"
    );
}

#[test]
fn journaled_findings_survive_resume() {
    // Findings ride the journal codec: a completed analyzer-on journal
    // resumes to byte-identical results, re-running nothing.
    let dir = TestDir::new("analyze-journal");
    let journal_path = dir.file("run.journal");
    let plan = injected_plan(2);
    let sink = journal::JournalSink::create(&journal_path, &plan).unwrap();
    let uninterrupted =
        SerialRunner.run_with(&plan, &EvalPipeline::new(plan.eval().clone()), &sink);
    drop(sink);

    let replay = journal::scan(&journal_path, &plan).unwrap();
    assert_eq!(replay.completed.len(), plan.total_samples());
    let resumed = SerialRunner
        .resume(
            &plan,
            &journal_path,
            &EvalPipeline::new(plan.eval().clone()),
            &NullSink,
        )
        .unwrap();
    assert_eq!(uninterrupted, resumed);
    assert_eq!(format!("{uninterrupted:?}"), format!("{resumed:?}"));
    let any_findings = resumed
        .cells
        .values()
        .flat_map(|c| c.records())
        .any(|r| !r.result.analysis.is_empty());
    assert!(any_findings, "journal round-trip dropped the findings");
}

#[test]
fn truncated_findings_are_a_prefix_of_the_full_list() {
    // `analyze_max_findings` truncates *after* the deterministic sort, so
    // a tighter budget yields exactly the head of the looser run's list.
    let full = SerialRunner.run(&injected_plan(2));
    let mut truncated_plan = injected_plan(2);
    {
        // Rebuild with the tighter budget (EvalConfig is set at build time).
        let mut eval = truncated_plan.eval().clone();
        eval.analyze_max_findings = 1;
        truncated_plan = ExperimentPlan::builder()
            .samples(2)
            .pairs([TranslationPair::OMP_THREADS_TO_OFFLOAD])
            .techniques([Technique::NonAgentic])
            .models(
                all_models()
                    .into_iter()
                    .filter(|m| m.name == "o4-mini")
                    .map(|m| m.with_race_rate(1.0)),
            )
            .apps(["XSBench"])
            .eval(eval)
            .build();
    }
    let truncated = SerialRunner.run(&truncated_plan);
    for (key, cell) in &truncated.cells {
        let full_cell = &full.cells[key];
        for (t, f) in cell.records().iter().zip(full_cell.records()) {
            assert_eq!(t.sample_index, f.sample_index);
            let n = t.result.analysis.len();
            assert!(n <= 1, "{key:?}: truncation budget exceeded");
            assert_eq!(
                t.result.analysis[..],
                f.result.analysis[..n],
                "{key:?}: truncated findings are not a prefix of the full list"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Findings come back sorted by (file, line, rule, variable): the
    /// stable order that makes `analyze_max_findings` truncation
    /// deterministic, for any translated sample.
    #[test]
    fn finding_order_is_deterministic(seed in 1u64..1000, sample in 0u32..4) {
        let repo = translated_repo(seed, sample);
        let findings = minihpc_analyze::analyze_repo(&repo);
        let keys: Vec<_> = findings
            .iter()
            .map(|f| (
                f.file.clone(),
                f.line.unwrap_or(0),
                f.rule.code(),
                f.variable.clone(),
            ))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        prop_assert_eq!(keys, sorted, "finding order is not the canonical sort");
    }

    /// The analyzer verdict is pure and scheduler-invisible: the same grid
    /// yields byte-identical findings at any worker count, and re-analyzing
    /// the same repo yields the same findings.
    #[test]
    fn analyzer_is_deterministic_across_workers(workers in 1usize..6, sample in 0u32..4) {
        let plan = injected_plan(2);
        let serial = SerialRunner.run(&plan);
        let parallel = ScheduledRunner::new(workers).run(&plan);
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
        prop_assert_eq!(
            report::race_report(&serial),
            report::race_report(&parallel)
        );

        let repo = translated_repo(7, sample);
        prop_assert_eq!(
            minihpc_analyze::analyze_repo(&repo),
            minihpc_analyze::analyze_repo(&repo)
        );
    }
}
