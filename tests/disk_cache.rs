//! The persistent disk tier of the build cache: cross-process reuse,
//! LRU eviction under a byte budget, corruption = miss (never a wrong
//! result), and the no-aliasing regression pin for `BuildCache::key`.

mod common;

use common::TestDir;
use minihpc_lang::model::TranslationPair;
use pareval_core::{EvalConfig, EvalPipeline, ExperimentPlan, Runner, SerialRunner};
use pareval_llm::all_models;
use pareval_repo as _;
use pareval_translate::Technique;
use std::path::Path;

fn disk_eval(dir: &Path, budget: u64, repair_budget: u32) -> EvalConfig {
    EvalConfig {
        max_cases: 1,
        repair_budget,
        disk_cache_dir: Some(dir.to_path_buf()),
        disk_cache_budget: budget,
        ..EvalConfig::default()
    }
}

fn plan_on(eval: EvalConfig) -> ExperimentPlan {
    ExperimentPlan::builder()
        .samples(3)
        .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
        .apps(["nanoXOR", "microXOR"])
        .eval(eval)
        .build()
}

fn files_with_extension(dir: &Path, ext: &str) -> Vec<std::path::PathBuf> {
    let mut out: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == ext))
        .collect();
    out.sort();
    out
}

fn entry_files(dir: &Path) -> Vec<std::path::PathBuf> {
    files_with_extension(dir, "entry")
}

/// Per-file compile-unit entries of the disk tier (`.unit`, magic PEBU).
fn unit_files(dir: &Path) -> Vec<std::path::PathBuf> {
    files_with_extension(dir, "unit")
}

fn dir_bytes(dir: &Path) -> u64 {
    entry_files(dir)
        .iter()
        .map(|p| std::fs::metadata(p).unwrap().len())
        .sum()
}

#[test]
fn second_process_gets_disk_hits_and_identical_results() {
    // Two fresh pipelines sharing one cache dir stand in for two processes:
    // the first populates the tier, the second must hit it — with results
    // byte-identical to an uncached run.
    let dir = TestDir::new("disk-reuse");
    let plan = plan_on(disk_eval(dir.path(), 64 << 20, 0));

    let first = EvalPipeline::new(plan.eval().clone());
    assert!(first.disk_cache_active());
    let warm = SerialRunner.run_with(&plan, &first, &pareval_core::NullSink);
    assert_eq!(first.cache_stats().disk_hits, 0, "empty tier cannot hit");
    assert!(!entry_files(dir.path()).is_empty(), "nothing persisted");

    let second = EvalPipeline::new(plan.eval().clone());
    let reused = SerialRunner.run_with(&plan, &second, &pareval_core::NullSink);
    let stats = second.cache_stats();
    assert!(
        stats.disk_hits > 0,
        "fresh pipeline saw no disk hits: {stats:?}"
    );
    assert_eq!(warm, reused);

    let mut uncached_eval = plan.eval().clone();
    uncached_eval.build_cache = false;
    uncached_eval.disk_cache_dir = None;
    let uncached = SerialRunner.run_with(
        &plan,
        &EvalPipeline::new(uncached_eval),
        &pareval_core::NullSink,
    );
    assert_eq!(warm, uncached, "cache changed the results");
}

#[test]
fn eviction_respects_the_byte_budget() {
    // A budget far below the working set forces evictions; the stored
    // bytes must end at or under budget (one oversized entry is allowed to
    // stand alone — evicting the only entry would thrash pointlessly).
    let dir = TestDir::new("disk-evict");
    let budget = 600;
    let plan = plan_on(disk_eval(dir.path(), budget, 0));
    let pipeline = EvalPipeline::new(plan.eval().clone());
    SerialRunner.run_with(&plan, &pipeline, &pareval_core::NullSink);
    let stats = pipeline.cache_stats();
    assert!(
        stats.evictions > 0,
        "budget never forced an eviction: {stats:?}"
    );
    let stored = dir_bytes(dir.path());
    assert!(
        stored <= budget || entry_files(dir.path()).len() == 1,
        "stored {stored} bytes exceeds budget {budget}"
    );
}

#[test]
fn corrupted_entry_is_a_miss_never_a_wrong_result() {
    let dir = TestDir::new("disk-corrupt");
    let plan = plan_on(disk_eval(dir.path(), 64 << 20, 0));
    let baseline = SerialRunner.run(&plan);

    // Corrupt every persisted entry three different ways: payload bit
    // flip, truncation, and magic clobber.
    let files = entry_files(dir.path());
    assert!(
        files.len() >= 3,
        "need several entries, got {}",
        files.len()
    );
    for (i, file) in files.iter().enumerate() {
        let mut bytes = std::fs::read(file).unwrap();
        match i % 3 {
            0 => {
                let at = bytes.len() - 1;
                bytes[at] ^= 0x08;
            }
            1 => bytes.truncate(bytes.len() / 2),
            _ => bytes[..8].copy_from_slice(b"XXXXXXXX"),
        }
        std::fs::write(file, &bytes).unwrap();
    }

    let pipeline = EvalPipeline::new(plan.eval().clone());
    let rerun = SerialRunner.run_with(&plan, &pipeline, &pareval_core::NullSink);
    assert_eq!(baseline, rerun, "a corrupt entry leaked into the results");
    let stats = pipeline.cache_stats();
    assert_eq!(
        stats.disk_hits, 0,
        "corrupt entries must never serve hits: {stats:?}"
    );
    assert!(stats.misses > 0);
}

#[test]
fn corrupt_entries_are_deleted_and_rewritten() {
    let dir = TestDir::new("disk-heal");
    let plan = plan_on(disk_eval(dir.path(), 64 << 20, 0));
    SerialRunner.run(&plan);
    let files = entry_files(dir.path());
    let victim = &files[0];
    std::fs::write(victim, b"not an entry").unwrap();

    // The re-run detects the corruption, drops the file, and re-stores the
    // freshly computed outcome — the tier heals.
    SerialRunner.run(&plan);
    let healed = std::fs::read(victim).unwrap();
    assert!(healed.starts_with(b"PEBC"), "entry was not rewritten");
    let pipeline = EvalPipeline::new(plan.eval().clone());
    SerialRunner.run_with(&plan, &pipeline, &pareval_core::NullSink);
    assert!(pipeline.cache_stats().disk_hits > 0);
}

#[test]
fn config_changes_never_alias_disk_entries() {
    // Regression pin for `BuildCache::key`: an outcome-affecting
    // `EvalConfig` knob (here the repair budget) changes the key, so a
    // shared cache dir must produce zero cross-config disk hits — stale
    // entries from another config can never alias into this one.
    let dir = TestDir::new("disk-alias");
    let plan_b0 = plan_on(disk_eval(dir.path(), 64 << 20, 0));
    SerialRunner.run(&plan_b0);

    let plan_b2 = plan_on(disk_eval(dir.path(), 64 << 20, 2));
    let crossed = EvalPipeline::new(plan_b2.eval().clone());
    let results = SerialRunner.run_with(&plan_b2, &crossed, &pareval_core::NullSink);
    assert_eq!(
        crossed.cache_stats().disk_hits,
        0,
        "budget-2 run hit budget-0 entries: aliased keys"
    );
    // And the budget-2 results still match an uncached budget-2 run.
    let mut uncached_eval = plan_b2.eval().clone();
    uncached_eval.build_cache = false;
    uncached_eval.disk_cache_dir = None;
    let uncached = SerialRunner.run_with(
        &plan_b2,
        &EvalPipeline::new(uncached_eval),
        &pareval_core::NullSink,
    );
    assert_eq!(results, uncached);

    // Same config again: its own entries now hit.
    let same = EvalPipeline::new(plan_b2.eval().clone());
    SerialRunner.run_with(&plan_b2, &same, &pareval_core::NullSink);
    assert!(same.cache_stats().disk_hits > 0);
}

#[test]
fn unit_entries_cross_processes_even_when_outcome_keys_differ() {
    // Per-file reuse across processes: a budget-3 run over a tier
    // populated by a budget-0 run can never hit the *outcome* entries
    // (the repair budget is hashed into the outcome key), but the
    // file-granular unit entries key on include-closure content only —
    // the second process replays compiled units from disk while every
    // outcome lookup cold-misses.
    let dir = TestDir::new("disk-unit-reuse");
    let first = EvalPipeline::new(disk_eval(dir.path(), 64 << 20, 0));
    SerialRunner.run_with(
        &plan_on(disk_eval(dir.path(), 64 << 20, 0)),
        &first,
        &pareval_core::NullSink,
    );
    assert!(
        !unit_files(dir.path()).is_empty(),
        "no unit entries persisted"
    );

    let plan_b3 = plan_on(disk_eval(dir.path(), 64 << 20, 3));
    let second = EvalPipeline::new(plan_b3.eval().clone());
    let results = SerialRunner.run_with(&plan_b3, &second, &pareval_core::NullSink);
    let stats = second.cache_stats();
    assert_eq!(stats.disk_hits, 0, "outcome keys must not alias: {stats:?}");
    assert!(
        stats.file_hits > 0,
        "unit entries did not serve the second process: {stats:?}"
    );

    // And the replayed units changed nothing: identical to uncached.
    let mut uncached_eval = plan_b3.eval().clone();
    uncached_eval.build_cache = false;
    uncached_eval.disk_cache_dir = None;
    let uncached = SerialRunner.run_with(
        &plan_on(uncached_eval.clone()),
        &EvalPipeline::new(uncached_eval),
        &pareval_core::NullSink,
    );
    assert_eq!(results, uncached);
}

#[test]
fn corrupted_unit_entry_is_a_miss_then_healed() {
    // Same corruption-equals-miss discipline as outcome entries, applied
    // to the per-file tier: garbled `.unit` files are dropped, recompiled
    // cold, and rewritten — never replayed into a wrong object.
    let dir = TestDir::new("disk-unit-corrupt");
    let plan = plan_on(disk_eval(dir.path(), 64 << 20, 0));
    let baseline = SerialRunner.run(&plan);
    let units = unit_files(dir.path());
    assert!(!units.is_empty(), "no unit entries persisted");
    // Drop the outcome entries so the re-run cold-builds (an outcome hit
    // would never consult the unit tier and the corruption would go
    // unexercised).
    for entry in entry_files(dir.path()) {
        std::fs::remove_file(entry).unwrap();
    }
    for (i, file) in units.iter().enumerate() {
        let mut bytes = std::fs::read(file).unwrap();
        match i % 3 {
            0 => {
                let at = bytes.len() - 1;
                bytes[at] ^= 0x08;
            }
            1 => bytes.truncate(bytes.len() / 2),
            _ => bytes[..8].copy_from_slice(b"XXXXXXXX"),
        }
        std::fs::write(file, &bytes).unwrap();
    }

    let pipeline = EvalPipeline::new(plan.eval().clone());
    let rerun = SerialRunner.run_with(&plan, &pipeline, &pareval_core::NullSink);
    assert_eq!(baseline, rerun, "a corrupt unit leaked into the results");
    for file in &units {
        let healed = std::fs::read(file).unwrap();
        assert!(
            healed.starts_with(b"PEBU"),
            "unit entry was not rewritten: {}",
            file.display()
        );
    }
}

#[test]
fn analysis_is_recomputed_on_restart_not_served_stale() {
    // Analyzer findings are memoized in memory only — deliberately not
    // persisted in the disk tier. This pins that choice: a fresh process
    // over a warm tier serves outcomes from disk yet reproduces the same
    // findings by recomputing them, byte-identical to a cold analyzer run.
    // The injected-race cell (XSBench, OpenMP threads → offload, race_rate
    // 1.0) guarantees real findings so the pin is not vacuous.
    let dir = TestDir::new("disk-analysis");
    let plan = ExperimentPlan::builder()
        .samples(2)
        .pairs([TranslationPair::OMP_THREADS_TO_OFFLOAD])
        .techniques([Technique::NonAgentic])
        .models(
            all_models()
                .into_iter()
                .filter(|m| m.name == "o4-mini")
                .map(|m| m.with_race_rate(1.0)),
        )
        .apps(["XSBench"])
        .eval(EvalConfig {
            analyze: true,
            ..disk_eval(dir.path(), 64 << 20, 0)
        })
        .build();
    let baseline = SerialRunner.run(&plan);

    let restarted = EvalPipeline::new(plan.eval().clone());
    let rerun = SerialRunner.run_with(&plan, &restarted, &pareval_core::NullSink);
    let stats = restarted.cache_stats();
    assert!(
        stats.disk_hits > 0,
        "restart did not reuse the warm tier: {stats:?}"
    );
    assert_eq!(baseline, rerun, "recomputed analysis diverged");
    assert!(
        rerun
            .cells
            .values()
            .flat_map(|c| c.records())
            .any(|r| !r.result.analysis.is_empty()),
        "analyzer produced no findings; the recompute pin is vacuous"
    );
}

#[test]
fn unusable_cache_dir_degrades_to_memory_only() {
    // Pointing the tier at a path that is a *file* cannot be opened as a
    // directory: the pipeline degrades to the in-memory tier (observable
    // via disk_cache_active) instead of failing the run.
    let dir = TestDir::new("disk-degrade");
    let blocker = dir.file("not-a-dir");
    std::fs::write(&blocker, b"occupied").unwrap();
    let plan = plan_on(disk_eval(&blocker, 64 << 20, 0));
    let pipeline = EvalPipeline::new(plan.eval().clone());
    assert!(!pipeline.disk_cache_active());
    let degraded = SerialRunner.run_with(&plan, &pipeline, &pareval_core::NullSink);
    assert_eq!(
        degraded,
        SerialRunner.run(&plan_on(EvalConfig {
            max_cases: 1,
            ..EvalConfig::default()
        }))
    );
}

#[test]
fn disk_hits_count_toward_the_hit_rate() {
    let dir = TestDir::new("disk-rate");
    let plan = plan_on(disk_eval(dir.path(), 64 << 20, 0));
    SerialRunner.run(&plan);
    let pipeline = EvalPipeline::new(plan.eval().clone());
    SerialRunner.run_with(&plan, &pipeline, &pareval_core::NullSink);
    let stats = pipeline.cache_stats();
    let expected = (stats.hits + stats.disk_hits) as f64
        / (stats.hits + stats.disk_hits + stats.misses) as f64;
    assert!((stats.hit_rate() - expected).abs() < 1e-12);
    assert!(stats.hit_rate() > 0.0);
}
