//! Crash/fault-injection suite for the durability layer: a run that
//! journals its progress, crashes anywhere, and resumes must produce
//! results byte-identical to an uninterrupted serial run — across worker
//! counts, repair budgets, torn journal tails, flipped checksum bytes, and
//! repeated crash/resume cycles. Wrong-plan journals are refused with a
//! typed error, never silently resumed.

mod common;

use common::{with_quiet_panics, TestDir};
use minihpc_lang::model::TranslationPair;
use pareval_core::{
    journal, report, CountingSink, EvalConfig, EvalPipeline, ExperimentPlan, ExperimentResults,
    JournalError, JournalSink, NullSink, ProgressSink, Runner, ScheduledRunner, SerialRunner,
};
use pareval_llm::{Attempt, AttemptSpec, SimulatedBackend, TranslationBackend};
use pareval_repo as _;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fault injection: delegates to an inner backend but panics when the
/// `n`th attempt starts — "a bug anywhere inside one sample's evaluation",
/// placed deterministically. `name` and `cell_feasible` delegate too, so a
/// plan built on this wrapper has the *same fingerprint* as one built on
/// the clean inner backend: the resumed plan does not need to re-create
/// the crash to match the journal.
struct PanicAfterN {
    inner: Arc<dyn TranslationBackend>,
    allowed: u64,
    started: AtomicU64,
}

impl PanicAfterN {
    fn new(inner: Arc<dyn TranslationBackend>, allowed: u64) -> Self {
        PanicAfterN {
            inner,
            allowed,
            started: AtomicU64::new(0),
        }
    }
}

impl TranslationBackend for PanicAfterN {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn start_attempt(&self, spec: &AttemptSpec<'_>) -> Box<dyn Attempt> {
        if self.started.fetch_add(1, Ordering::SeqCst) >= self.allowed {
            panic!("injected crash after {} samples", self.allowed);
        }
        self.inner.start_attempt(spec)
    }

    fn cell_feasible(
        &self,
        pair: TranslationPair,
        technique: pareval_translate::Technique,
        model: &str,
        app: &str,
    ) -> bool {
        self.inner.cell_feasible(pair, technique, model, app)
    }
}

/// The grid every test here runs: one pair, two apps, all techniques and
/// models, 2 samples per feasible cell — small enough to run dozens of
/// times, big enough to have a real remainder at any crash point.
fn plan_with(backend: Arc<dyn TranslationBackend>, repair_budget: u32) -> ExperimentPlan {
    ExperimentPlan::builder()
        .samples(2)
        .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
        .apps(["nanoXOR", "microXOR"])
        .eval(EvalConfig {
            max_cases: 1,
            repair_budget,
            ..EvalConfig::default()
        })
        .backend(backend)
        .build()
}

fn clean_plan(repair_budget: u32) -> ExperimentPlan {
    plan_with(Arc::new(SimulatedBackend), repair_budget)
}

/// Run `plan` journaling to `journal_path` until the injected crash fires;
/// asserts the crash actually happened.
fn run_to_crash(plan: &ExperimentPlan, journal_path: &Path, workers: usize) {
    let sink = JournalSink::create(journal_path, plan).expect("create journal");
    let pipeline = EvalPipeline::new(plan.eval().clone());
    let crashed = with_quiet_panics(|| {
        catch_unwind(AssertUnwindSafe(|| {
            if workers == 0 {
                SerialRunner.run_with(plan, &pipeline, &sink);
            } else {
                ScheduledRunner::new(workers).run_with(plan, &pipeline, &sink);
            }
        }))
        .is_err()
    });
    assert!(crashed, "crash injection did not fire");
}

/// The byte-identity surface: every report the harness renders.
fn full_report_text(results: &ExperimentResults) -> String {
    let mut text = String::new();
    for code_only in [false, true] {
        text.push_str(&report::fig2(
            results,
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            code_only,
        ));
    }
    text.push_str(&report::fig3(results));
    text.push_str(&report::fig4(results));
    text.push_str(&report::fig5(results));
    text.push_str(&report::table2(results));
    text.push_str(&report::repair_report(results));
    text
}

#[test]
fn crash_then_resume_is_byte_identical_and_skips_completed_work() {
    let dir = TestDir::new("resume");
    let journal_path = dir.file("run.journal");
    let crashing = plan_with(Arc::new(PanicAfterN::new(Arc::new(SimulatedBackend), 3)), 0);
    run_to_crash(&crashing, &journal_path, 2);

    let plan = clean_plan(0);
    let total = plan.total_samples();
    let replay = journal::scan(&journal_path, &plan).unwrap();
    let recovered = replay.completed.len();
    assert!(
        recovered > 0 && recovered < total,
        "want a genuine partial journal, got {recovered}/{total}"
    );

    let serial = SerialRunner.run(&plan);
    let sink = CountingSink::new();
    let resumed = SerialRunner
        .resume(
            &plan,
            &journal_path,
            &EvalPipeline::new(plan.eval().clone()),
            &sink,
        )
        .unwrap();
    // Only the remainder ran; replayed records are not re-delivered.
    assert_eq!(sink.completed() as usize, total - recovered);
    assert_eq!(serial, resumed);
    assert_eq!(format!("{serial:?}"), format!("{resumed:?}"));
    assert_eq!(full_report_text(&serial), full_report_text(&resumed));
}

#[test]
fn resume_of_a_completed_journal_reruns_nothing() {
    let dir = TestDir::new("resume-noop");
    let journal_path = dir.file("run.journal");
    let plan = clean_plan(0);
    let sink = JournalSink::create(&journal_path, &plan).unwrap();
    let uninterrupted =
        SerialRunner.run_with(&plan, &EvalPipeline::new(plan.eval().clone()), &sink);
    drop(sink);

    let counting = CountingSink::new();
    let resumed = SerialRunner
        .resume(
            &plan,
            &journal_path,
            &EvalPipeline::new(plan.eval().clone()),
            &counting,
        )
        .unwrap();
    assert_eq!(counting.completed(), 0, "nothing was left to run");
    assert_eq!(uninterrupted, resumed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole guarantee, drawn over the fault space: crash after any
    /// number of completed samples (including zero), under any worker
    /// count 1..8 on both sides of the crash, with and without repair
    /// rounds — the resumed results and every rendered report are
    /// byte-identical to an uninterrupted serial run.
    #[test]
    fn crashed_run_resumes_byte_identically(
        crash_salt in 0usize..10_000,
        workers in 1usize..8,
        resume_workers in 1usize..8,
        budget_is_2 in any::<bool>(),
    ) {
        let repair_budget = if budget_is_2 { 2 } else { 0 };
        let plan = clean_plan(repair_budget);
        let total = plan.total_samples();
        let allowed = (crash_salt % total) as u64;

        let dir = TestDir::new("resume-prop");
        let journal_path = dir.file("run.journal");
        let crashing = plan_with(
            Arc::new(PanicAfterN::new(Arc::new(SimulatedBackend), allowed)),
            repair_budget,
        );
        run_to_crash(&crashing, &journal_path, workers);

        let serial = SerialRunner.run(&plan);
        let resumed = ScheduledRunner::new(resume_workers)
            .resume(&plan, &journal_path, &EvalPipeline::new(plan.eval().clone()), &NullSink)
            .unwrap();
        prop_assert_eq!(&serial, &resumed);
        prop_assert_eq!(
            full_report_text(&serial),
            full_report_text(&resumed),
            "report bytes diverged (crash after {} of {}, {} -> {} workers, budget {})",
            allowed, total, workers, resume_workers, repair_budget
        );
    }
}

#[test]
fn two_crashes_one_journal_still_converges() {
    // Crash, resume into a second crash (appending to the same journal),
    // then resume to completion: the normal arrangement under repeated
    // failures. The journal absorbs both partial runs.
    let dir = TestDir::new("resume-twice");
    let journal_path = dir.file("run.journal");
    run_to_crash(
        &plan_with(Arc::new(PanicAfterN::new(Arc::new(SimulatedBackend), 2)), 0),
        &journal_path,
        3,
    );

    let plan = clean_plan(0);
    let first = journal::scan(&journal_path, &plan).unwrap().completed.len();

    // Second run: resume with an appending sink, crash again after 2 more.
    let crashing = plan_with(Arc::new(PanicAfterN::new(Arc::new(SimulatedBackend), 2)), 0);
    let sink = JournalSink::append(&journal_path, &crashing).unwrap();
    let crashed = with_quiet_panics(|| {
        catch_unwind(AssertUnwindSafe(|| {
            ScheduledRunner::new(2)
                .resume(
                    &crashing,
                    &journal_path,
                    &EvalPipeline::new(crashing.eval().clone()),
                    &sink,
                )
                .unwrap();
        }))
        .is_err()
    });
    drop(sink);
    assert!(crashed, "second crash did not fire");

    let second = journal::scan(&journal_path, &plan).unwrap().completed.len();
    assert!(
        second > first,
        "second run made no journaled progress ({first} -> {second})"
    );

    let resumed = SerialRunner
        .resume(
            &plan,
            &journal_path,
            &EvalPipeline::new(plan.eval().clone()),
            &NullSink,
        )
        .unwrap();
    assert_eq!(SerialRunner.run(&plan), resumed);
}

/// Truncate or corrupt the journal and check resume recovers the intact
/// prefix and re-runs the rest.
fn assert_degraded_journal_still_resumes(mutate: impl FnOnce(&mut Vec<u8>), tag: &str) {
    let dir = TestDir::new(tag);
    let journal_path = dir.file("run.journal");
    let plan = clean_plan(0);
    let sink = JournalSink::create(&journal_path, &plan).unwrap();
    let serial = SerialRunner.run_with(&plan, &EvalPipeline::new(plan.eval().clone()), &sink);
    drop(sink);
    let total = plan.total_samples();
    assert_eq!(
        journal::scan(&journal_path, &plan).unwrap().completed.len(),
        total
    );

    let mut bytes = std::fs::read(&journal_path).unwrap();
    mutate(&mut bytes);
    std::fs::write(&journal_path, &bytes).unwrap();

    let recovered = journal::scan(&journal_path, &plan).unwrap().completed.len();
    assert!(
        recovered < total,
        "{tag}: corruption went unnoticed ({recovered}/{total})"
    );
    let counting = CountingSink::new();
    let resumed = SerialRunner
        .resume(
            &plan,
            &journal_path,
            &EvalPipeline::new(plan.eval().clone()),
            &counting,
        )
        .unwrap();
    assert_eq!(counting.completed() as usize, total - recovered);
    assert_eq!(serial, resumed, "{tag}: resumed results diverged");
}

#[test]
fn truncation_mid_record_recovers_the_intact_prefix() {
    // Cut inside the last record's payload — a torn write at crash time.
    assert_degraded_journal_still_resumes(|bytes| bytes.truncate(bytes.len() - 11), "resume-torn");
}

#[test]
fn truncation_to_bare_header_resumes_from_scratch() {
    let dir = TestDir::new("resume-header");
    let journal_path = dir.file("run.journal");
    let plan = clean_plan(0);
    let sink = JournalSink::create(&journal_path, &plan).unwrap();
    let serial = SerialRunner.run_with(&plan, &EvalPipeline::new(plan.eval().clone()), &sink);
    drop(sink);

    let bytes = std::fs::read(&journal_path).unwrap();
    std::fs::write(&journal_path, &bytes[..24]).unwrap();
    assert_eq!(journal::scan(&journal_path, &plan).unwrap().records, 0);
    let counting = CountingSink::new();
    let resumed = SerialRunner
        .resume(
            &plan,
            &journal_path,
            &EvalPipeline::new(plan.eval().clone()),
            &counting,
        )
        .unwrap();
    assert_eq!(counting.completed() as usize, plan.total_samples());
    assert_eq!(serial, resumed);
}

#[test]
fn checksum_byte_flip_drops_the_corrupt_suffix_not_the_run() {
    // Flip one payload byte ~60% in: every record before it replays, the
    // flipped one and everything after re-run (replay cannot re-sync past
    // an unframed corruption, and correctness never depends on trying).
    assert_degraded_journal_still_resumes(
        |bytes| {
            let at = bytes.len() * 3 / 5;
            bytes[at] ^= 0x40;
        },
        "resume-flip",
    );
}

#[test]
fn appending_sink_truncates_a_torn_tail() {
    // A crashed append leaves garbage after the last intact record;
    // reopening the journal for append must cut it so the next record
    // starts on a clean frame boundary.
    let dir = TestDir::new("resume-tail");
    let journal_path = dir.file("run.journal");
    let crashing = plan_with(Arc::new(PanicAfterN::new(Arc::new(SimulatedBackend), 4)), 0);
    run_to_crash(&crashing, &journal_path, 2);
    let plan = clean_plan(0);
    let intact = journal::scan(&journal_path, &plan).unwrap().records;

    let mut bytes = std::fs::read(&journal_path).unwrap();
    let clean_len = bytes.len();
    bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x01]);
    std::fs::write(&journal_path, &bytes).unwrap();

    let sink = JournalSink::append(&journal_path, &plan).unwrap();
    drop(sink);
    assert_eq!(
        std::fs::metadata(&journal_path).unwrap().len(),
        clean_len as u64,
        "torn tail survived reopen"
    );
    assert_eq!(journal::scan(&journal_path, &plan).unwrap().records, intact);

    // And the reopened journal keeps absorbing records: resume through it,
    // then the journal alone reconstructs the full run.
    let sink = JournalSink::append(&journal_path, &plan).unwrap();
    let resumed = SerialRunner
        .resume(
            &plan,
            &journal_path,
            &EvalPipeline::new(plan.eval().clone()),
            &sink,
        )
        .unwrap();
    drop(sink);
    assert_eq!(SerialRunner.run(&plan), resumed);
    assert_eq!(
        journal::scan(&journal_path, &plan).unwrap().completed.len(),
        plan.total_samples()
    );
}

#[test]
fn plan_fingerprint_mismatch_is_a_typed_error() {
    let dir = TestDir::new("resume-mismatch");
    let journal_path = dir.file("run.journal");
    let plan = clean_plan(0);
    let sink = JournalSink::create(&journal_path, &plan).unwrap();
    SerialRunner.run_with(&plan, &EvalPipeline::new(plan.eval().clone()), &sink);
    drop(sink);

    // A different seed and a different repair budget are both different
    // grids: resume refuses each with PlanMismatch, not silent mixing.
    let reseeded = ExperimentPlan::builder()
        .samples(2)
        .seed(7)
        .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
        .apps(["nanoXOR", "microXOR"])
        .build();
    let rebudgeted = clean_plan(2);
    for other in [&reseeded, &rebudgeted] {
        let err = SerialRunner
            .resume(
                other,
                &journal_path,
                &EvalPipeline::new(other.eval().clone()),
                &NullSink,
            )
            .unwrap_err();
        assert!(
            matches!(err, JournalError::PlanMismatch { .. }),
            "wanted PlanMismatch, got {err}"
        );
    }

    // Not-a-journal and missing-file are also typed, not panics.
    let garbage = dir.file("garbage.bin");
    std::fs::write(&garbage, b"hello").unwrap();
    assert!(matches!(
        SerialRunner
            .resume(
                &plan,
                &garbage,
                &EvalPipeline::new(plan.eval().clone()),
                &NullSink
            )
            .unwrap_err(),
        JournalError::NotAJournal { .. }
    ));
    assert!(matches!(
        SerialRunner
            .resume(
                &plan,
                &dir.file("missing.journal"),
                &EvalPipeline::new(plan.eval().clone()),
                &NullSink
            )
            .unwrap_err(),
        JournalError::Io(_)
    ));
}

#[test]
fn collector_consumes_records_in_one_pass_and_retains_no_duplicates() {
    // The iterator-based collector contract the resume path relies on:
    // each record is pulled from the source exactly once (no second
    // buffered copy of the input), and a journal holding duplicate records
    // (left by crash/append cycles) resumes to exactly total-samples
    // retained records — peak retained = final per-cell total, duplicates
    // dropped in-stream.
    let plan = clean_plan(0);
    let pipeline = EvalPipeline::new(plan.eval().clone());
    let records: Vec<_> = plan
        .sample_specs()
        .iter()
        .map(|s| pipeline.execute(&plan, s))
        .collect();
    let n = records.len();

    let pulled = AtomicU64::new(0);
    let results = ExperimentResults::from_records(
        &plan,
        records.clone().into_iter().inspect(|_| {
            pulled.fetch_add(1, Ordering::Relaxed);
        }),
    );
    assert_eq!(pulled.load(Ordering::Relaxed) as usize, n);
    assert_eq!(
        results,
        ExperimentResults::from_records(&plan, records.clone())
    );

    // Journal every record twice, then resume: retained == total, not 2x.
    let dir = TestDir::new("resume-dup");
    let journal_path = dir.file("run.journal");
    let sink = JournalSink::create(&journal_path, &plan).unwrap();
    for record in &records {
        sink.on_sample(record);
        sink.on_sample(record);
    }
    drop(sink);
    let replay = journal::scan(&journal_path, &plan).unwrap();
    assert_eq!(replay.records as usize, 2 * n);
    assert_eq!(replay.completed.len(), n);
    let resumed = SerialRunner
        .resume(&plan, &journal_path, &pipeline, &NullSink)
        .unwrap();
    let retained: u64 = resumed.cells.values().map(|c| c.samples()).sum();
    assert_eq!(retained as usize, n);
    assert_eq!(resumed, results);
}
