//! Workspace-spanning integration tests: run benchmark slices end to end
//! (simulated LLM → technique → MiniHPC build → simulated GPU run → metrics
//! → clustering) and check the paper's headline findings hold.

use minihpc_lang::model::TranslationPair;
use pareval_core::{ExperimentPlan, Metric, Runner, ScheduledRunner, Scoring, SerialRunner};
use pareval_errclust::{cluster_logs, PipelineConfig};
use pareval_llm::all_models;
use pareval_repo as _;
use pareval_translate::Technique;

fn slice(samples: u32, models: &[&str], apps: &[&str]) -> pareval_core::ExperimentResults {
    let plan = ExperimentPlan::builder()
        .samples(samples)
        .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
        .techniques([Technique::NonAgentic])
        .models(
            all_models()
                .into_iter()
                .filter(|m| models.contains(&m.name)),
        )
        .apps(apps.iter().copied())
        .build();
    ScheduledRunner::new(2).run(&plan)
}

#[test]
fn overall_never_exceeds_code_only() {
    let results = slice(6, &["o4-mini", "gpt-4o-mini"], &["nanoXOR", "microXOR"]);
    for (key, cell) in &results.cells {
        if cell.samples() == 0 {
            continue;
        }
        let builds_code = cell.successes(Metric::Build, Scoring::CodeOnly);
        let builds_overall = cell.successes(Metric::Build, Scoring::Overall);
        assert!(
            builds_overall <= builds_code,
            "{key:?}: overall build beats code-only"
        );
        assert!(
            cell.successes(Metric::Pass, Scoring::CodeOnly) <= builds_code,
            "{key:?}"
        );
        assert!(
            cell.successes(Metric::Pass, Scoring::Overall) <= builds_overall,
            "{key:?}"
        );
    }
}

#[test]
fn o4_mini_outperforms_gemini_on_nanoxor_offload() {
    // Paper Fig. 2(b): pass@1 code-only is 0.84 (o4-mini) vs 0 (gemini).
    let results = slice(8, &["o4-mini", "gemini-1.5-flash"], &["nanoXOR"]);
    let o4 = results
        .cell(
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            Technique::NonAgentic,
            "o4-mini",
            "nanoXOR",
        )
        .unwrap();
    let gem = results
        .cell(
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            Technique::NonAgentic,
            "gemini-1.5-flash",
            "nanoXOR",
        )
        .unwrap();
    let o4_pass = o4.pass_at_k(Scoring::CodeOnly, 1);
    assert!(o4_pass > 0.4, "o4: {o4_pass}");
    assert_eq!(
        gem.successes(Metric::Pass, Scoring::CodeOnly),
        0,
        "gemini never passes this cell"
    );
}

#[test]
fn pass_at_k_exceeds_pass_at_1_on_flaky_cells() {
    // The collector retains raw records, so pass@k for k > 1 is a real
    // query: on a cell with 0 < c < n passing samples it strictly
    // dominates pass@1 (more draws can only help).
    let results = slice(8, &["gpt-4o-mini"], &["nanoXOR"]);
    let cell = results
        .cell(
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            Technique::NonAgentic,
            "gpt-4o-mini",
            "nanoXOR",
        )
        .unwrap();
    let c = cell.successes(Metric::Pass, Scoring::CodeOnly);
    assert!(
        c > 0 && c < cell.samples(),
        "expected a mixed cell, got {c}/{}",
        cell.samples()
    );
    let p1 = cell.pass_at_k(Scoring::CodeOnly, 1);
    let p4 = cell.pass_at_k(Scoring::CodeOnly, 4);
    assert!(p4 > p1, "pass@4 {p4} should beat pass@1 {p1}");
    assert!(p4 <= 1.0);
}

#[test]
fn larger_apps_never_pass() {
    // Paper key finding: no pass@1 > 0 for apps larger than microXOR.
    let results = slice(4, &["o4-mini"], &["SimpleMOC-kernel"]);
    for cell in results.cells.values() {
        assert_eq!(cell.successes(Metric::Pass, Scoring::CodeOnly), 0);
        assert_eq!(cell.successes(Metric::Pass, Scoring::Overall), 0);
    }
}

#[test]
fn failed_builds_cluster_into_categories() {
    let results = slice(
        6,
        &["gemini-1.5-flash", "Llama-3.3-70B"],
        &["nanoXOR", "microXORh"],
    );
    let logs: Vec<_> = results
        .error_logs_with_models()
        .into_iter()
        .map(|(_, l)| l)
        .collect();
    assert!(!logs.is_empty(), "expected some build failures");
    let clustering = cluster_logs(&logs, &PipelineConfig::default());
    let assigned: usize = clustering.clusters.iter().map(|c| c.members.len()).sum();
    assert_eq!(assigned + clustering.noise.len(), logs.len());
    assert!(
        clustering.purity > 0.6,
        "clustering purity too low: {}",
        clustering.purity
    );
}

#[test]
fn token_ordering_matches_fig4() {
    let results = slice(3, &["qwq-32b-q8_0", "gemini-1.5-flash"], &["nanoXOR"]);
    let qwq = results
        .cell(
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            Technique::NonAgentic,
            "qwq-32b-q8_0",
            "nanoXOR",
        )
        .unwrap()
        .tokens()
        .mean()
        .unwrap();
    let gem = results
        .cell(
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            Technique::NonAgentic,
            "gemini-1.5-flash",
            "nanoXOR",
        )
        .unwrap()
        .tokens()
        .mean()
        .unwrap();
    assert!(qwq > gem * 5.0, "qwq {qwq} vs gemini {gem}");
}

#[test]
fn swe_agent_builds_sometimes_but_never_passes() {
    // Paper Fig. 2(c,d): SWE-agent (GPT-4o-mini, CUDA→Kokkos) reaches 0.28
    // build@1 on nanoXOR but pass@1 = 0 everywhere.
    let plan = ExperimentPlan::builder()
        .samples(8)
        .pairs([TranslationPair::CUDA_TO_KOKKOS])
        .techniques([Technique::SweAgent])
        .models(all_models().into_iter().filter(|m| m.name == "gpt-4o-mini"))
        .apps(["nanoXOR"])
        .build();
    let results = SerialRunner.run(&plan);
    let cell = results
        .cell(
            TranslationPair::CUDA_TO_KOKKOS,
            Technique::SweAgent,
            "gpt-4o-mini",
            "nanoXOR",
        )
        .unwrap();
    assert!(cell.feasible());
    assert_eq!(
        cell.successes(Metric::Pass, Scoring::Overall),
        0,
        "SWE-agent never passes"
    );
}
