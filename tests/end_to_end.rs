//! Workspace-spanning integration tests: run benchmark slices end to end
//! (simulated LLM → technique → MiniHPC build → simulated GPU run → metrics
//! → clustering) and check the paper's headline findings hold.

use minihpc_lang::model::TranslationPair;
use pareval_core::{run_experiment, ExperimentConfig};
use pareval_errclust::{cluster_logs, PipelineConfig};
use pareval_llm::all_models;
use pareval_repo as _;
use pareval_translate::Technique;

fn slice(samples: u32, models: &[&str], apps: &[&str]) -> pareval_core::ExperimentResults {
    let mut cfg = ExperimentConfig::full(samples);
    cfg.pairs = vec![TranslationPair::CUDA_TO_OMP_OFFLOAD];
    cfg.techniques = vec![Technique::NonAgentic];
    cfg.models = all_models()
        .into_iter()
        .filter(|m| models.contains(&m.name))
        .collect();
    cfg.apps = apps.iter().map(|a| a.to_string()).collect();
    cfg.pipe()
}

trait Pipe {
    fn pipe(&self) -> pareval_core::ExperimentResults;
}

impl Pipe for ExperimentConfig {
    fn pipe(&self) -> pareval_core::ExperimentResults {
        run_experiment(self)
    }
}

#[test]
fn overall_never_exceeds_code_only() {
    let results = slice(6, &["o4-mini", "gpt-4o-mini"], &["nanoXOR", "microXOR"]);
    for (key, cell) in &results.cells {
        if cell.samples == 0 {
            continue;
        }
        assert!(
            cell.builds_overall <= cell.builds_code,
            "{key:?}: overall build beats code-only"
        );
        assert!(cell.passes_code <= cell.builds_code, "{key:?}");
        assert!(cell.passes_overall <= cell.builds_overall, "{key:?}");
    }
}

#[test]
fn o4_mini_outperforms_gemini_on_nanoxor_offload() {
    // Paper Fig. 2(b): pass@1 code-only is 0.84 (o4-mini) vs 0 (gemini).
    let results = slice(8, &["o4-mini", "gemini-1.5-flash"], &["nanoXOR"]);
    let o4 = results
        .cell(
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            Technique::NonAgentic,
            "o4-mini",
            "nanoXOR",
        )
        .unwrap();
    let gem = results
        .cell(
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            Technique::NonAgentic,
            "gemini-1.5-flash",
            "nanoXOR",
        )
        .unwrap();
    assert!(o4.pass_at_1_code() > 0.4, "o4: {}", o4.pass_at_1_code());
    assert_eq!(gem.passes_code, 0, "gemini never passes this cell");
}

#[test]
fn larger_apps_never_pass() {
    // Paper key finding: no pass@1 > 0 for apps larger than microXOR.
    let results = slice(4, &["o4-mini"], &["SimpleMOC-kernel"]);
    for cell in results.cells.values() {
        assert_eq!(cell.passes_code, 0);
        assert_eq!(cell.passes_overall, 0);
    }
}

#[test]
fn failed_builds_cluster_into_categories() {
    let results = slice(
        6,
        &["gemini-1.5-flash", "Llama-3.3-70B"],
        &["nanoXOR", "microXORh"],
    );
    let logs: Vec<_> = results
        .error_logs_with_models()
        .into_iter()
        .map(|(_, l)| l)
        .collect();
    assert!(!logs.is_empty(), "expected some build failures");
    let clustering = cluster_logs(&logs, &PipelineConfig::default());
    let assigned: usize = clustering.clusters.iter().map(|c| c.members.len()).sum();
    assert_eq!(assigned + clustering.noise.len(), logs.len());
    assert!(
        clustering.purity > 0.6,
        "clustering purity too low: {}",
        clustering.purity
    );
}

#[test]
fn token_ordering_matches_fig4() {
    let results = slice(3, &["qwq-32b-q8_0", "gemini-1.5-flash"], &["nanoXOR"]);
    let qwq = results
        .cell(
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            Technique::NonAgentic,
            "qwq-32b-q8_0",
            "nanoXOR",
        )
        .unwrap()
        .tokens
        .mean()
        .unwrap();
    let gem = results
        .cell(
            TranslationPair::CUDA_TO_OMP_OFFLOAD,
            Technique::NonAgentic,
            "gemini-1.5-flash",
            "nanoXOR",
        )
        .unwrap()
        .tokens
        .mean()
        .unwrap();
    assert!(qwq > gem * 5.0, "qwq {qwq} vs gemini {gem}");
}

#[test]
fn swe_agent_builds_sometimes_but_never_passes() {
    // Paper Fig. 2(c,d): SWE-agent (GPT-4o-mini, CUDA→Kokkos) reaches 0.28
    // build@1 on nanoXOR but pass@1 = 0 everywhere.
    let mut cfg = ExperimentConfig::full(8);
    cfg.pairs = vec![TranslationPair::CUDA_TO_KOKKOS];
    cfg.techniques = vec![Technique::SweAgent];
    cfg.models = all_models()
        .into_iter()
        .filter(|m| m.name == "gpt-4o-mini")
        .collect();
    cfg.apps = vec!["nanoXOR".into()];
    let results = run_experiment(&cfg);
    let cell = results
        .cell(
            TranslationPair::CUDA_TO_KOKKOS,
            Technique::SweAgent,
            "gpt-4o-mini",
            "nanoXOR",
        )
        .unwrap();
    assert!(cell.feasible);
    assert_eq!(cell.passes_overall, 0, "SWE-agent never passes");
}
