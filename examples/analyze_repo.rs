//! Command-line front end for `minihpc-analyze`: point it at a repository
//! (a directory of MiniHPC sources) or at a `minihpc-gen` seed, and it
//! prints every finding with its severity, confidence, and — where the
//! analyzer can prove one safe — a machine-applicable fix-it.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example analyze_repo -- <DIR>         # analyze a directory
//! cargo run --release --example analyze_repo -- --gen <SEED>  # analyze a generated repo
//! cargo run --release --example analyze_repo -- --json ...    # machine-readable output
//! cargo run --release --example analyze_repo -- --no-interprocedural ...
//! ```
//!
//! With no arguments it analyzes a generated `directive-race` repository
//! (seed 0xA11A), so `make examples` exercises the full path end to end.
//! Directory runs exit 1 when any error-severity finding was reported
//! (warnings do not fail the run); generated-seed demo runs always exit 0 —
//! their injected race is the expected output, not a failure.

use minihpc_analyze::{analyze_repo_with, render_findings_with_fixits, AnalyzeOptions};
use minihpc_gen::{ErrorProfile, GenSpec};
use minihpc_lang::repo::{FileKind, SourceRepo};
use std::path::Path;

enum Input {
    Dir(String),
    Gen(u64),
}

struct Cli {
    input: Input,
    json: bool,
    interprocedural: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: analyze_repo [--json] [--no-interprocedural] (<DIR> | --gen <SEED>)\n\
         With no input, analyzes a generated directive-race repo (seed 0xA11A)."
    );
    std::process::exit(2);
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        input: Input::Gen(0xA11A),
        json: false,
        interprocedural: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => cli.json = true,
            "--no-interprocedural" => cli.interprocedural = false,
            "--gen" => {
                let seed = args.next().unwrap_or_else(|| usage());
                let seed = seed
                    .strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16))
                    .unwrap_or_else(|| seed.parse())
                    .unwrap_or_else(|_| usage());
                cli.input = Input::Gen(seed);
            }
            "--help" | "-h" => usage(),
            path if !path.starts_with('-') => cli.input = Input::Dir(path.to_string()),
            _ => usage(),
        }
    }
    cli
}

/// Load every code file under `root` (recursively) into a [`SourceRepo`],
/// keyed by its path relative to `root`.
fn load_dir(root: &Path) -> std::io::Result<SourceRepo> {
    fn walk(root: &Path, dir: &Path, repo: &mut SourceRepo) -> std::io::Result<()> {
        let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let path = entry.path();
            if path.is_dir() {
                walk(root, &path, repo)?;
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("walked path is under root")
                    .to_string_lossy()
                    .replace('\\', "/");
                if FileKind::of(&rel).is_code() {
                    repo.add(rel, std::fs::read_to_string(&path)?);
                }
            }
        }
        Ok(())
    }
    let mut repo = SourceRepo::new();
    walk(root, root, &mut repo)?;
    Ok(repo)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn main() {
    let cli = parse_args();
    let (label, repo) = match &cli.input {
        Input::Dir(path) => {
            let repo = load_dir(Path::new(path)).unwrap_or_else(|e| {
                eprintln!("analyze_repo: cannot read {path}: {e}");
                std::process::exit(2);
            });
            if repo.is_empty() {
                eprintln!("analyze_repo: no code files under {path}");
                std::process::exit(2);
            }
            (path.clone(), repo)
        }
        Input::Gen(seed) => {
            let spec = GenSpec::new(*seed).with_errors(ErrorProfile::DirectiveRace);
            let g = minihpc_gen::generate(&spec);
            (
                format!("generated repo {} (seed {seed:#x})", g.name),
                g.repo,
            )
        }
    };

    let opts = AnalyzeOptions {
        interprocedural: cli.interprocedural,
    };
    let findings = analyze_repo_with(&repo, &opts);
    let errors = findings.iter().filter(|f| f.is_error()).count();

    if cli.json {
        let mut out = String::from("[\n");
        for (i, f) in findings.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "  {{\"rule\": \"{}\", \"severity\": \"{}\", \"confidence\": \"{}\", ",
                    "\"variable\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\""
                ),
                f.rule.id(),
                if f.is_error() { "error" } else { "warning" },
                f.confidence.label(),
                json_escape(&f.variable),
                json_escape(&f.file),
                f.line.map_or("null".to_string(), |l| l.to_string()),
                json_escape(&f.message),
            ));
            if let Some(fx) = &f.fixit {
                out.push_str(&format!(
                    ", \"fixit\": {{\"title\": \"{}\", \"file\": \"{}\", \"line\": {}, \"edit\": \"{}\"}}",
                    json_escape(&fx.title),
                    json_escape(&fx.file),
                    fx.line,
                    json_escape(fx.edit.payload()),
                ));
            }
            out.push('}');
            if i + 1 < findings.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        print!("{out}");
    } else {
        println!("analyzing {label}: {} files", repo.len());
        print!("{}", render_findings_with_fixits(&findings));
        println!(
            "{} findings ({errors} errors, {} fix-its)",
            findings.len(),
            findings.iter().filter(|f| f.fixit.is_some()).count()
        );
    }

    std::process::exit(i32::from(errors > 0 && !matches!(cli.input, Input::Gen(_))));
}
