//! The repair loop: feed categorized build diagnostics back to the backend
//! for bounded repair rounds, and watch build@1/pass@1 climb per round.
//!
//! The paper's harness scores a failed build dead (Fig. 3 exists precisely
//! because those failures are structured and largely mechanical). With
//! [`EvalConfig::repair_budget`] > 0 the [`EvalPipeline`] instead
//! summarizes the failure into a [`pareval_llm::RepairContext`], re-invokes
//! the attempt, and re-evaluates — up to the budget. This example runs the
//! same grid slice at budget 0 and budget 3, prints the per-round report,
//! and tallies which cells a repair budget rescued (and at what token
//! cost — repair tokens count toward E_kappa, Eq. 2).
//!
//! Run with: `cargo run --release --example repair_loop`

use minihpc_lang::model::TranslationPair;
use pareval_core::{report, EvalConfig, ExperimentPlan, Metric, Runner, ScheduledRunner, Scoring};
use pareval_translate::Technique;

fn plan(repair_budget: u32) -> ExperimentPlan {
    ExperimentPlan::builder()
        .samples(6)
        .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
        .techniques([Technique::NonAgentic, Technique::TopDownAgentic])
        .apps(["nanoXOR", "microXORh", "microXOR"])
        .eval(EvalConfig {
            max_cases: 1,
            repair_budget,
            ..EvalConfig::default()
        })
        .build()
}

fn main() {
    let runner = ScheduledRunner::new(4);
    let baseline = runner.run(&plan(0));
    let repaired = runner.run(&plan(3));

    println!("{}", report::repair_report(&repaired));

    println!("cells rescued by a repair budget of 3 (Overall scoring):\n");
    println!(
        "{:<18} {:<16} {:<18} {:>8} {:>8} {:>9}",
        "App", "Model", "Technique", "build@1", "+repair", "tokens x"
    );
    let mut rescued = 0;
    for (key, cell) in &repaired.cells {
        if cell.samples() == 0 {
            continue;
        }
        let before = baseline
            .cell(key.pair, key.technique, key.model, key.app)
            .expect("same grid");
        let b0 = before.rate(Metric::Build, Scoring::Overall, 1);
        let b3 = cell.rate(Metric::Build, Scoring::Overall, 1);
        if b3 <= b0 {
            continue;
        }
        rescued += 1;
        let t0 = before.tokens().mean().unwrap_or(0.0);
        let t3 = cell.tokens().mean().unwrap_or(0.0);
        println!(
            "{:<18} {:<16} {:<18} {b0:>8.2} {:>8.2} {:>8.2}x",
            key.app,
            key.model,
            key.technique.name(),
            b3 - b0,
            if t0 > 0.0 { t3 / t0 } else { 0.0 },
        );
    }
    println!(
        "\n{rescued} cells improved; deepest round used: {}.",
        repaired.max_repair_round()
    );
}
