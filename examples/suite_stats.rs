//! Suite statistics: regenerates paper Table 1 (SLoC, cyclomatic
//! complexity, file counts, available programming models) from the MiniHPC
//! application ports, and lists the sixteen translation tasks.
//!
//! Run with: `cargo run --example suite_stats`

use pareval_core::all_tasks;
use pareval_core::report;

fn main() {
    println!("{}", report::table1());
    println!("Translation tasks (paper Sec. 5.2):");
    for (i, task) in all_tasks().iter().enumerate() {
        println!("  {:>2}. {:<18} {}", i + 1, task.app.name, task.pair);
    }
    println!(
        "\nTotal: {} tasks (6 apps x 2 pairs + 4 apps x 1 pair)",
        all_tasks().len()
    );
}
