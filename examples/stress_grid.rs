//! Thousand-cell generated-grid stress run:
//!
//! 1. expand the suite with ~100 `minihpc-gen` synthetic applications via
//!    `pareval_apps::suite_with_generated` (Clean error profile, OpenMP
//!    threads pragma model, Make build system — the grid-registrable
//!    subset of the generator's knob space),
//! 2. run the resulting ≥1000-cell threads→offload grid through
//!    [`ScheduledRunner`] at 1, 4, and 8 workers, each run in streaming
//!    aggregation mode with a journal and a disk-backed build cache,
//! 3. assert the three runs' results are byte-identical, that no raw
//!    records were retained, and that peak in-flight records stayed
//!    bounded by the worker count,
//! 4. drop `BENCH_gen.json` (path override: `PAREVAL_BENCH_JSON`).
//!
//! Run with: `cargo run --release --example stress_grid`
//! (`make gen-smoke` gates on this example's final line.)

use minihpc_gen::{GenSpec, KernelKind};
use minihpc_lang::model::TranslationPair;
use pareval_core::{
    EvalConfig, EvalPipeline, ExperimentPlan, ExperimentResults, JournalSink, ProgressSink, Runner,
    SampleRecord, ScheduledRunner,
};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// How many synthetic applications to register. 100 apps × 1 pair ×
/// 3 techniques × 5 models = 1500 cells.
const GENERATED_APPS: u64 = 100;

/// The grid-registrable corner of the generator's knob space: every spec
/// here must build and run clean (the registry derives ground-truth output
/// from the repo), so error profiles stay `Clean`; file counts and kernel
/// mixes rotate with the seed for cost heterogeneity.
fn stress_specs() -> Vec<GenSpec> {
    (0..GENERATED_APPS)
        .map(|i| {
            let spec = GenSpec::new(0xC0DE_0000 + i).with_files(1 + (i as usize % 4));
            match i % 3 {
                0 => spec, // kernel kinds drawn from the seed
                1 => spec.with_kernels([KernelKind::Stencil, KernelKind::Reduction]),
                _ => spec.with_kernels([KernelKind::GemmLike, KernelKind::MemcpyBound]),
            }
        })
        .collect()
}

fn stress_plan(specs: &[GenSpec], disk_cache: &Path) -> ExperimentPlan {
    let generated = pareval_apps::suite_with_generated(specs)
        .into_iter()
        .filter(|app| app.gen_digest.is_some());
    ExperimentPlan::builder()
        .samples(1)
        .pairs([TranslationPair::OMP_THREADS_TO_OFFLOAD])
        .apps(["XSBench"])
        .extend_apps(generated)
        .eval(EvalConfig {
            max_cases: 1,
            disk_cache_dir: Some(disk_cache.to_path_buf()),
            ..EvalConfig::default()
        })
        .streaming(true)
        .build()
}

/// Forwards to the journal while tracking how many records are in flight
/// (alive between creation and the end of their `on_sample` delivery) —
/// the streaming-mode guarantee under test is that this peak is bounded by
/// the worker count, not the 1500-sample grid.
struct GaugeSink<'a> {
    inner: &'a dyn ProgressSink,
    in_flight: AtomicU64,
    peak: AtomicU64,
}

impl<'a> GaugeSink<'a> {
    fn new(inner: &'a dyn ProgressSink) -> Self {
        GaugeSink {
            inner,
            in_flight: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

impl ProgressSink for GaugeSink<'_> {
    fn on_sample(&self, record: &SampleRecord) {
        let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak.fetch_max(now, Ordering::SeqCst);
        self.inner.on_sample(record);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

struct RunOutcome {
    results: ExperimentResults,
    peak_in_flight: u64,
    hit_rate: f64,
    secs: f64,
}

fn run_once(specs: &[GenSpec], workers: usize, scratch: &Path) -> RunOutcome {
    let disk_cache = scratch.join(format!("cache-{workers}"));
    let journal = scratch.join(format!("run-{workers}.journal"));
    let plan = stress_plan(specs, &disk_cache);
    let pipeline = EvalPipeline::new(plan.eval().clone());
    let sink = JournalSink::create(&journal, &plan).expect("create journal");
    let gauge = GaugeSink::new(&sink);
    let start = Instant::now();
    let results = ScheduledRunner::new(workers).run_with(&plan, &pipeline, &gauge);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(
        sink.records_written() as usize,
        plan.total_samples(),
        "journal missed samples"
    );
    let stats = pipeline.cache_stats();
    let lookups = stats.hits + stats.misses;
    RunOutcome {
        results,
        peak_in_flight: gauge.peak(),
        hit_rate: if lookups == 0 {
            0.0
        } else {
            stats.hits as f64 / lookups as f64
        },
        secs,
    }
}

fn main() {
    let scratch = std::env::temp_dir().join(format!("pareval-stress-grid-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    let specs = stress_specs();
    let plan = stress_plan(&specs, &scratch.join("probe"));
    let cells = plan.cells().len();
    let samples = plan.total_samples();
    println!("grid: {cells} cells, {samples} samples, streaming aggregation on");
    assert!(
        cells >= 1000,
        "stress grid must span >=1000 cells, got {cells}"
    );

    let worker_counts = [1usize, 4, 8];
    let mut outcomes = Vec::new();
    for &workers in &worker_counts {
        let outcome = run_once(&specs, workers, &scratch);
        println!(
            "workers={workers}: {:.1} cells/s, peak in-flight records {}, disk-cache hit rate {:.3}",
            cells as f64 / outcome.secs,
            outcome.peak_in_flight,
            outcome.hit_rate,
        );
        assert!(
            outcome.peak_in_flight <= workers as u64,
            "streaming retained {} records at once with {workers} workers",
            outcome.peak_in_flight
        );
        outcomes.push((workers, outcome));
    }

    // Determinism: work-stealing order and worker count must not leak into
    // the aggregated results.
    let (_, baseline) = &outcomes[0];
    for (workers, outcome) in &outcomes[1..] {
        assert_eq!(
            baseline.results, outcome.results,
            "results diverged at {workers} workers"
        );
        assert_eq!(
            format!("{:?}", baseline.results),
            format!("{:?}", outcome.results),
            "debug rendering diverged at {workers} workers"
        );
    }

    // Streaming kept sufficient statistics only: every feasible cell
    // answers rate queries but retains zero raw records.
    let sample_cell = baseline
        .results
        .cells
        .values()
        .find(|c| c.feasible())
        .expect("no feasible cell");
    assert!(sample_cell.records().is_empty());
    let retained: usize = baseline
        .results
        .cells
        .values()
        .map(|c| c.records().len())
        .sum();
    assert_eq!(retained, 0, "streaming run retained raw records");

    let fastest = outcomes
        .iter()
        .map(|(_, o)| o.secs)
        .fold(f64::INFINITY, f64::min);
    let (_, eight) = outcomes.last().expect("outcomes");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"gen\",\n",
            "  \"cells\": {cells},\n",
            "  \"samples\": {samples},\n",
            "  \"cells_per_sec\": {cps:.2},\n",
            "  \"peak_retained_records\": {peak},\n",
            "  \"cache_hit_rate\": {hit:.4}\n",
            "}}\n",
        ),
        cells = cells,
        samples = samples,
        cps = cells as f64 / fastest,
        peak = eight.peak_in_flight,
        hit = eight.hit_rate,
    );
    let path = std::env::var("PAREVAL_BENCH_JSON").unwrap_or_else(|_| "BENCH_gen.json".to_string());
    std::fs::write(&path, json).expect("write BENCH_gen.json");
    println!("wrote {path}");

    let _ = std::fs::remove_dir_all(&scratch);

    println!(
        "gen-smoke: {cells} cells byte-identical across workers {:?}; peak retained records {}",
        worker_counts, eight.peak_in_flight
    );
}
