//! Analyzer-guided repair vs blind repair, benchmarked on two grids:
//!
//! 1. **Simulated injected-race grid** — o4-mini with `race_rate` 1.0 on
//!    the XSBench threads→offload cell: every translation drops a
//!    `reduction` clause. Blind repair rolls the model's per-category fix
//!    probability each round; guided repair hands the backend the
//!    analyzer's high-confidence fix-its, which it applies
//!    deterministically. Guided must end every sample race-free and must
//!    not spend more repair rounds than blind.
//! 2. **Oracle grid over generated racy repos** — `minihpc-gen`
//!    `DirectiveRace` specs registered as applications. The oracle
//!    transpiles the racy source faithfully, so blind repair (re-emitting
//!    the reference) can never cure the race: race_free@1 stays 0.0. With
//!    fix-its the same backend repairs every sample in one round — the
//!    cleanest possible contrast between regeneration and guided editing.
//!
//! Drops `BENCH_analyze_v2.json` (path override: `PAREVAL_BENCH_JSON`).
//!
//! Run with: `cargo run --release --example guided_repair`
//! (`make analyze-smoke` gates on this example's final line.)

use minihpc_gen::{ErrorProfile, GenSpec};
use minihpc_lang::model::TranslationPair;
use pareval_core::{EvalConfig, ExperimentPlan, ExperimentResults, Runner, ScheduledRunner};
use pareval_llm::{all_models, OracleBackend};
use pareval_translate::Technique;
use std::sync::Arc;

/// Generated directive-race applications for the oracle grid.
const RACY_APPS: u64 = 6;

fn racy_specs() -> Vec<GenSpec> {
    (0..RACY_APPS)
        .map(|i| {
            GenSpec::new(0xD1CE_0000 + i)
                .with_files(1 + (i as usize % 3))
                .with_errors(ErrorProfile::DirectiveRace)
        })
        .collect()
}

fn repair_eval(guided: bool) -> EvalConfig {
    EvalConfig {
        max_cases: 1,
        analyze: true,
        repair_budget: 3,
        repair_guided: guided,
        ..EvalConfig::default()
    }
}

fn sim_plan(guided: bool) -> ExperimentPlan {
    ExperimentPlan::builder()
        .samples(8)
        .pairs([TranslationPair::OMP_THREADS_TO_OFFLOAD])
        .techniques([Technique::NonAgentic])
        .models(
            all_models()
                .into_iter()
                .filter(|m| m.name == "o4-mini")
                .map(|m| m.with_race_rate(1.0)),
        )
        .apps(["XSBench"])
        .eval(repair_eval(guided))
        .build()
}

fn oracle_plan(guided: bool) -> ExperimentPlan {
    ExperimentPlan::builder()
        .samples(1)
        .pairs([TranslationPair::OMP_THREADS_TO_OFFLOAD])
        .techniques([Technique::NonAgentic])
        .models(all_models().into_iter().filter(|m| m.name == "gpt-4o-mini"))
        // No built-in app matches this filter: the grid is exactly the
        // generated racy apps registered below.
        .apps(["generated-only"])
        .extend_apps(racy_specs().iter().map(pareval_apps::generated_app))
        .backend(Arc::new(OracleBackend))
        .eval(repair_eval(guided))
        .build()
}

/// Per-run repair summary: how many samples ended race-free, out of how
/// many, and the mean final repair round of the race-free ones (0 = never
/// needed repair).
struct RepairSummary {
    samples: u64,
    race_free: u64,
    mean_rounds: Option<f64>,
}

impl RepairSummary {
    fn of(results: &ExperimentResults) -> RepairSummary {
        let mut samples = 0u64;
        let mut race_free = 0u64;
        let mut final_rounds = Vec::new();
        for cell in results.cells.values() {
            for record in cell.records() {
                let r = &record.result;
                samples += 1;
                if r.race_free() {
                    race_free += 1;
                    final_rounds.push(r.rounds.last().map_or(0, |round| round.round));
                }
            }
        }
        RepairSummary {
            samples,
            race_free,
            mean_rounds: pareval_metrics::mean_rounds_to_success(&final_rounds),
        }
    }

    fn race_free_rate(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.race_free as f64 / self.samples as f64
        }
    }
}

fn run(plan: &ExperimentPlan) -> RepairSummary {
    RepairSummary::of(&ScheduledRunner::new(4).run(plan))
}

fn fmt_rounds(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{v:.4}"),
        None => "null".to_string(),
    }
}

fn main() {
    // --- Grid 1: simulated injected races, blind vs guided. -------------
    let sim_blind = run(&sim_plan(false));
    let sim_guided = run(&sim_plan(true));
    println!(
        "simulated grid: blind {}/{} race-free (mean rounds {}), guided {}/{} (mean rounds {})",
        sim_blind.race_free,
        sim_blind.samples,
        fmt_rounds(sim_blind.mean_rounds),
        sim_guided.race_free,
        sim_guided.samples,
        fmt_rounds(sim_guided.mean_rounds),
    );
    assert!(sim_blind.samples > 0, "simulated grid produced no samples");
    assert_eq!(
        sim_guided.race_free, sim_guided.samples,
        "guided repair left a simulated sample racy"
    );
    let sim_guided_rounds = sim_guided.mean_rounds.expect("guided repaired samples");
    if let Some(blind_rounds) = sim_blind.mean_rounds {
        assert!(
            sim_guided_rounds <= blind_rounds + 1e-9,
            "guided spent more rounds ({sim_guided_rounds:.2}) than blind ({blind_rounds:.2})"
        );
    }
    assert!(
        sim_guided.race_free_rate() >= sim_blind.race_free_rate(),
        "guided repaired fewer samples than blind"
    );

    // --- Grid 2: oracle over generated racy repos, blind vs guided. -----
    let oracle_blind = run(&oracle_plan(false));
    let oracle_guided = run(&oracle_plan(true));
    println!(
        "oracle grid: blind {}/{} race-free, guided {}/{} (mean rounds {})",
        oracle_blind.race_free,
        oracle_blind.samples,
        oracle_guided.race_free,
        oracle_guided.samples,
        fmt_rounds(oracle_guided.mean_rounds),
    );
    assert_eq!(
        oracle_blind.samples, RACY_APPS,
        "oracle grid lost generated apps"
    );
    assert_eq!(
        oracle_blind.race_free, 0,
        "blind oracle repair cured a source-level race it cannot see"
    );
    assert_eq!(
        oracle_guided.race_free, oracle_guided.samples,
        "guided repair left an oracle sample racy"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"analyze_v2\",\n",
            "  \"sim_samples\": {ss},\n",
            "  \"sim_blind_race_free\": {sbr:.4},\n",
            "  \"sim_guided_race_free\": {sgr:.4},\n",
            "  \"sim_blind_mean_rounds\": {sbm},\n",
            "  \"sim_guided_mean_rounds\": {sgm},\n",
            "  \"oracle_samples\": {os},\n",
            "  \"oracle_blind_race_free\": {obr:.4},\n",
            "  \"oracle_guided_race_free\": {ogr:.4},\n",
            "  \"oracle_guided_mean_rounds\": {ogm}\n",
            "}}\n",
        ),
        ss = sim_blind.samples,
        sbr = sim_blind.race_free_rate(),
        sgr = sim_guided.race_free_rate(),
        sbm = fmt_rounds(sim_blind.mean_rounds),
        sgm = fmt_rounds(sim_guided.mean_rounds),
        os = oracle_blind.samples,
        obr = oracle_blind.race_free_rate(),
        ogr = oracle_guided.race_free_rate(),
        ogm = fmt_rounds(oracle_guided.mean_rounds),
    );
    let path =
        std::env::var("PAREVAL_BENCH_JSON").unwrap_or_else(|_| "BENCH_analyze_v2.json".to_string());
    std::fs::write(&path, json).expect("write BENCH_analyze_v2.json");
    println!("wrote {path}");

    println!(
        "guided-repair-smoke: guided race-free {:.2}/{:.2} (sim/oracle), blind oracle 0.00; \
         guided rounds {} <= blind {}",
        sim_guided.race_free_rate(),
        oracle_guided.race_free_rate(),
        fmt_rounds(sim_guided.mean_rounds),
        fmt_rounds(sim_blind.mean_rounds),
    );
}
