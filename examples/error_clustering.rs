//! Error-clustering walkthrough (paper Sec. 6.3 / Fig. 3): run a slice of
//! the benchmark, collect the failed-build logs, embed them with the
//! from-scratch word2vec, cluster with DBSCAN, and compare the recovered
//! categories against the toolchain's ground truth.
//!
//! Run with: `cargo run --release --example error_clustering`

use pareval_core::{report, ExperimentPlan, Runner, ScheduledRunner};
use pareval_errclust::{category_counts, cluster_logs, PipelineConfig};

fn main() {
    let samples = 6;
    let plan = ExperimentPlan::builder()
        .samples(samples)
        .pairs([minihpc_lang::model::TranslationPair::CUDA_TO_OMP_OFFLOAD])
        .apps(["nanoXOR", "microXORh", "microXOR"])
        .build();
    println!("Running a benchmark slice ({samples} samples per cell)...");
    let results = ScheduledRunner::auto().run(&plan);

    let tagged = results.error_logs_with_models();
    println!("Collected {} failed-build logs.\n", tagged.len());
    let logs: Vec<_> = tagged.into_iter().map(|(_, l)| l).collect();
    if logs.is_empty() {
        println!("No build failures in this slice — enlarge the experiment.");
        return;
    }

    let clustering = cluster_logs(&logs, &PipelineConfig::default());
    println!(
        "DBSCAN produced {} labelled clusters (+{} noise) with purity {:.2}",
        clustering.clusters.len(),
        clustering.noise.len(),
        clustering.purity
    );
    for cluster in &clustering.clusters {
        println!(
            "  {:<34} {:>4} logs",
            cluster.label.label(),
            cluster.members.len()
        );
    }

    println!("\nPer-category counts recovered by the pipeline:");
    for (category, count) in category_counts(&clustering) {
        println!("  {:<34} {count}", category.label());
    }

    println!("\nGround-truth counts (toolchain categories) for comparison:");
    println!("{}", report::fig3(&results));
}
