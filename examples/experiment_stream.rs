//! Streaming experiment walkthrough for the layered Plan → Runner →
//! Collector API:
//!
//! 1. build an [`ExperimentPlan`] with the builder,
//! 2. run it on a [`ScheduledRunner`] with a custom [`ProgressSink`] that
//!    streams per-sample verdicts as workers complete them,
//! 3. query the retained raw records for pass@k at k = 1 and k = 5 — a
//!    question the old aggregate-counts API could not answer.
//!
//! Run with: `cargo run --release --example experiment_stream`

use minihpc_lang::model::TranslationPair;
use pareval_core::{
    ExperimentPlan, Metric, ProgressSink, Runner, SampleRecord, ScheduledRunner, Scoring,
};
use pareval_llm::all_models;
use pareval_translate::Technique;
use std::sync::atomic::{AtomicU64, Ordering};

/// Streams one line per completed sample. Completion order is whatever the
/// workers produce — only the final results are deterministic.
struct StreamSink {
    done: AtomicU64,
    total: u64,
}

impl ProgressSink for StreamSink {
    fn on_sample(&self, record: &SampleRecord) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let verdict = match record.result.code_only.as_ref() {
            Some(o) if o.passed => "pass",
            Some(o) if o.built => "built, wrong output",
            Some(_) => "build error",
            None => "not run",
        };
        println!(
            "[{done:>3}/{}] {:<18} {:<16} sample {} -> {verdict}",
            self.total, record.key.app, record.key.model, record.sample_index,
        );
    }
}

fn main() {
    let samples = 5;
    let plan = ExperimentPlan::builder()
        .samples(samples)
        .seed(42)
        .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
        .techniques([Technique::NonAgentic])
        .models(
            all_models()
                .into_iter()
                .filter(|m| m.name == "o4-mini" || m.name == "gpt-4o-mini"),
        )
        .apps(["nanoXOR", "microXORh", "microXOR"])
        .build();
    println!(
        "Plan: {} cells ({} feasible), {} samples total\n",
        plan.cells().len(),
        plan.cells().iter().filter(|c| c.feasible).count(),
        plan.total_samples(),
    );

    let sink = StreamSink {
        done: AtomicU64::new(0),
        total: plan.total_samples() as u64,
    };
    let runner = ScheduledRunner::new(4);
    let results = runner.run_with_sink(&plan, &sink);

    println!("\npass@k from the retained records (code-only scoring):");
    println!(
        "{:<18} {:<14} {:>7} {:>8} {:>8}",
        "App", "Model", "c/n", "pass@1", "pass@5"
    );
    for (key, cell) in &results.cells {
        if cell.samples() == 0 {
            continue;
        }
        println!(
            "{:<18} {:<14} {:>4}/{} {:>8.2} {:>8.2}",
            key.app,
            key.model,
            cell.successes(Metric::Pass, Scoring::CodeOnly),
            cell.samples(),
            cell.pass_at_k(Scoring::CodeOnly, 1),
            cell.pass_at_k(Scoring::CodeOnly, 5),
        );
    }
    println!(
        "\npass@5 >= pass@1 everywhere: with the raw records retained, any k \
         up to n is one query away — no rerun needed."
    );
}
