//! The static analyzer gate, end to end:
//!
//! 1. run the oracle grid with the analyzer on — the ground-truth
//!    translations must come back race-clean (zero error findings),
//! 2. run an injected-race grid (o4-mini with `race_rate` 1.0 on the
//!    XSBench threads→offload cell, whose translations carry a
//!    `reduction` clause that the injector deletes) — the analyzer must
//!    flag every sample,
//! 3. print the per-model race report and drop `BENCH_analyze.json`
//!    (path override: `PAREVAL_BENCH_JSON`).
//!
//! Run with: `cargo run --release --example analyze_grid`
//! (`make analyze-smoke` gates on this example's final line.)

use minihpc_lang::model::TranslationPair;
use pareval_core::{report, EvalConfig, ExperimentPlan, Runner, ScheduledRunner};
use pareval_llm::{all_models, OracleBackend};
use pareval_translate::Technique;
use std::sync::Arc;

fn analyze_eval() -> EvalConfig {
    EvalConfig {
        max_cases: 1,
        analyze: true,
        ..EvalConfig::default()
    }
}

fn main() {
    // --- Oracle grid: the analyzer must not cry wolf. -------------------
    let oracle_plan = ExperimentPlan::builder()
        .samples(1)
        .backend(Arc::new(OracleBackend))
        .eval(analyze_eval())
        .build();
    let oracle = ScheduledRunner::new(4).run(&oracle_plan);
    let mut oracle_built = 0u64;
    let mut oracle_errors = 0u64;
    for cell in oracle.cells.values() {
        for record in cell.records() {
            let r = &record.result;
            if r.overall.as_ref().is_some_and(|o| o.built) {
                oracle_built += 1;
                oracle_errors += r.analysis.iter().filter(|f| f.is_error()).count() as u64;
            }
        }
    }
    println!("oracle grid: {oracle_built} built samples, {oracle_errors} error findings");
    assert!(oracle_built > 0, "oracle grid built nothing");
    assert_eq!(oracle_errors, 0, "oracle translations flagged racy");

    // --- Injected-race grid: the analyzer must flag every sample. -------
    let injected_plan = ExperimentPlan::builder()
        .samples(4)
        .pairs([TranslationPair::OMP_THREADS_TO_OFFLOAD])
        .techniques([Technique::NonAgentic])
        .models(
            all_models()
                .into_iter()
                .filter(|m| m.name == "o4-mini")
                .map(|m| m.with_race_rate(1.0)),
        )
        .apps(["XSBench"])
        .eval(analyze_eval())
        .build();
    let injected = ScheduledRunner::new(4).run(&injected_plan);
    let mut injected_samples = 0u64;
    let mut injected_flagged = 0u64;
    let mut race_free_at_1 = 0.0f64;
    for cell in injected.cells.values() {
        for record in cell.records() {
            let r = &record.result;
            injected_samples += 1;
            if r.analysis.iter().any(|f| f.is_error()) {
                injected_flagged += 1;
            }
        }
        race_free_at_1 = cell.race_free_at_k(1);
    }
    println!("injected grid: {injected_flagged}/{injected_samples} samples flagged");
    assert!(injected_samples > 0, "injected grid produced no samples");
    assert_eq!(
        injected_flagged, injected_samples,
        "analyzer missed an injected race"
    );

    println!("{}", report::race_report(&injected));

    let raw_reduction = injected
        .race_finding_counts()
        .into_iter()
        .filter(|((_, rule), _)| *rule == pareval_core::AnalysisRule::RawReduction)
        .map(|(_, n)| n)
        .sum::<usize>();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"analyze\",\n",
            "  \"oracle_built\": {ob},\n",
            "  \"oracle_error_findings\": {oe},\n",
            "  \"injected_samples\": {is},\n",
            "  \"injected_flagged\": {if_},\n",
            "  \"raw_reduction_findings\": {rr},\n",
            "  \"race_free_at_1_injected\": {rf:.4}\n",
            "}}\n",
        ),
        ob = oracle_built,
        oe = oracle_errors,
        is = injected_samples,
        if_ = injected_flagged,
        rr = raw_reduction,
        rf = race_free_at_1,
    );
    let path =
        std::env::var("PAREVAL_BENCH_JSON").unwrap_or_else(|_| "BENCH_analyze.json".to_string());
    std::fs::write(&path, json).expect("write BENCH_analyze.json");
    println!("wrote {path}");

    println!(
        "analyze-smoke: oracle grid race-clean; all {injected_flagged} injected races flagged"
    );
}
