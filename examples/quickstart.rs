//! Quickstart: the paper's Listings 2–4 in action.
//!
//! Takes the original nanoXOR CUDA kernel, produces a correct OpenMP-offload
//! translation with the oracle transpiler, then reproduces the paper's
//! *incorrect* agentic translation (Listing 4: missing `target`) and shows
//! how the harness tells them apart.
//!
//! Run with: `cargo run --example quickstart`

use minihpc_build::{build_repo, BuildRequest};
use minihpc_lang::model::{ExecutionModel, TranslationPair};
use minihpc_runtime::{run, RunConfig};
use pareval_llm::inject::{inject_functional_error, FunctionalError};
use pareval_translate::transpile_repo;

fn main() {
    let app = pareval_apps::by_name("nanoXOR").expect("nanoXOR is in the suite");
    let cuda = app.repo(ExecutionModel::Cuda).unwrap();

    println!("=== Original CUDA kernel (paper Listing 2) ===");
    let main_cu = cuda.get("src/main.cu").unwrap();
    print_kernel(main_cu, "__global__ void cellsXOR");

    // Correct translation (paper Listing 3).
    let translated = transpile_repo(cuda, TranslationPair::CUDA_TO_OMP_OFFLOAD, &app.binary);
    println!("\n=== Correct OpenMP offload translation (paper Listing 3) ===");
    let main_cpp = translated.get("src/main.cpp").unwrap();
    print_kernel(main_cpp, "void cellsXOR");

    // Incorrect translation (paper Listing 4): missing `target`.
    let mut broken = translated.clone();
    let listing4 = inject_functional_error(main_cpp, FunctionalError::DropTargetConstruct)
        .expect("the offload pragma is present");
    broken.add("src/main.cpp", listing4.clone());
    println!("\n=== Incorrect translation (paper Listing 4: no `target`) ===");
    print_kernel(&listing4, "void cellsXOR");

    // Evaluate both through the harness.
    let case = &app.tests[0];
    let expected = app.expected_output(case);
    for (label, repo) in [("correct", &translated), ("listing-4", &broken)] {
        let outcome = build_repo(repo, &BuildRequest::new(&*app.binary));
        let exe = outcome.executable.expect("both versions compile");
        let r = run(&exe, RunConfig::with_args(case.args.iter().cloned()));
        let output_ok = r.stdout == expected && r.error.is_none();
        let on_gpu = r.telemetry.ran_on_device();
        println!(
            "\n[{label}] builds: yes | output correct: {output_ok} | executed on GPU: {on_gpu} \
             => verdict: {}",
            if output_ok && on_gpu { "PASS" } else { "FAIL" }
        );
    }
    println!(
        "\nThe Listing-4 translation produces the right numbers but never touches the \
         device — exactly why the paper requires execution on the specified hardware."
    );
}

fn print_kernel(text: &str, marker: &str) {
    let Some(start) = text.find(marker) else {
        return;
    };
    let mut depth = 0i32;
    let mut shown = String::new();
    for line in text[start..].lines() {
        shown.push_str(line);
        shown.push('\n');
        depth += line.matches('{').count() as i32;
        depth -= line.matches('}').count() as i32;
        if depth == 0 && line.contains('}') {
            break;
        }
    }
    print!("{shown}");
}
