//! Repository-scale translation walkthrough: XSBench (the largest
//! conventional app in the suite, 9 files) translated from OpenMP threads to
//! OpenMP offload with the oracle transpiler, validated against the
//! developer test cases — including the GPU-execution telemetry check.
//!
//! Run with: `cargo run --example translate_xsbench`

use minihpc_build::{build_repo, BuildRequest};
use minihpc_lang::model::{ExecutionModel, TranslationPair};
use minihpc_runtime::{run, RunConfig};
use pareval_translate::transpile_repo;

fn main() {
    let app = pareval_apps::by_name("XSBench").unwrap();
    let source = app.repo(ExecutionModel::OmpThreads).unwrap();
    println!("Source repository ({} files):", source.len());
    print!("{}", source.file_tree());

    let pair = TranslationPair::OMP_THREADS_TO_OFFLOAD;
    let translated = transpile_repo(source, pair, &app.binary);
    println!("\nTranslated to {} — new Makefile:", pair.to);
    println!("{}", translated.get("Makefile").unwrap());

    let sim = translated.get("src/sim_driver.cpp").unwrap();
    let pragma = sim
        .lines()
        .find(|l| l.contains("#pragma omp"))
        .unwrap_or("");
    println!("Upgraded directive:\n  {}\n", pragma.trim());

    let outcome = build_repo(&translated, &BuildRequest::new(&*app.binary));
    assert!(outcome.succeeded(), "build failed:\n{}", outcome.log.text());
    let exe = outcome.executable.unwrap();

    for case in &app.tests {
        let expected = app.expected_output(case);
        let r = run(&exe, RunConfig::with_args(case.args.iter().cloned()));
        let ok = r.error.is_none() && r.stdout == expected && r.telemetry.ran_on_device();
        println!(
            "test {:?}: {} (device regions: {}, max parallelism: {})",
            case.args,
            if ok { "PASS" } else { "FAIL" },
            r.telemetry.device_regions,
            r.telemetry.max_device_parallelism,
        );
    }
}
