//! Durable grid runs end to end: journal a run, crash it partway through,
//! resume from the journal, and verify the resumed results are
//! byte-identical to an uninterrupted run.
//!
//! 1. attach a [`JournalSink`] so every completed sample hits disk as it
//!    finishes (with a disk-backed build cache sharing builds across the
//!    crash boundary),
//! 2. inject a crash — a backend wrapper that panics partway stands in for
//!    a ctrl-c / OOM / power cut,
//! 3. [`Runner::resume`] skips everything the journal already holds, runs
//!    only the remainder, and replays the journal into the collector.
//!
//! Run with: `cargo run --release --example resume_run`
//! (`make resume-smoke` gates on this example's final diff line.)

use minihpc_lang::model::TranslationPair;
use pareval_core::{
    journal, report, CountingSink, EvalConfig, EvalPipeline, ExperimentPlan, JournalSink, Runner,
    ScheduledRunner, SerialRunner,
};
use pareval_llm::{Attempt, AttemptSpec, SimulatedBackend, TranslationBackend};
use pareval_translate::Technique;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Panics when the `allowed`-th attempt starts — the stand-in for any
/// mid-run failure. `name`/`cell_feasible` delegate to the real backend,
/// so the journal written under this wrapper fingerprints identically to
/// the clean plan we resume with.
struct CrashInjector {
    inner: SimulatedBackend,
    allowed: u64,
    started: AtomicU64,
}

impl TranslationBackend for CrashInjector {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn start_attempt(&self, spec: &AttemptSpec<'_>) -> Box<dyn Attempt> {
        if self.started.fetch_add(1, Ordering::SeqCst) >= self.allowed {
            panic!("simulated power cut");
        }
        self.inner.start_attempt(spec)
    }

    fn cell_feasible(
        &self,
        pair: TranslationPair,
        technique: Technique,
        model: &str,
        app: &str,
    ) -> bool {
        self.inner.cell_feasible(pair, technique, model, app)
    }
}

fn plan_with(backend: Arc<dyn TranslationBackend>, cache_dir: &std::path::Path) -> ExperimentPlan {
    ExperimentPlan::builder()
        .samples(3)
        .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
        .techniques([Technique::NonAgentic, Technique::TopDownAgentic])
        .apps(["nanoXOR", "microXORh", "microXOR"])
        .eval(EvalConfig {
            max_cases: 1,
            disk_cache_dir: Some(cache_dir.to_path_buf()),
            ..EvalConfig::default()
        })
        .backend(backend)
        .build()
}

fn main() {
    let scratch = std::env::temp_dir().join(format!("pareval-resume-run-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let journal_path = scratch.join("grid.journal");
    let cache_dir = scratch.join("build-cache");

    // --- Run 1: journaled, crashes after 11 completed samples. ----------
    let crashing = plan_with(
        Arc::new(CrashInjector {
            inner: SimulatedBackend,
            allowed: 11,
            started: AtomicU64::new(0),
        }),
        &cache_dir,
    );
    let total = crashing.total_samples();
    println!(
        "grid: {total} samples, journaling to {}",
        journal_path.display()
    );

    let sink = JournalSink::create(&journal_path, &crashing).expect("create journal");
    let pipeline = EvalPipeline::new(crashing.eval().clone());
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // keep the injected crash quiet
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        ScheduledRunner::new(4).run_with(&crashing, &pipeline, &sink);
    }))
    .is_err();
    std::panic::set_hook(hook);
    drop(sink);
    assert!(crashed, "the injected crash should have fired");

    // --- Resume: skip the journaled prefix, run only the remainder. -----
    let plan = plan_with(Arc::new(SimulatedBackend), &cache_dir);
    let replay = journal::scan(&journal_path, &plan).expect("scan journal");
    println!(
        "crashed mid-run; journal recovered {} completed samples",
        replay.completed.len()
    );

    let sink = JournalSink::append(&journal_path, &plan).expect("reopen journal");
    let pipeline = EvalPipeline::new(plan.eval().clone());
    let counting = CountingSink::new();
    struct Both<'a>(&'a JournalSink, &'a CountingSink);
    impl pareval_core::ProgressSink for Both<'_> {
        fn on_sample(&self, record: &pareval_core::SampleRecord) {
            self.0.on_sample(record);
            self.1.on_sample(record);
        }
    }
    let resumed = ScheduledRunner::new(4)
        .resume(&plan, &journal_path, &pipeline, &Both(&sink, &counting))
        .expect("resume");
    drop(sink);
    let stats = pipeline.cache_stats();
    println!(
        "resumed: {} fresh samples, {} replayed ({} disk-cache hits carried across the crash)",
        counting.completed(),
        replay.completed.len(),
        stats.disk_hits,
    );

    // --- Proof: byte-identical to a run that never crashed. -------------
    let uninterrupted = SerialRunner.run(&plan);
    let resumed_report = report::table2(&resumed);
    let serial_report = report::table2(&uninterrupted);
    assert_eq!(uninterrupted, resumed, "resume diverged from serial");
    assert_eq!(serial_report, resumed_report);
    println!(
        "resume-smoke: report bytes identical ({} replayed + {} fresh = {} samples)",
        replay.completed.len(),
        counting.completed(),
        total,
    );

    let _ = std::fs::remove_dir_all(&scratch);
}
