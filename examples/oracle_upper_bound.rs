//! The oracle upper bound: what would a *perfect* translator score on this
//! harness?
//!
//! The paper can only measure real models; the harness can do better. This
//! example runs the same grid slice twice — once on the default
//! [`SimulatedBackend`] (paper-calibrated pass rates) and once on
//! [`OracleBackend`] (always-correct translations) — and prints the
//! headroom between them per cell. It also shows the [`EvalPipeline`]
//! build cache at work: oracle output is sample-independent, so after the
//! first sample of each cell every build + test evaluation is a cache hit.
//!
//! Run with: `cargo run --release --example oracle_upper_bound`

use minihpc_lang::model::TranslationPair;
use pareval_core::{
    EvalPipeline, ExperimentPlan, ExperimentPlanBuilder, NullSink, Runner, ScheduledRunner, Scoring,
};
use pareval_llm::{all_models, OracleBackend};
use std::sync::Arc;

fn slice() -> ExperimentPlanBuilder {
    ExperimentPlan::builder()
        .samples(3)
        .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
        .models(
            all_models()
                .into_iter()
                .filter(|m| m.name == "o4-mini" || m.name == "gemini-1.5-flash"),
        )
        .apps(["nanoXOR", "microXORh", "microXOR"])
}

fn main() {
    let runner = ScheduledRunner::new(4);
    let simulated = runner.run(&slice().build());

    // Same grid, oracle backend; keep the pipeline to read cache stats.
    let oracle_plan = slice().backend(Arc::new(OracleBackend)).build();
    let pipeline = EvalPipeline::new(oracle_plan.eval().clone());
    let oracle = runner.run_with(&oracle_plan, &pipeline, &NullSink);

    println!("pass@1, code-only: simulated vs oracle upper bound\n");
    println!(
        "{:<18} {:<16} {:<18} {:>9} {:>7} {:>9}",
        "App", "Model", "Technique", "simulated", "oracle", "headroom"
    );
    for (key, cell) in &oracle.cells {
        if cell.samples() == 0 {
            continue;
        }
        let upper = cell.pass_at_k(Scoring::CodeOnly, 1);
        let sim = simulated
            .cell(key.pair, key.technique, key.model, key.app)
            .filter(|c| c.samples() > 0)
            .map(|c| c.pass_at_k(Scoring::CodeOnly, 1));
        let sim_text = sim.map_or_else(|| "  not run".into(), |p| format!("{p:>9.2}"));
        println!(
            "{:<18} {:<16} {:<18} {sim_text} {upper:>7.2} {:>9.2}",
            key.app,
            key.model,
            key.technique.name(),
            upper - sim.unwrap_or(0.0),
        );
    }

    let stats = pipeline.cache_stats();
    println!(
        "\nbuild cache: {} hits / {} misses ({:.0}% served from cache) — \
         oracle repos repeat, so only the first sample of a cell builds.",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
}
