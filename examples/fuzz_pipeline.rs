//! Pipeline fuzzing: feed seeded synthetic repos spanning the generator's
//! whole knob space — every pragma model, both build systems, every
//! injected-error profile — through parse → sema → build → run (plus the
//! static analyzer) and check invariants the toolchain must hold for
//! *arbitrary* generated input:
//!
//! - nothing panics,
//! - building the same repo twice is deterministic (same outcome, same log),
//! - running the same executable twice is deterministic (same stdout),
//! - `Clean` specs always build and print a checksum,
//! - `ParseError` / `SemaError` specs never build,
//! - `DirectiveRace` specs build but are flagged by `minihpc-analyze`,
//! - the analyzer's findings are deterministic.
//!
//! Seed count defaults to 64; override with `PAREVAL_FUZZ_SEEDS`.
//!
//! Run with: `cargo run --release --example fuzz_pipeline`
//! (`make fuzz-smoke` gates on this example's final line.)

use minihpc_build::{build_repo, BuildRequest};
use minihpc_gen::{generate, ErrorProfile, GenSpec, PragmaModel};
use minihpc_lang::model::BuildSystemKind;
use minihpc_runtime::{run, RunConfig};

/// Rotate every knob with the seed so a default-size run still covers the
/// full cross-product several times over.
fn fuzz_spec(i: u64) -> GenSpec {
    let pragma = [
        PragmaModel::Serial,
        PragmaModel::Threads,
        PragmaModel::Offload,
    ][(i % 3) as usize];
    let build = [BuildSystemKind::Make, BuildSystemKind::CMake][((i / 3) % 2) as usize];
    let errors = [
        ErrorProfile::Clean,
        ErrorProfile::ParseError,
        ErrorProfile::SemaError,
        ErrorProfile::DirectiveRace,
    ][((i / 6) % 4) as usize];
    GenSpec::new(0xF422_0000 + i)
        .with_files(1 + (i % 5) as usize)
        .with_pragma_model(pragma)
        .with_build_system(build)
        .with_errors(errors)
}

fn main() {
    let seeds: u64 = std::env::var("PAREVAL_FUZZ_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);

    let mut built = 0u64;
    let mut rejected = 0u64;
    let mut flagged = 0u64;
    for i in 0..seeds {
        let spec = fuzz_spec(i);
        let app = generate(&spec);
        let again = generate(&spec);
        assert_eq!(
            app.repo.iter().collect::<Vec<_>>(),
            again.repo.iter().collect::<Vec<_>>(),
            "{}: generation not deterministic",
            app.name
        );

        // Parse + sema + build, twice: the toolchain must be a pure
        // function of the repo bytes.
        let request = BuildRequest::new(app.binary.as_str());
        let first = build_repo(&app.repo, &request);
        let second = build_repo(&app.repo, &request);
        assert_eq!(
            first.succeeded(),
            second.succeeded(),
            "{}: build outcome diverged",
            app.name
        );
        assert_eq!(
            first.log.text(),
            second.log.text(),
            "{}: build log diverged",
            app.name
        );

        match spec.errors {
            ErrorProfile::Clean | ErrorProfile::DirectiveRace => assert!(
                first.succeeded(),
                "{}: {:?} spec must build, log:\n{}",
                app.name,
                spec.errors,
                first.log.text()
            ),
            ErrorProfile::ParseError | ErrorProfile::SemaError => {
                assert!(
                    !first.succeeded(),
                    "{}: {:?} spec must fail to build",
                    app.name,
                    spec.errors
                );
                rejected += 1;
            }
        }

        if let Some(exe) = &first.executable {
            built += 1;
            let args = ["24", "2"];
            let a = run(exe, RunConfig::with_args(args));
            let b = run(exe, RunConfig::with_args(args));
            assert!(
                a.error.is_none() && a.exit_code == 0,
                "{}: run failed: {:?}\n{}",
                app.name,
                a.error,
                a.stdout
            );
            assert_eq!(a.stdout, b.stdout, "{}: stdout diverged", app.name);
            assert_eq!(a.exit_code, b.exit_code, "{}: exit code diverged", app.name);
            assert!(a.stdout.contains("checksum "), "{}: {}", app.name, a.stdout);
        }

        let findings = minihpc_analyze::analyze_repo(&app.repo);
        assert_eq!(
            findings,
            minihpc_analyze::analyze_repo(&app.repo),
            "{}: analyzer not deterministic",
            app.name
        );
        let racy = findings
            .iter()
            .any(|f| f.rule == minihpc_analyze::Rule::RawReduction);
        if spec.errors == ErrorProfile::DirectiveRace && spec.pragma_model != PragmaModel::Serial {
            assert!(racy, "{}: injected race not flagged", app.name);
            flagged += 1;
        }
    }

    println!(
        "fuzz-smoke: {seeds} specs fuzzed, {built} built+ran deterministically, \
         {rejected} broken specs rejected, {flagged} injected races flagged, 0 divergences"
    );
}
