//! ParEval-Repo — a benchmark suite for evaluating LLM-based translation of
//! entire HPC code repositories between parallel programming models.
//!
//! This is the workspace facade crate: it re-exports the public API of
//! [`pareval_core`] and the substrate crates so that downstream users can
//! depend on a single crate.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

pub use minihpc_build as build;

/// The most-used items for driving experiments: build an
/// [`ExperimentPlan`](pareval_core::ExperimentPlan), pick a
/// [`TranslationBackend`](pareval_llm::TranslationBackend) and a
/// [`Runner`](pareval_core::Runner), query the collected results.
pub mod prelude {
    #[allow(deprecated)]
    pub use pareval_core::ParallelRunner;
    pub use pareval_core::{
        report, CellFilter, CellKey, CellResult, CellSpec, EvalConfig, EvalPipeline,
        ExperimentPlan, ExperimentResults, JournalError, JournalReader, JournalSink, Metric,
        NullSink, ProgressSink, RepairRound, RoundRobinRunner, Runner, SampleRecord, SampleSpec,
        SchedStats, ScheduledRunner, Scoring, SerialRunner,
    };
    pub use pareval_llm::{
        OracleBackend, RecordingBackend, RepairContext, RepairOutcome, ReplayBackend,
        SimulatedBackend, TranslationBackend,
    };
}
pub use minihpc_gen as gen;
pub use minihpc_lang as lang;
pub use minihpc_runtime as runtime;
pub use pareval_apps as apps;
pub use pareval_core as core;
pub use pareval_errclust as errclust;
pub use pareval_llm as llm;
pub use pareval_metrics as metrics;
pub use pareval_translate as translate;
